//! Offline shim for the `proptest` crate: the subset of the API the ROS2
//! test suites use, implemented as deterministic randomized testing with a
//! fixed seed and **no shrinking** (a failing case reports its case number;
//! rerunning reproduces it exactly).
//!
//! Supported surface: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! integer-range strategies, tuple strategies, `.prop_map(...)`, and
//! `prop::collection::vec`. Swap the path dependency for the real
//! `proptest = "1"` when a registry is available.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a fixed seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F, R>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map {
            base: self,
            f,
            _marker: PhantomData,
        }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F, R> {
    base: S,
    f: F,
    _marker: PhantomData<fn() -> R>,
}

impl<S, F, R> Strategy for Map<S, F, R>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;
    fn new_value(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy combinators that need named types.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Boxes a strategy for storage in a heterogeneous [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A uniform choice among strategies with a common value type
    /// (what `prop_oneof!` builds).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "empty prop_oneof!");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].new_value(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// The prelude: everything call sites expect from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// The property-test harness macro: wraps each function in a loop drawing
/// fresh values from its strategies each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_seed(
                    ::std::line!() as u64 ^ 0xC0FFEE_D00D
                );
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in prop::collection::vec(1usize..5, 1..10)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            for e in v {
                prop_assert!((1..5).contains(&e), "element {e} out of range");
            }
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            (0u32..10).prop_map(|v| v as u64),
            Just(99u64),
        ]) {
            prop_assert!(y < 10 || y == 99);
        }

        #[test]
        fn assume_skips(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert_eq!(a, a);
        }
    }
}
