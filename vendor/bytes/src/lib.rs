//! Offline shim for the `bytes` crate: the subset of the API used by the
//! ROS2 workspace, implemented over `Arc<Vec<u8>>` so clones and slices are
//! cheap and zero-copy, matching the semantics the real crate provides.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors this drop-in replacement. Swap the path dependency for
//! the real `bytes = "1"` when a registry is available — no call sites
//! change.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied; the real crate borrows, but the
    /// observable behavior is identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// The number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of `range` (indices relative to this view).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view out into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Read cursor over a byte source (subset of the real `Buf` trait).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
    /// Consumes and returns the next `len` bytes.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero-copy: share the backing allocation.
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Write cursor over a growable byte sink (subset of the real `BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A mutable, growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }
    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            data: vec![0u8; len],
        }
    }
    /// The current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }
    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
    /// Resizes to `new_len`, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }
    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_eq() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..4), Bytes::from(vec![2, 3, 4]));
        assert_eq!(b.slice(3..), Bytes::from(vec![4, 5]));
        assert_eq!(b.len(), 5);
        assert_eq!(b, [1u8, 2, 3, 4, 5]);
    }

    #[test]
    fn buf_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0xAABB);
        m.put_u64_le(0x1122334455667788);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xAABB);
        assert_eq!(b.get_u64_le(), 0x1122334455667788);
        assert_eq!(b.copy_to_bytes(2), Bytes::from_static(b"xy"));
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn zeroed_and_freeze() {
        let mut m = BytesMut::zeroed(4);
        m[1] = 9;
        assert_eq!(m.freeze(), [0u8, 9, 0, 0]);
    }
}
