//! Offline shim for the `criterion` crate: enough API surface to compile
//! and run the workspace's `benches/` targets with plain wall-clock timing
//! (median of several batches, printed one line per benchmark).
//!
//! No statistical analysis, plots, or baselines — swap the path dependency
//! for the real `criterion = "0.5"` when a registry is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Batch sizing hint (accepted for API compatibility).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure given to `bench_function`; runs and times it.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over enough iterations to get a stable estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up, then time batches until ~50 ms of samples accumulate.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let budget = Duration::from_millis(50);
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < budget && iters < 1_000_000 {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            spent += t0.elapsed();
            iters += 1;
        }
        self.total = spent;
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let budget = Duration::from_millis(50);
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < budget && iters < 1_000_000 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            spent += t0.elapsed();
            iters += 1;
        }
        self.total = spent;
        self.iters = iters;
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters as u32
        }
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per = b.per_iter();
    let mut line = format!("{name:<48} {:>12.3?}/iter  ({} iters)", per, b.iters);
    if let (Some(Throughput::Bytes(bytes)), true) = (throughput, per > Duration::ZERO) {
        let rate = bytes as f64 / per.as_secs_f64() / (1u64 << 30) as f64;
        line.push_str(&format!("  {rate:8.2} GiB/s"));
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&name.to_string(), &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup {
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.prefix, name), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
