//! Offline shim for the `rayon` crate covering the patterns the ROS2
//! benchmark harnesses use: `par_iter()` / `into_par_iter()` followed by
//! `map(...)` and `collect()`.
//!
//! Unlike a sequential stub, `map` here really fans work out across scoped
//! OS threads (one per available core), preserving input order in the
//! collected output — sweep points in the bench binaries are independent
//! simulations, which is exactly the workload this shape serves. Swap the
//! path dependency for the real `rayon = "1"` when a registry is available.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An eager parallel iterator: a materialized list of items whose `map`
/// runs across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let inputs: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = inputs[i].lock().unwrap().take().expect("taken once");
                    let out = f(item);
                    *outputs[i].lock().unwrap() = Some(out);
                });
            }
        });
        ParIter {
            items: outputs
                .into_iter()
                .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
                .collect(),
        }
    }

    /// Collects the (already computed) items in order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a [`ParIter`] over references (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The rayon prelude: the traits call sites import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn par_iter_over_slice_and_array() {
        let arr = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = arr.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let v = vec![5u32, 6];
        let tripled: Vec<u32> = v.par_iter().map(|&x| x * 3).collect();
        assert_eq!(tripled, vec![15, 18]);
    }
}
