//! The §3.5 GPUDirect RDMA extension: the same control/data-plane split,
//! with the DPU-DRAM data sink swapped for GPU HBM. Registration goes
//! through peermem; the storage server's RDMA WRITEs then land directly in
//! GPU memory, and the staging copy disappears.
//!
//! Run with: `cargo run --release --example gpu_direct`

use bytes::Bytes;
use ros2::core::{Ros2Config, Ros2System};
use ros2::verbs::MemoryDomain;

fn main() {
    // Prototype path: payloads terminate in DPU DRAM (§3.2).
    let mut staged = Ros2System::launch(Ros2Config {
        buffer_domain: MemoryDomain::DpuDram,
        ..Ros2Config::default()
    })
    .expect("staged launch");

    // Extension path: client staging buffers live in GPU HBM. launch()
    // enables peermem on the client NIC and registers the buffers there;
    // everything else — transport, server, namespace — is identical.
    let mut direct = Ros2System::launch(Ros2Config {
        buffer_domain: MemoryDomain::GpuHbm,
        ..Ros2Config::default()
    })
    .expect("gpudirect launch");

    let payload = Bytes::from(vec![0x6Du8; 4 << 20]);
    for (label, sys) in [("dpu-dram", &mut staged), ("gpu-hbm", &mut direct)] {
        let mut f = sys.create("/batch.bin").unwrap().value;
        sys.write(&mut f, 0, payload.clone()).unwrap();
        let r = sys.read(&f, 0, 4 << 20).unwrap();
        assert_eq!(r.value, payload, "bytes must round-trip through {label}");
        println!("{label:8}: 4 MiB read latency {}", r.latency);
    }

    println!(
        "\nBoth paths move identical bytes through identical transport and server code; \
         only the registered memory domain differs. With GPU placement the host-mediated \
         DPU->host->GPU staging copy is gone (see `ablation_gpudirect` for the quantified \
         difference), and GPU buffers are still protected by the same PD/rkey model — \
         run `multi_tenant_isolation` for that story."
    );

    // GPU registrations require peermem: a plain NIC rejects them.
    use ros2::sim::SimRng;
    use ros2::verbs::{NodeId, RdmaDevice, VerbsError};
    let mut plain = RdmaDevice::new(NodeId(9), 1 << 20, SimRng::new(1));
    assert_eq!(
        plain.alloc_buffer(4096, MemoryDomain::GpuHbm).unwrap_err(),
        VerbsError::NoPeermem
    );
    println!("(and without nvidia-peermem loaded, GPU-domain registration fails as it should)");
}
