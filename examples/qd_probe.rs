//! Dev probe: QD scaling of the client with the op ring off (serial) and
//! on (pipelined), host + DPU arms.
use ros2_dpu::DpuTenantSpec;
use ros2_fio::{run_fio, JobSpec, RwMode, WorldSpec};
use ros2_hw::ClientPlacement;
use ros2_nvme::DataMode;
use ros2_sim::SimDuration;

fn main() {
    let region: u64 = 16 << 20;
    for pipelined in [false, true] {
        println!("--- pipelined = {pipelined} ---");
        for bs in [4096u64, 1 << 20] {
            for qd in [1usize, 2, 4, 8, 16, 32] {
                let spec = JobSpec::new(RwMode::RandRead, bs, 1)
                    .iodepth(qd)
                    .region(region)
                    .windows(SimDuration::from_millis(50), SimDuration::from_millis(150));
                let mut host = WorldSpec::single(ClientPlacement::Host)
                    .region(region)
                    .mode(DataMode::Null)
                    .build_dfs();
                host.set_pipelined(pipelined);
                let h = run_fio(&mut host, &spec);
                let mut dpu = WorldSpec::single(ClientPlacement::Dpu)
                    .region(region)
                    .mode(DataMode::Null)
                    .offload(vec![DpuTenantSpec::unlimited("fio")])
                    .build_dfs();
                dpu.set_pipelined(pipelined);
                let d = run_fio(&mut dpu, &spec);
                println!(
                    "bs={:>7} qd={:>2}  host {:>8.1} MiB/s  dpu {:>8.1} MiB/s  ratio {:.3}",
                    bs,
                    qd,
                    h.gib_per_sec() * 1024.0,
                    d.gib_per_sec() * 1024.0,
                    d.gib_per_sec() / h.gib_per_sec().max(1e-12)
                );
            }
        }
    }
}
