//! The paper's motivating workload (Fig. 1 + §2.1): an LLM training node's
//! storage phases over ROS2 — dataset ingest, shuffled dataloader reads,
//! and periodic checkpointing — with the `B_node = G·r·s` ingest model
//! checked against delivered bandwidth.
//!
//! Run with: `cargo run --release --example llm_ingest`

use bytes::Bytes;
use ros2::core::{Ros2Config, Ros2System};
use ros2::hw::{IngestModel, LlmPhase};
use ros2::nvme::DataMode;
use ros2::sim::{SimRng, Zipf};

fn main() {
    println!("=== Fig. 1: the four LLM storage phases ===");
    for phase in LlmPhase::ALL {
        println!("  {:?}: {}", phase, phase.requirements().join(", "));
    }

    let model = IngestModel::llm_pretraining_node();
    println!(
        "\n=== §2.1 ingest model ===\n  G={} GPUs x r={} samples/s x s={} B  =>  B_node = {:.2} GiB/s",
        model.gpus_per_node,
        model.samples_per_gpu_per_sec,
        model.bytes_per_sample,
        model.required_gib_per_sec()
    );

    let mut sys = Ros2System::launch(Ros2Config {
        ssds: 4,
        jobs: 8,
        data_mode: DataMode::Null, // content-free for a bandwidth exercise
        ..Ros2Config::default()
    })
    .expect("launch");

    // Phase 1 — data preparation: ingest 64 shards of 4 MiB.
    sys.mkdir("/corpus").unwrap();
    let t0 = sys.now();
    let mut shards = Vec::new();
    for i in 0..64 {
        let mut f = sys.create(&format!("/corpus/shard-{i:03}")).unwrap().value;
        sys.write(&mut f, 0, Bytes::from(vec![0u8; 4 << 20]))
            .unwrap();
        shards.push(f);
    }
    let ingest_t = sys.now().saturating_since(t0);
    let ingest_gib = (64u64 * (4 << 20)) as f64 / ingest_t.as_secs_f64() / (1u64 << 30) as f64;
    println!("\n[ingest]      256 MiB of shards in {ingest_t}  ({ingest_gib:.2} GiB/s at QD1)");

    // Phase 3a — training dataloader: Zipf-shuffled sample reads.
    let mut rng = SimRng::new(42);
    let zipf = Zipf::new(shards.len() as u64, 0.7);
    let t0 = sys.now();
    let sample = 256 * 1024u64;
    let mut bytes_read = 0u64;
    for _ in 0..512 {
        let shard = &shards[zipf.sample(&mut rng) as usize];
        let offset = rng.below((4 << 20) / sample) * sample;
        let r = sys.read(shard, offset, sample).unwrap();
        bytes_read += r.value.len() as u64;
    }
    let load_t = sys.now().saturating_since(t0);
    println!(
        "[dataloader]  512 zipf-shuffled {}-KiB samples in {}  ({:.2} GiB/s at QD1)",
        sample >> 10,
        load_t,
        bytes_read as f64 / load_t.as_secs_f64() / (1u64 << 30) as f64
    );

    // Phase 3b — checkpointing: one big sequential dump, then rename-commit.
    sys.mkdir("/ckpt").unwrap();
    let mut tmp = sys.create("/ckpt/step-1000.tmp").unwrap().value;
    let t0 = sys.now();
    sys.write(&mut tmp, 0, Bytes::from(vec![0u8; 64 << 20]))
        .unwrap();
    let ck_t = sys.now().saturating_since(t0);
    println!(
        "[checkpoint]  64 MiB dump in {ck_t}  ({:.2} GiB/s at QD1)",
        (64u64 << 20) as f64 / ck_t.as_secs_f64() / (1u64 << 30) as f64
    );

    let m = sys.metrics();
    println!(
        "\ntotals: {} data ops, {} engine RPCs, {} control calls — host CPU untouched on the data path",
        m.dfs_ops.1, m.engine_rpcs, m.control_calls
    );
    println!(
        "note: the synchronous example runs at queue depth 1; the fio harness (fig5_dfs) \
         drives the same stack at 16 jobs x QD8 and reaches the paper's plateaus."
    );
}
