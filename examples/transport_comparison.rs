//! A compact version of the paper's headline comparison: the same FIO
//! workload over every (transport × placement) cell, printing one table.
//! This is Fig. 5 condensed to its takeaways.
//!
//! Run with: `cargo run --release --example transport_comparison`

use rayon::prelude::*;
use ros2::fio::{run_fio, JobSpec, RwMode, WorldSpec};
use ros2::hw::{ClientPlacement, Transport};
use ros2::nvme::DataMode;
use ros2::sim::SimDuration;

fn main() {
    let jobs = 16;
    let region = 256 << 20;
    let cells: Vec<(Transport, ClientPlacement)> = [
        (Transport::Tcp, ClientPlacement::Host),
        (Transport::Tcp, ClientPlacement::Dpu),
        (Transport::Rdma, ClientPlacement::Host),
        (Transport::Rdma, ClientPlacement::Dpu),
    ]
    .into();

    let results: Vec<(String, f64, f64, f64)> = cells
        .par_iter()
        .map(|&(transport, placement)| {
            let run = |rw: RwMode, bs: u64| {
                let mut world = WorldSpec::single(placement)
                    .transport(transport)
                    .ssds(4)
                    .jobs(jobs)
                    .region(region)
                    .mode(DataMode::Null)
                    .build_dfs();
                let spec = JobSpec::new(rw, bs, jobs)
                    .region(region)
                    .windows(SimDuration::from_millis(100), SimDuration::from_millis(300));
                run_fio(&mut world, &spec)
            };
            let read_1m = run(RwMode::Read, 1 << 20).gib_per_sec();
            let write_1m = run(RwMode::Write, 1 << 20).gib_per_sec();
            let rr_4k = run(RwMode::RandRead, 4096).kiops();
            (
                format!("{:>4} / {:?}", transport.label(), placement),
                read_1m,
                write_1m,
                rr_4k,
            )
        })
        .collect();

    println!("ROS2 end-to-end (DFS, 4 SSDs, 16 jobs): who wins where?\n");
    println!(
        "{:<14} {:>14} {:>14} {:>16}",
        "config", "read 1M GiB/s", "write 1M GiB/s", "randread 4K kIOPS"
    );
    for (label, r, w, k) in &results {
        println!("{label:<14} {r:>14.2} {w:>14.2} {k:>16.0}");
    }

    let tcp_dpu_read = results[1].1;
    let rdma_dpu_read = results[3].1;
    println!(
        "\ntakeaways: offloading with TCP collapses reads ({tcp_dpu_read:.1} GiB/s — the DPU \
         receive-path bottleneck); offloading with RDMA is free ({rdma_dpu_read:.1} GiB/s, \
         host parity). RDMA-first is the practical foundation for SmartNIC-offloaded \
         object storage."
    );
}
