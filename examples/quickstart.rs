//! Quickstart: boot the ROS2 deployment (DPU-offloaded client over RDMA),
//! build a small namespace, write and read back a file, and inspect what
//! every layer did.
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;
use ros2::core::{Ros2Config, Ros2System};

fn main() {
    // The paper's design point: DAOS client on the BlueField-3, RDMA data
    // plane, gRPC control plane, unmodified engine on the storage server.
    let mut sys = Ros2System::launch(Ros2Config::default()).expect("launch");
    println!(
        "booted: transport={:?} placement={:?} ssds={} (control handshake took {})",
        sys.config.transport,
        sys.config.placement,
        sys.config.ssds,
        sys.now()
    );

    // Namespace operations ride the control plane; data rides RDMA.
    sys.mkdir("/datasets").expect("mkdir");
    let mut shard = sys.create("/datasets/shard-000.bin").expect("create").value;

    // Write 8 MiB of (real) bytes and read a slice back.
    let payload = Bytes::from((0..8 << 20).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
    let w = sys.write(&mut shard, 0, payload.clone()).expect("write");
    println!("wrote 8 MiB in {} (virtual time)", w.latency);

    let r = sys.read(&shard, 1 << 20, 4096).expect("read");
    assert_eq!(&r.value[..], &payload[1 << 20..(1 << 20) + 4096]);
    println!("read 4 KiB at offset 1 MiB in {}", r.latency);

    // POSIX-style namespace round trip.
    let names = sys.readdir("/datasets").expect("readdir").value;
    let st = sys.stat("/datasets/shard-000.bin").expect("stat").value;
    println!("readdir /datasets -> {names:?}; size = {} bytes", st.size);

    // What happened underneath.
    let m = sys.metrics();
    println!(
        "layers: client ops={} engine rpcs={} dfs(meta={}, data={}) control calls={} violations={}",
        m.client_ops, m.engine_rpcs, m.dfs_ops.0, m.dfs_ops.1, m.control_calls, m.violations
    );
}
