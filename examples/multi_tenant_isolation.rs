//! Multi-tenant isolation on the SmartNIC (§2.3): two tenants share the
//! DPU; tenant B steals tenant A's rkey and attempts one-sided access. The
//! protection-domain check stops it cold, kills the offending QP, and the
//! violation is visible in the NIC's counters. Scoped (expiring) rkeys and
//! revocation are demonstrated too.
//!
//! Run with: `cargo run --release --example multi_tenant_isolation`

use ros2::dpu::{QosLimits, TenantManager};
use ros2::fabric::FabricError;
use ros2::fabric::{Dir, Fabric, NodeSpec};
use ros2::hw::{gbps, CoreClass, CpuComplement, DpuTcpRxModel, NicModel, Transport};
use ros2::sim::{SimDuration, SimTime};
use ros2::verbs::{AccessFlags, MemoryDomain, NodeId, QpState, VerbsError};

fn main() {
    // A BlueField-3 and a storage server on the RDMA fabric.
    let dpu_spec = NodeSpec {
        name: "bluefield3".into(),
        cpu: CpuComplement {
            class: CoreClass::DpuArm,
            cores: 16,
        },
        nic: NicModel::connectx7(),
        port_rate: gbps(100),
        mem_budget: 30 << 30,
        dpu_tcp_rx: Some(DpuTcpRxModel::bluefield3()),
    };
    let storage_spec = NodeSpec {
        name: "storage".into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores: 64,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 64 << 30,
        dpu_tcp_rx: None,
    };
    let mut fabric = Fabric::new(Transport::Rdma, vec![dpu_spec, storage_spec], 77);
    let dpu = NodeId(0);
    let storage = NodeId(1);

    // Tenant registration: dedicated PDs, QoS, short-lived scoped rkeys.
    let mut tenants = TenantManager::new(dpu);
    let pd_a = tenants.register(
        &mut fabric,
        "tenant-a",
        QosLimits::unlimited(),
        SimDuration::from_millis(500),
    );
    let pd_b = tenants.register(
        &mut fabric,
        "tenant-b",
        QosLimits::unlimited(),
        SimDuration::from_millis(500),
    );
    println!("registered tenant-a (pd {pd_a:?}) and tenant-b (pd {pd_b:?}) on the DPU");

    // Tenant A registers a staging buffer with a *scoped* rkey.
    let buf_a = fabric
        .rdma_mut(dpu)
        .alloc_buffer(1 << 20, MemoryDomain::DpuDram)
        .unwrap();
    let expiry = tenants.rkey_expiry(SimTime::ZERO, "tenant-a").unwrap();
    let (mr_a, rkey_a, _) = fabric
        .rdma_mut(dpu)
        .reg_mr(pd_a, buf_a, 1 << 20, AccessFlags::remote_rw(), expiry)
        .unwrap();
    fabric
        .rdma_mut(dpu)
        .write_local(buf_a, b"tenant-a secret weights")
        .unwrap();
    println!("tenant-a registered 1 MiB at {buf_a:#x} with scoped {rkey_a:?} (expires 500ms)");

    // Both tenants get their own connections to the storage server.
    let pd_srv = fabric.rdma_mut(storage).alloc_pd("daos-engine");
    let conn_a = fabric.connect(dpu, storage, pd_a, pd_srv).unwrap();
    let conn_b = fabric.connect(dpu, storage, pd_b, pd_srv).unwrap();

    // Legitimate use: the server reads tenant A's buffer through A's conn.
    let ok = fabric
        .rdma_read(SimTime::ZERO, conn_a, Dir::BtoA, rkey_a, buf_a, 23)
        .unwrap();
    println!(
        "legit server pull over tenant-a conn: {:?}",
        String::from_utf8_lossy(&ok.data.unwrap())
    );

    // ATTACK 1: tenant B leaks tenant A's rkey and replays it over its own
    // connection. The target-side QP belongs to pd_b; the MR to pd_a.
    let attack = fabric.rdma_read(
        SimTime::from_millis(1),
        conn_b,
        Dir::BtoA,
        rkey_a,
        buf_a,
        23,
    );
    match attack {
        Err(FabricError::Verbs(VerbsError::PdMismatch)) => {
            println!("ATTACK 1 (stolen rkey, cross-PD): DENIED with PdMismatch")
        }
        other => panic!("isolation hole! {other:?}"),
    }
    let qps = fabric.qps(conn_b, Dir::BtoA).unwrap();
    assert_eq!(fabric.node(dpu).rdma.qp_state(qps.1), Some(QpState::Error));
    println!("  -> tenant-b's QP transitioned to ERROR (as real RC hardware would)");

    // ATTACK 2: rkey probing (Pythia-style). 64-bit random keys never land.
    let mut denied = 0;
    for probe in 0..100u64 {
        let guess = ros2::verbs::RKey(0xDEAD_0000 + probe);
        if fabric
            .rdma_read(SimTime::from_millis(2), conn_a, Dir::BtoA, guess, buf_a, 8)
            .is_err()
        {
            denied += 1;
            // Reset the (victim's own) QP after each fault for the demo.
            let (_, dst_qp) = fabric.qps(conn_a, Dir::BtoA).unwrap();
            fabric.rdma_mut(dpu).reset_qp(dst_qp).unwrap();
            fabric
                .rdma_mut(dpu)
                .connect_qp(dst_qp, storage, dst_qp)
                .unwrap();
        }
    }
    println!("ATTACK 2 (rkey probing): {denied}/100 probes denied");

    // ATTACK 3: replay after expiry. The scoped rkey dies at t=500ms.
    let late = SimTime::from_millis(501);
    match fabric.rdma_read(late, conn_a, Dir::BtoA, rkey_a, buf_a, 8) {
        Err(FabricError::Verbs(VerbsError::RkeyExpired)) => {
            println!("ATTACK 3 (replay after scope): DENIED with RkeyExpired")
        }
        other => panic!("expiry hole! {other:?}"),
    }

    // And administrative revocation is instant.
    fabric.rdma_mut(dpu).revoke_rkey(mr_a).unwrap();
    println!("tenant-a's rkey revoked administratively");

    let v = fabric.node(dpu).rdma.violations();
    println!(
        "\nNIC violation counters: pd_mismatch={} invalid_rkey={} expired={} total={}",
        v.pd_mismatch,
        v.invalid_rkey,
        v.expired_rkey,
        v.total()
    );
    println!(
        "tenant-a's data was never readable by tenant-b; policy lives on the DPU, not the host."
    );
}
