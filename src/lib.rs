//! # ROS2 — An RDMA-First Object Storage System with SmartNIC Offload
//!
//! A full-system reproduction of the SC Workshops '25 paper: a
//! POSIX-compatible DAOS client offloaded to an NVIDIA BlueField-3
//! SmartNIC, a lightweight gRPC control plane split from a UCX/libfabric
//! data plane (TCP or RDMA), and an unmodified DAOS I/O engine on the
//! storage server — all built over a deterministic discrete-event
//! simulation with a functional data plane (bytes really move, checksums
//! really verify, rkeys really gate access).
//!
//! This façade crate re-exports the whole workspace. Layer map (bottom-up):
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `ros2-sim` | DES kernel: time, events, resources, stats |
//! | [`buf`] | `ros2-buf` | zero-copy extent store + hardware-rate CRC32C |
//! | [`hw`] | `ros2-hw` | calibrated hardware models (§4.1 testbed) |
//! | [`nvme`] | `ros2-nvme` | NVMe SSDs with functional contents |
//! | [`pmem`] | `ros2-pmem` | PMDK-style SCM tier |
//! | [`iouring`] | `ros2-iouring` | local io_uring engine (Fig. 3) |
//! | [`verbs`] | `ros2-verbs` | RDMA verbs semantics + tenant isolation |
//! | [`fabric`] | `ros2-fabric` | UCX/libfabric-style transports |
//! | [`spdk`] | `ros2-spdk` | bdev + NVMe-oF target/initiator (Fig. 4) |
//! | [`ctl`] | `ros2-ctl` | gRPC-class control plane |
//! | [`daos`] | `ros2-daos` | DAOS engine + offloadable client |
//! | [`dfs`] | `ros2-dfs` | POSIX namespace over DAOS |
//! | [`dpu`] | `ros2-dpu` | BlueField-3 agent, tenants, inline crypto |
//! | [`fio`] | `ros2-fio` | FIO-style harness + the three worlds (Fig. 5) |
//! | [`core`] | `ros2-core` | the assembled ROS2 system |
//!
//! ## Quickstart
//!
//! ```
//! use bytes::Bytes;
//! use ros2::core::{Ros2Config, Ros2System};
//!
//! // BlueField-3-offloaded client over RDMA (the paper's design point).
//! let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
//! let mut f = sys.create("/dataset.bin").unwrap().value;
//! sys.write(&mut f, 0, Bytes::from_static(b"tokens")).unwrap();
//! assert_eq!(&sys.read(&f, 0, 6).unwrap().value[..], b"tokens");
//! ```
//!
//! See `examples/` for realistic scenarios and `ros2-bench` for the
//! binaries that regenerate every table and figure in the paper.

#![warn(missing_docs)]

pub use ros2_buf as buf;
pub use ros2_core as core;
pub use ros2_ctl as ctl;
pub use ros2_daos as daos;
pub use ros2_dfs as dfs;
pub use ros2_dpu as dpu;
pub use ros2_fabric as fabric;
pub use ros2_fio as fio;
pub use ros2_hw as hw;
pub use ros2_iouring as iouring;
pub use ros2_nvme as nvme;
pub use ros2_pmem as pmem;
pub use ros2_sim as sim;
pub use ros2_spdk as spdk;
pub use ros2_verbs as verbs;

pub use ros2_core::{Ros2Config, Ros2System};
