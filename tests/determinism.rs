//! Replay determinism: identical seeds produce bit-identical results across
//! the full stack — the property every calibration and regression test in
//! this repository leans on.

use ros2::fio::{run_fio, JobSpec, LocalFioWorld, RwMode, WorldSpec};
use ros2::hw::{ClientPlacement, Transport};
use ros2::nvme::DataMode;
use ros2::sim::SimDuration;

fn short(s: JobSpec) -> JobSpec {
    s.windows(SimDuration::from_millis(20), SimDuration::from_millis(60))
}

#[test]
fn local_world_replays_identically() {
    let run = || {
        let mut w = LocalFioWorld::new(2, 4, 256 << 20, DataMode::Null);
        let r = run_fio(
            &mut w,
            &short(JobSpec::new(RwMode::RandRead, 4096, 4).seed(1234)),
        );
        (
            r.io.meter.ops(),
            r.io.meter.bytes(),
            r.io.latency.percentile(0.999).as_nanos(),
            r.io.latency.mean().as_nanos(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn dfs_world_replays_identically() {
    let run = || {
        let mut w = WorldSpec::single(ClientPlacement::Dpu)
            .transport(Transport::Rdma)
            .ssds(2)
            .jobs(4)
            .region(64 << 20)
            .mode(DataMode::Null)
            .build_dfs();
        let r = run_fio(
            &mut w,
            &short(
                JobSpec::new(RwMode::RandWrite, 4096, 4)
                    .region(64 << 20)
                    .seed(77),
            ),
        );
        (
            r.io.meter.ops(),
            r.io.meter.bytes(),
            r.io.latency.percentile(0.99).as_nanos(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        let mut w = LocalFioWorld::new(1, 2, 64 << 20, DataMode::Null);
        let r = run_fio(
            &mut w,
            &short(JobSpec::new(RwMode::RandRead, 4096, 2).seed(seed)),
        );
        r.io.latency.mean().as_nanos()
    };
    // Different random offsets -> (almost surely) different mean latency
    // at nanosecond resolution.
    assert_ne!(run(1), run(2));
}

#[test]
fn full_system_replays_identically() {
    use bytes::Bytes;
    use ros2::core::{Ros2Config, Ros2System};
    let run = || {
        let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
        let mut f = sys.create("/det").unwrap().value;
        sys.write(&mut f, 0, Bytes::from(vec![3u8; 2 << 20]))
            .unwrap();
        let r = sys.read(&f, 123, 4567).unwrap();
        (sys.now().as_nanos(), r.latency.as_nanos(), r.value)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
