//! The load-bearing reproduction claims: every figure's *shape* (who wins,
//! by roughly what factor, where the plateaus fall), asserted as tests.
//! These are the DESIGN.md §3 targets. Windows are shortened relative to
//! the bench harnesses to keep test time reasonable; plateaus converge well
//! within them.

use ros2::fio::{run_fio, JobSpec, LocalFioWorld, RwMode, SpdkFioWorld, WorldSpec};
use ros2::hw::{ClientPlacement, Transport};
use ros2::nvme::DataMode;
use ros2::sim::SimDuration;

fn windows(s: JobSpec) -> JobSpec {
    s.windows(SimDuration::from_millis(50), SimDuration::from_millis(200))
}

fn local(ssds: usize, rw: RwMode, bs: u64, jobs: usize) -> f64 {
    let mut w = LocalFioWorld::new(ssds, jobs, 1 << 30, DataMode::Null);
    let r = run_fio(&mut w, &windows(JobSpec::new(rw, bs, jobs)));
    if bs >= 1 << 20 {
        r.gib_per_sec()
    } else {
        r.iops()
    }
}

#[test]
fn fig3_one_job_saturates_large_block_reads() {
    // (a) "one job suffices to saturate large-block per-device bandwidth";
    // reads plateau ~5-5.6 GiB/s (we measure 5.4-5.8).
    let one = local(1, RwMode::Read, 1 << 20, 1);
    let sixteen = local(1, RwMode::Read, 1 << 20, 16);
    assert!((5.0..6.2).contains(&one), "1-job read {one}");
    assert!(
        sixteen <= one * 1.15,
        "no further scaling: {one} -> {sixteen}"
    );
}

#[test]
fn fig3_write_plateau_near_2_7() {
    let w = local(1, RwMode::Write, 1 << 20, 8);
    assert!((2.4..3.0).contains(&w), "write plateau {w}");
}

#[test]
fn fig3_four_ssds_scale_large_blocks_nearly_linearly() {
    // (c) reads ~20-22 GiB/s, writes ~10.6-10.7 GiB/s with 4 drives.
    let r = local(4, RwMode::Read, 1 << 20, 16);
    let w = local(4, RwMode::Write, 1 << 20, 16);
    assert!((19.0..24.5).contains(&r), "4-ssd read {r}");
    assert!((9.5..11.5).contains(&w), "4-ssd write {w}");
}

#[test]
fn fig3_small_block_iops_grow_with_jobs_to_software_limit() {
    // (b)/(d): ~80K at 1 job -> ~600K at 16 jobs, for BOTH drive counts —
    // the software/host-path limit, not a media limit.
    for ssds in [1usize, 4] {
        let one = local(ssds, RwMode::RandRead, 4096, 1);
        let sixteen = local(ssds, RwMode::RandRead, 4096, 16);
        assert!((60e3..120e3).contains(&one), "{ssds}ssd 1-job iops {one}");
        assert!(
            (550e3..700e3).contains(&sixteen),
            "{ssds}ssd 16-job iops {sixteen}"
        );
    }
    // Same ceiling regardless of drives => host-path bound.
    let a = local(1, RwMode::RandRead, 4096, 16);
    let b = local(4, RwMode::RandRead, 4096, 16);
    assert!(
        (a - b).abs() / a < 0.05,
        "limit must be drive-independent: {a} vs {b}"
    );
}

fn spdk(transport: Transport, cores: usize, rw: RwMode, bs: u64) -> f64 {
    let mut w = SpdkFioWorld::new(transport, cores, cores, cores, 1 << 30, DataMode::Null);
    let mut s = windows(JobSpec::new(rw, bs, cores));
    s.iodepth = 32;
    let r = run_fio(&mut w, &s);
    if bs >= 1 << 20 {
        r.gib_per_sec()
    } else {
        r.iops()
    }
}

#[test]
fn fig4_large_blocks_transport_agnostic_once_cores_suffice() {
    // "The similarity between TCP and RDMA at 1 MiB indicates a
    // media/network ceiling with one SSD."
    let tcp = spdk(Transport::Tcp, 4, RwMode::Read, 1 << 20);
    let rdma = spdk(Transport::Rdma, 4, RwMode::Read, 1 << 20);
    assert!((tcp - rdma).abs() / rdma < 0.1, "tcp {tcp} vs rdma {rdma}");
    assert!((5.0..6.2).contains(&rdma), "media ceiling {rdma}");
}

#[test]
fn fig4_small_blocks_rdma_dominates_and_scales() {
    // (c)/(d): RDMA delivers substantially higher IOPS and scales with
    // cores; TCP shows limited benefit.
    let tcp_1 = spdk(Transport::Tcp, 1, RwMode::RandRead, 4096);
    let tcp_16 = spdk(Transport::Tcp, 16, RwMode::RandRead, 4096);
    let rdma_1 = spdk(Transport::Rdma, 1, RwMode::RandRead, 4096);
    let rdma_16 = spdk(Transport::Rdma, 16, RwMode::RandRead, 4096);
    assert!(
        rdma_16 > 2.5 * tcp_16,
        "rdma {rdma_16} must dominate tcp {tcp_16}"
    );
    assert!(
        rdma_16 > 2.5 * rdma_1,
        "rdma must scale: {rdma_1} -> {rdma_16}"
    );
    assert!(
        tcp_16 < 2.5 * tcp_1,
        "tcp limited benefit: {tcp_1} -> {tcp_16}"
    );
    assert!(rdma_1 > tcp_1, "rdma wins at every core count");
}

const JOBS: usize = 16;
const REGION: u64 = 256 << 20;

fn dfs(transport: Transport, placement: ClientPlacement, ssds: usize, rw: RwMode, bs: u64) -> f64 {
    let mut w = WorldSpec::single(placement)
        .transport(transport)
        .ssds(ssds)
        .jobs(JOBS)
        .region(REGION)
        .mode(DataMode::Null)
        .build_dfs();
    let r = run_fio(&mut w, &windows(JobSpec::new(rw, bs, JOBS).region(REGION)));
    if bs >= 1 << 20 {
        r.gib_per_sec()
    } else {
        r.iops()
    }
}

#[test]
fn fig5_host_tcp_bands() {
    // Host TCP: ~5-6 GiB/s (1 SSD), ~10 GiB/s (4 SSDs, link-capped);
    // 0.4-0.6M 4 KiB IOPS.
    let r1 = dfs(
        Transport::Tcp,
        ClientPlacement::Host,
        1,
        RwMode::Read,
        1 << 20,
    );
    let r4 = dfs(
        Transport::Tcp,
        ClientPlacement::Host,
        4,
        RwMode::Read,
        1 << 20,
    );
    let k = dfs(
        Transport::Tcp,
        ClientPlacement::Host,
        1,
        RwMode::RandWrite,
        4096,
    );
    assert!((5.0..6.5).contains(&r1), "host tcp 1ssd {r1}");
    assert!((9.5..11.0).contains(&r4), "host tcp 4ssd {r4}");
    assert!((350e3..620e3).contains(&k), "host tcp 4k {k}");
}

#[test]
fn fig5_dpu_tcp_receive_path_bottleneck() {
    // "1 MiB reads cap at ~1.6-3.1 GiB/s ... while writes with four SSDs
    // can still approach ~10 GiB/s" — good TX, weak RX.
    let read = dfs(
        Transport::Tcp,
        ClientPlacement::Dpu,
        1,
        RwMode::Read,
        1 << 20,
    );
    let write4 = dfs(
        Transport::Tcp,
        ClientPlacement::Dpu,
        4,
        RwMode::Write,
        1 << 20,
    );
    assert!((1.4..3.3).contains(&read), "dpu tcp read {read}");
    assert!(write4 > 9.0, "dpu tcp 4-ssd write {write4}");
    // "the DPU tops out near ~0.18-0.23M IOPS" at 4 KiB.
    let k = dfs(
        Transport::Tcp,
        ClientPlacement::Dpu,
        1,
        RwMode::RandWrite,
        4096,
    );
    assert!((150e3..280e3).contains(&k), "dpu tcp 4k {k}");
}

#[test]
fn fig5_rdma_erases_the_dpu_penalty_at_1m() {
    // "at 1 MiB, the DPU matches the host for both one- and four-SSD
    // setups".
    for ssds in [1usize, 4] {
        let host = dfs(
            Transport::Rdma,
            ClientPlacement::Host,
            ssds,
            RwMode::Read,
            1 << 20,
        );
        let dpu = dfs(
            Transport::Rdma,
            ClientPlacement::Dpu,
            ssds,
            RwMode::Read,
            1 << 20,
        );
        assert!(
            (host - dpu).abs() / host < 0.05,
            "{ssds}ssd: host {host} vs dpu {dpu}"
        );
    }
    let four = dfs(
        Transport::Rdma,
        ClientPlacement::Dpu,
        4,
        RwMode::Read,
        1 << 20,
    );
    assert!((10.0..11.5).contains(&four), "rdma 4ssd plateau {four}");
}

#[test]
fn fig5_rdma_4k_dpu_gap_and_tcp_multiplier() {
    // "RDMA on the DPU improves markedly over its TCP results (often 2x or
    // more), though it still trails the CPU host by roughly 20-40%".
    let host = dfs(
        Transport::Rdma,
        ClientPlacement::Host,
        1,
        RwMode::RandWrite,
        4096,
    );
    let dpu = dfs(
        Transport::Rdma,
        ClientPlacement::Dpu,
        1,
        RwMode::RandWrite,
        4096,
    );
    let dpu_tcp = dfs(
        Transport::Tcp,
        ClientPlacement::Dpu,
        1,
        RwMode::RandWrite,
        4096,
    );
    let gap = 1.0 - dpu / host;
    assert!(
        (0.15..0.45).contains(&gap),
        "dpu gap {gap} (host {host}, dpu {dpu})"
    );
    assert!(
        dpu > 2.0 * dpu_tcp,
        "rdma {dpu} must be >=2x dpu tcp {dpu_tcp}"
    );
}
