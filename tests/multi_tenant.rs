//! Multi-tenant behaviour through the assembled system: PD isolation under
//! concurrent tenants, QoS fairness, and the accounting the operator sees.

use bytes::Bytes;
use ros2::core::{Ros2Config, Ros2System};
use ros2::dpu::QosLimits;
use ros2::sim::{SimDuration, SimTime};

#[test]
fn two_tenants_cannot_touch_each_others_buffers() {
    use ros2::fabric::{Dir, FabricError};
    use ros2::verbs::{AccessFlags, Expiry, MemoryDomain, VerbsError};
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    let node = sys.client.node();

    // A second tenant appears on the same DPU.
    let pd_b = sys.register_tenant(
        "intruder",
        QosLimits::unlimited(),
        SimDuration::from_secs(1),
    );
    let victim_pd = sys.client.pd();
    let victim_buf = sys
        .fabric
        .rdma_mut(node)
        .alloc_buffer(4096, MemoryDomain::DpuDram)
        .unwrap();
    let (_, victim_rkey, _) = sys
        .fabric
        .rdma_mut(node)
        .reg_mr(
            victim_pd,
            victim_buf,
            4096,
            AccessFlags::remote_rw(),
            Expiry::Never,
        )
        .unwrap();
    sys.fabric
        .rdma_mut(node)
        .write_local(victim_buf, b"private")
        .unwrap();

    // The intruder's connection (its own PD on the DPU, a scratch PD on
    // the storage side) replays the stolen rkey.
    let pd_srv = sys
        .fabric
        .rdma_mut(ros2::core::STORAGE_NODE)
        .alloc_pd("intruder-remote");
    let conn_b = sys
        .fabric
        .connect(node, ros2::core::STORAGE_NODE, pd_b, pd_srv)
        .unwrap();
    let err = sys
        .fabric
        .rdma_read(SimTime::ZERO, conn_b, Dir::BtoA, victim_rkey, victim_buf, 7)
        .unwrap_err();
    assert_eq!(err, FabricError::Verbs(VerbsError::PdMismatch));
    assert_eq!(sys.metrics().violations, 1);

    // The victim's data plane still works.
    let mut f = sys.create("/victim-file").unwrap().value;
    sys.write(&mut f, 0, Bytes::from_static(b"safe")).unwrap();
    assert_eq!(&sys.read(&f, 0, 4).unwrap().value[..], b"safe");
}

#[test]
fn qos_cap_bounds_effective_bandwidth() {
    // A 64 MiB/s tenant writing 32 MiB must take >= ~0.4 s of virtual time.
    let mut sys = Ros2System::launch(Ros2Config {
        qos: QosLimits {
            ops_per_sec: 10_000,
            bytes_per_sec: 64 << 20,
            burst: (64, 4 << 20),
        },
        ssds: 4,
        ..Ros2Config::default()
    })
    .unwrap();
    let mut f = sys.create("/capped").unwrap().value;
    let t0 = sys.now();
    for i in 0..32u64 {
        sys.write(&mut f, i << 20, Bytes::from(vec![0u8; 1 << 20]))
            .unwrap();
    }
    let elapsed = sys.now().saturating_since(t0);
    let gibps = 32.0 / 1024.0 / elapsed.as_secs_f64();
    let cap = 64.0 / 1024.0; // GiB/s
    assert!(
        gibps <= cap * 1.25,
        "rate {gibps:.4} GiB/s must respect the {cap:.4} GiB/s cap (burst tolerance)"
    );
    assert!(
        sys.tenants()
            .tenant(&sys.config.tenant)
            .unwrap()
            .qos
            .throttled
            > 0
    );
}

#[test]
fn unlimited_tenant_is_never_throttled() {
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    let mut f = sys.create("/free").unwrap().value;
    for i in 0..16u64 {
        sys.write(&mut f, i << 20, Bytes::from(vec![0u8; 1 << 20]))
            .unwrap();
    }
    assert_eq!(
        sys.tenants()
            .tenant(&sys.config.tenant)
            .unwrap()
            .qos
            .throttled,
        0
    );
}
