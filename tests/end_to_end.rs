//! End-to-end integration: real bytes through the full ROS2 stack on every
//! (transport × placement) deployment, with content verification at each
//! step — the functional counterpart of the performance reproduction.

use bytes::Bytes;
use ros2::core::{Ros2Config, Ros2System};
use ros2::hw::{ClientPlacement, Transport};
use ros2::sim::SimRng;

fn deployments() -> Vec<Ros2Config> {
    let mut v = Vec::new();
    for transport in [Transport::Tcp, Transport::Rdma] {
        for placement in [ClientPlacement::Host, ClientPlacement::Dpu] {
            v.push(Ros2Config {
                transport,
                placement,
                ssds: 2,
                ..Ros2Config::default()
            });
        }
    }
    v
}

#[test]
fn byte_exact_round_trips_on_all_four_deployments() {
    for cfg in deployments() {
        let label = format!("{:?}/{:?}", cfg.transport, cfg.placement);
        let mut sys = Ros2System::launch(cfg).unwrap();
        let mut rng = SimRng::new(0xE2E);
        let mut buf = vec![0u8; 5 << 20];
        rng.fill_bytes(&mut buf);
        let data = Bytes::from(buf);

        let mut f = sys.create("/blob").unwrap().value;
        sys.write(&mut f, 0, data.clone()).unwrap();
        // Whole-file, sub-chunk, and cross-chunk reads all verify.
        assert_eq!(sys.read(&f, 0, 5 << 20).unwrap().value, data, "{label}");
        assert_eq!(
            sys.read(&f, 12345, 4096).unwrap().value,
            data.slice(12345..12345 + 4096),
            "{label}"
        );
        let cross = (1 << 20) - 100;
        assert_eq!(
            sys.read(&f, cross, 8192).unwrap().value,
            data.slice(cross as usize..cross as usize + 8192),
            "{label}"
        );
    }
}

#[test]
fn overwrites_and_sparse_regions_behave_posixly() {
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    let mut f = sys.create("/sparse").unwrap().value;
    // Write at an offset, leaving a hole.
    sys.write(&mut f, 2 << 20, Bytes::from(vec![7u8; 1 << 20]))
        .unwrap();
    assert_eq!(f.size, 3 << 20);
    let hole = sys.read(&f, 0, 4096).unwrap().value;
    assert!(hole.iter().all(|&b| b == 0), "holes read zero");
    // Overwrite part of the data.
    sys.write(&mut f, 2 << 20, Bytes::from(vec![9u8; 4096]))
        .unwrap();
    let head = sys.read(&f, 2 << 20, 8192).unwrap().value;
    assert!(head[..4096].iter().all(|&b| b == 9));
    assert!(head[4096..].iter().all(|&b| b == 7));
}

#[test]
fn checkpoint_rename_commit_pattern() {
    // The train-then-commit pattern from the LLM workflow: write to a temp
    // name, rename into place, reread.
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    sys.mkdir("/ckpt").unwrap();
    let mut tmp = sys.create("/ckpt/step10.tmp").unwrap().value;
    let blob = Bytes::from(vec![0x42; 2 << 20]);
    sys.write(&mut tmp, 0, blob.clone()).unwrap();

    // Rename via the dfs layer (the system API wraps lookup+rename).
    let _root = sys.dfs.root();
    let mut s = ros2::dfs::DfsSession {
        fabric: &mut sys.fabric,
        cluster: &mut sys.cluster,
        client: &mut sys.client,
    };
    let now = ros2::sim::SimTime::ZERO;
    let (ckpt_dir, t) = sys.dfs.lookup(&mut s, now, "/ckpt").unwrap();
    sys.dfs
        .rename(&mut s, t, &ckpt_dir, "step10.tmp", &ckpt_dir, "step10")
        .unwrap();

    let committed = sys.open("/ckpt/step10").unwrap().value;
    assert_eq!(sys.read(&committed, 0, 2 << 20).unwrap().value, blob);
    assert!(sys.open("/ckpt/step10.tmp").is_err(), "old name gone");
}

#[test]
fn many_files_across_striped_targets() {
    let mut sys = Ros2System::launch(Ros2Config {
        ssds: 4,
        ..Ros2Config::default()
    })
    .unwrap();
    sys.mkdir("/shards").unwrap();
    for i in 0..16 {
        let mut f = sys.create(&format!("/shards/s{i}")).unwrap().value;
        sys.write(&mut f, 0, Bytes::from(vec![i as u8; 2 << 20]))
            .unwrap();
    }
    let names = sys.readdir("/shards").unwrap().value;
    assert_eq!(names.len(), 16);
    for i in 0..16 {
        let f = sys.open(&format!("/shards/s{i}")).unwrap().value;
        let back = sys.read(&f, 1 << 20, 1024).unwrap().value;
        assert!(back.iter().all(|&b| b == i as u8), "shard {i}");
    }
    // All four devices saw traffic (Sx striping by chunk dkey).
    for d in 0..4 {
        let stats = sys
            .engine_mut()
            .bdevs_mut()
            .array()
            .device(d)
            .stats()
            .clone();
        assert!(stats.bytes_written > 0, "device {d} idle");
    }
}

#[test]
fn epoch_snapshots_read_the_past() {
    use ros2::daos::{AKey, DKey, Epoch, ObjClass, ObjectClient, ObjectId, ValueKind};
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    let oid = ObjectId::new(ObjClass::S1, 777);
    let d = DKey::from_str("k");
    let a = AKey::from_str("v");
    // Two versions via the raw object API.
    sys.client
        .update(
            &mut sys.fabric,
            &mut sys.cluster,
            ros2::sim::SimTime::ZERO,
            0,
            oid,
            d.clone(),
            a.clone(),
            ValueKind::Single,
            Bytes::from_static(b"v1"),
        )
        .unwrap();
    let snap = sys.cluster.snapshot("posix").unwrap();
    sys.client
        .update(
            &mut sys.fabric,
            &mut sys.cluster,
            ros2::sim::SimTime::ZERO,
            0,
            oid,
            d.clone(),
            a.clone(),
            ValueKind::Single,
            Bytes::from_static(b"v2"),
        )
        .unwrap();
    let (old, _) = sys
        .client
        .fetch(
            &mut sys.fabric,
            &mut sys.cluster,
            ros2::sim::SimTime::ZERO,
            0,
            oid,
            d.clone(),
            a.clone(),
            ValueKind::Single,
            snap,
            2,
        )
        .unwrap();
    assert_eq!(&old[..], b"v1");
    let (new, _) = sys
        .client
        .fetch(
            &mut sys.fabric,
            &mut sys.cluster,
            ros2::sim::SimTime::ZERO,
            0,
            oid,
            d,
            a,
            ValueKind::Single,
            Epoch::LATEST,
            2,
        )
        .unwrap();
    assert_eq!(&new[..], b"v2");
}
