//! Model-based property test: random namespace/file operation sequences
//! against an in-memory reference filesystem. DFS over the full ROS2 stack
//! must agree with the model on every observable result.

// The reference model deliberately probes `contains_key` before mutating —
// assertions sit between probe and insert, so the entry API doesn't fit.
#![allow(clippy::map_entry)]

use std::collections::HashMap;

use bytes::Bytes;
use proptest::prelude::*;
use ros2::core::{Ros2Config, Ros2System};
use ros2::dfs::DfsError;

#[derive(Debug, Clone)]
enum Op {
    Mkdir {
        dir: u8,
    },
    Create {
        dir: u8,
        file: u8,
    },
    Write {
        dir: u8,
        file: u8,
        offset: u32,
        len: u16,
        fill: u8,
    },
    Read {
        dir: u8,
        file: u8,
        offset: u32,
        len: u16,
    },
    Readdir {
        dir: u8,
    },
    Unlink {
        dir: u8,
        file: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3).prop_map(|dir| Op::Mkdir { dir }),
        (0u8..3, 0u8..4).prop_map(|(dir, file)| Op::Create { dir, file }),
        (0u8..3, 0u8..4, 0u32..200_000, 1u16..4096, any::<u8>()).prop_map(
            |(dir, file, offset, len, fill)| Op::Write {
                dir,
                file,
                offset,
                len,
                fill
            }
        ),
        (0u8..3, 0u8..4, 0u32..250_000, 1u16..4096).prop_map(|(dir, file, offset, len)| Op::Read {
            dir,
            file,
            offset,
            len
        }),
        (0u8..3).prop_map(|dir| Op::Readdir { dir }),
        (0u8..3, 0u8..4).prop_map(|(dir, file)| Op::Unlink { dir, file }),
    ]
}

/// The reference model: a map of paths to byte vectors.
#[derive(Default)]
struct Model {
    dirs: Vec<String>,
    files: HashMap<String, Vec<u8>>,
}

fn dpath(dir: u8) -> String {
    format!("/d{dir}")
}
fn fpath(dir: u8, file: u8) -> String {
    format!("/d{dir}/f{file}")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 64,
    })]
    #[test]
    fn dfs_agrees_with_reference_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Mkdir { dir } => {
                    let path = dpath(dir);
                    let expected_exists = model.dirs.contains(&path);
                    let got = sys.mkdir(&path);
                    if expected_exists {
                        prop_assert!(matches!(got, Err(ros2::core::Ros2Error::Dfs(DfsError::Exists))));
                    } else {
                        prop_assert!(got.is_ok(), "mkdir {path}: {got:?}");
                        model.dirs.push(path);
                    }
                }
                Op::Create { dir, file } => {
                    let path = fpath(dir, file);
                    let got = sys.create(&path);
                    if !model.dirs.contains(&dpath(dir)) {
                        prop_assert!(got.is_err(), "create without parent must fail");
                    } else if model.files.contains_key(&path) {
                        prop_assert!(matches!(got, Err(ros2::core::Ros2Error::Dfs(DfsError::Exists))));
                    } else {
                        prop_assert!(got.is_ok(), "create {path}: {got:?}");
                        model.files.insert(path, Vec::new());
                    }
                }
                Op::Write { dir, file, offset, len, fill } => {
                    let path = fpath(dir, file);
                    if let Some(contents) = model.files.get_mut(&path) {
                        let mut f = sys.open(&path).unwrap().value;
                        let data = vec![fill; len as usize];
                        sys.write(&mut f, offset as u64, Bytes::from(data.clone())).unwrap();
                        let end = offset as usize + len as usize;
                        if contents.len() < end {
                            contents.resize(end, 0);
                        }
                        contents[offset as usize..end].copy_from_slice(&data);
                    } else {
                        prop_assert!(sys.open(&path).is_err());
                    }
                }
                Op::Read { dir, file, offset, len } => {
                    let path = fpath(dir, file);
                    if let Some(contents) = model.files.get(&path) {
                        let f = sys.open(&path).unwrap().value;
                        let got = sys.read(&f, offset as u64, len as u64).unwrap().value;
                        let from = (offset as usize).min(contents.len());
                        let to = (offset as usize + len as usize).min(contents.len());
                        prop_assert_eq!(&got[..], &contents[from..to], "read {} @{}+{}", path, offset, len);
                    }
                }
                Op::Readdir { dir } => {
                    let path = dpath(dir);
                    if model.dirs.contains(&path) {
                        let mut expected: Vec<String> = model
                            .files
                            .keys()
                            .filter(|p| p.starts_with(&format!("{path}/")))
                            .map(|p| p.rsplit('/').next().unwrap().to_string())
                            .collect();
                        expected.sort();
                        let got = sys.readdir(&path).unwrap().value;
                        prop_assert_eq!(got, expected, "readdir {}", path);
                    } else {
                        prop_assert!(sys.readdir(&path).is_err());
                    }
                }
                Op::Unlink { dir, file } => {
                    let path = fpath(dir, file);
                    let got = sys.unlink(&path);
                    if model.files.remove(&path).is_some() {
                        prop_assert!(got.is_ok(), "unlink {path}: {got:?}");
                    } else {
                        prop_assert!(got.is_err(), "unlink of missing {path} must fail");
                    }
                }
            }
        }
    }
}
