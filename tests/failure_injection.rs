//! Failure injection across layers: media corruption, revoked/expired
//! capabilities mid-stream, authentication failures, capacity exhaustion —
//! every failure must surface as a typed error, never as silent corruption.

use bytes::Bytes;
use ros2::core::{Ros2Config, Ros2System};
use ros2::daos::{AKey, DKey, DaosError};
use ros2::dfs::DfsError;
use ros2::sim::SimTime;

#[test]
fn media_corruption_is_detected_end_to_end() {
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    let mut f = sys.create("/gold").unwrap().value;
    sys.write(&mut f, 0, Bytes::from(vec![0xAB; 1 << 20]))
        .unwrap();

    // Flip one bit on the stored extent, behind the engine's back.
    let oid = f.oid;
    let dkey = DKey::from_u64(0);
    let akey = AKey::from_str("data");
    assert!(sys.engine_mut().corrupt_newest_extent(oid, &dkey, &akey));

    // The end-to-end checksum catches it at the POSIX layer.
    match sys.read(&f, 0, 4096) {
        Err(ros2::core::Ros2Error::Dfs(DfsError::Daos(DaosError::ChecksumMismatch))) => {}
        other => panic!("corruption escaped: {other:?}"),
    }
    assert_eq!(sys.cluster.vos_stats().checksum_failures, 1);
}

#[test]
fn revoked_rkey_kills_in_flight_traffic_but_not_the_system() {
    use ros2::fabric::{Dir, FabricError};
    use ros2::verbs::MemoryDomain;
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    // Register an extra buffer, revoke it, and watch a direct one-sided
    // access fail while the DFS path (its own buffers) keeps working.
    let pd = sys.client.pd();
    let node = sys.client.node();
    let buf = sys
        .fabric
        .rdma_mut(node)
        .alloc_buffer(4096, MemoryDomain::DpuDram)
        .unwrap();
    let (mr, rkey, _) = sys
        .fabric
        .rdma_mut(node)
        .reg_mr(
            pd,
            buf,
            4096,
            ros2::verbs::AccessFlags::remote_rw(),
            ros2::verbs::Expiry::Never,
        )
        .unwrap();
    sys.fabric.rdma_mut(node).revoke_rkey(mr).unwrap();

    let pd_srv = sys
        .fabric
        .rdma_mut(ros2::core::STORAGE_NODE)
        .alloc_pd("scratch");
    let conn = sys
        .fabric
        .connect(node, ros2::core::STORAGE_NODE, pd, pd_srv)
        .unwrap();
    // The *target* of the one-sided read below is the client NIC, where
    // the revoked MR lives.
    let err = sys
        .fabric
        .rdma_read(SimTime::ZERO, conn, Dir::BtoA, rkey, buf, 8)
        .unwrap_err();
    assert!(matches!(
        err,
        FabricError::Verbs(ros2::verbs::VerbsError::RkeyRevoked)
    ));

    // The system's own data path is unaffected.
    let mut f = sys.create("/alive").unwrap().value;
    sys.write(&mut f, 0, Bytes::from_static(b"still works"))
        .unwrap();
    assert_eq!(&sys.read(&f, 0, 11).unwrap().value[..], b"still works");
}

#[test]
fn bad_credentials_cannot_open_a_session() {
    use ros2::ctl::{ControlError, ControlRequest, ControlResponse};
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    let tenant = sys.config.tenant.clone();
    let (_, res) = sys.agent_mut().host_call(
        SimTime::ZERO,
        None,
        ControlRequest::Hello {
            tenant,
            auth: Bytes::from_static(b"wrong-secret"),
        },
        |_, _| ControlResponse::Ok,
    );
    assert_eq!(res.unwrap_err(), ControlError::AuthFailed);
}

#[test]
fn scm_exhaustion_surfaces_as_typed_error() {
    use ros2::daos::{DaosCostModel, DaosEngine, Epoch, ObjClass, ObjectId, ValueKind};
    use ros2::hw::{CoreClass, NvmeModel};
    use ros2::nvme::{DataMode, NvmeArray};
    use ros2::spdk::BdevLayer;
    // A deliberately tiny SCM tier fills up under small (SCM-bound) values.
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        1,
        DataMode::Stored,
    ));
    let mut engine = DaosEngine::new(
        "p",
        bdevs,
        256 << 10,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    engine.cont_create("c").unwrap();
    let oid = ObjectId::new(ObjClass::S1, 1);
    let mut hit_full = false;
    for i in 0..1000u64 {
        let r = engine.update(
            SimTime::ZERO,
            "c",
            oid,
            DKey::from_u64(i),
            AKey::from_str("v"),
            ValueKind::Single,
            Epoch(i + 1),
            Bytes::from(vec![0u8; 1024]),
        );
        if matches!(r, Err(DaosError::ScmFull)) {
            hit_full = true;
            break;
        }
    }
    assert!(hit_full, "tiny SCM tier must fill");
}

#[test]
fn namespace_errors_are_typed() {
    let mut sys = Ros2System::launch(Ros2Config::default()).unwrap();
    assert!(matches!(
        sys.open("/missing"),
        Err(ros2::core::Ros2Error::Dfs(DfsError::NotFound))
    ));
    sys.mkdir("/d").unwrap();
    sys.create("/d/f").unwrap();
    assert!(matches!(
        sys.unlink("/d"),
        Err(ros2::core::Ros2Error::Dfs(DfsError::NotEmpty))
    ));
    assert!(matches!(
        sys.mkdir("/d"),
        Err(ros2::core::Ros2Error::Dfs(DfsError::Exists))
    ));
}

/// The cluster failure cycle end to end, at the POSIX layer: kill one
/// engine mid-workload → every read still succeeds (served degraded from
/// surviving replicas, zero failed ops), online rebuild restores RF, and
/// the post-rebuild CRC verify passes on every object. Runs with batch
/// execution forced serial (like the CI shard-equivalence step) so the
/// scenario is bit-deterministic on any host.
#[test]
fn engine_kill_mid_workload_degrades_then_rebuilds() {
    use ros2::core::ClusterConfig;
    let mut sys = Ros2System::launch(Ros2Config {
        cluster: ClusterConfig {
            engines: 4,
            replication_factor: 2,
        },
        ..Ros2Config::default()
    })
    .unwrap();
    sys.cluster.set_force_serial_batch(true);

    let content = |i: usize| Bytes::from(vec![(i * 37 % 251) as u8 + 1; 2 << 20]);
    let mut files = Vec::new();
    // First half of the workload before the failure.
    for i in 0..6 {
        let mut f = sys.create(&format!("/obj{i}")).unwrap().value;
        sys.write(&mut f, 0, content(i)).unwrap();
        files.push(f);
    }

    // Kill the leader of file 0's data object; the pool map bumps and the
    // RAS event rides the control plane.
    let victim = sys
        .cluster
        .route_update(&files[0].oid)
        .leader()
        .expect("healthy leader");
    let v_before = sys.cluster.map().version();
    let calls_before = sys.metrics().control_calls;
    let v_after = sys.kill_engine(victim).unwrap();
    assert!(v_after > v_before, "kill must bump the map revision");
    assert_eq!(
        sys.metrics().control_calls,
        calls_before + 1,
        "the RAS event is a control-plane call"
    );

    // Second half of the workload runs against the degraded pool: new
    // files, plus reads of everything written so far. ZERO failed ops.
    for i in 6..12 {
        let mut f = sys.create(&format!("/obj{i}")).unwrap().value;
        sys.write(&mut f, 0, content(i)).unwrap();
        files.push(f);
    }
    for (i, f) in files.iter().enumerate() {
        let back = sys.read(f, 0, 2 << 20).expect("degraded read").value;
        assert_eq!(back, content(i), "file {i} bytes under degraded routing");
    }
    assert!(
        sys.rebuild_stats().degraded_fetches > 0,
        "the dead leader's objects must have been served degraded"
    );

    // Online rebuild restores RF for every object.
    let rebuilt = sys.rebuild().unwrap();
    assert!(rebuilt.value.objects_moved > 0, "{:?}", rebuilt.value);
    assert!(rebuilt.value.bytes_moved > 0, "{:?}", rebuilt.value);
    for f in &files {
        let set = sys.cluster.route_update(&f.oid);
        assert_eq!(set.len(), 2, "RF restored for {:?}", f.oid);
        assert!(!set.contains(victim), "dead engine must not be routed");
    }

    // Post-rebuild CRC verify on every object: full-file reads route to
    // the (possibly backfilled) leader and every checksum must hold.
    for (i, f) in files.iter().enumerate() {
        let back = sys.read(f, 0, 2 << 20).expect("post-rebuild read").value;
        assert_eq!(back, content(i), "file {i} bytes after rebuild");
    }
    assert_eq!(
        sys.cluster.vos_stats().checksum_failures,
        0,
        "no corruption anywhere in the failure cycle"
    );
    // A second failure is survivable now that redundancy is back.
    let next_victim = sys
        .cluster
        .route_update(&files[0].oid)
        .leader()
        .expect("healthy leader");
    sys.kill_engine(next_victim).unwrap();
    let back = sys.read(&files[0], 0, 2 << 20).unwrap().value;
    assert_eq!(back, content(0), "second kill still readable");
}

#[test]
fn dpu_dram_exhaustion_fails_launch_cleanly() {
    // 16 jobs x 4 GiB of staging > 30 GiB of BlueField-3 DRAM.
    let err = Ros2System::launch(Ros2Config {
        jobs: 16,
        buffer_len: 4 << 30,
        ..Ros2Config::default()
    });
    assert!(matches!(err, Err(ros2::core::Ros2Error::Config(_))));
}

#[test]
fn scheduled_bitrot_is_scrubbed_and_repaired() {
    use ros2::core::{ClusterConfig, FaultPlan, ScheduledCorruption};
    let mut sys = Ros2System::launch(Ros2Config {
        cluster: ClusterConfig {
            engines: 4,
            replication_factor: 2,
        },
        ..Ros2Config::default()
    })
    .unwrap();
    sys.cluster.set_force_serial_batch(true);

    let content = |i: usize| Bytes::from(vec![(i * 53 % 241) as u8 + 1; 2 << 20]);
    let mut files = Vec::new();
    for i in 0..4 {
        let mut f = sys.create(&format!("/rot{i}")).unwrap().value;
        sys.write(&mut f, 0, content(i)).unwrap();
        files.push(f);
    }

    // Two silent corruptions keyed to the client-op counter, firing
    // between ops of the second half of the workload.
    let mut plan = FaultPlan::none();
    let base = sys.metrics().client_ops;
    plan.bitrot = vec![
        ScheduledCorruption {
            after_client_ops: base + 2,
            slot: 0,
            object_index: 0,
        },
        ScheduledCorruption {
            after_client_ops: base + 5,
            slot: 3,
            object_index: 1,
        },
    ];
    sys.set_fault_plan(plan);
    for i in 4..8 {
        let mut f = sys.create(&format!("/rot{i}")).unwrap().value;
        sys.write(&mut f, 0, content(i)).unwrap();
        files.push(f);
    }

    // The scrub service finds and repairs every rotten replica, and the
    // pass lands on the control plane as a RAS-style ScrubReport.
    let calls = sys.metrics().control_calls;
    let outcome = sys.scrub().unwrap().value;
    assert!(outcome.mismatches_found >= 1, "{outcome:?}");
    assert_eq!(
        outcome.mismatches_found, outcome.mismatches_repaired,
        "every mismatch must be repaired: {outcome:?}"
    );
    assert_eq!(sys.metrics().control_calls, calls + 1);

    // Epoch aggregation at the cluster-safe boundary is a control event
    // too, and the follow-up scrub pass over the healed cluster is clean
    // without scanning a single payload byte.
    let boundary = sys.aggregate().unwrap().value;
    assert!(boundary.0 > 0);
    assert_eq!(sys.metrics().control_calls, calls + 2);
    let scanned = sys.metrics().scrub.scanned_bytes;
    let clean = sys.scrub().unwrap().value;
    assert_eq!(clean.mismatches_found, 0, "{clean:?}");
    let m = sys.metrics().scrub;
    assert_eq!(m.scanned_bytes, scanned, "clean pass must be combine-only");
    assert_eq!(m.scrub_passes, 2);
    assert!(m.chunks_compared > 0 && m.combine_bytes > 0);

    // No acked write was lost to the rot.
    for (i, f) in files.iter().enumerate() {
        let back = sys.read(f, 0, 2 << 20).expect("post-scrub read").value;
        assert_eq!(back, content(i), "file {i} bytes after scrub repair");
    }
}
