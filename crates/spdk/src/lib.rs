//! # ros2-spdk — SPDK-style user-space storage stack
//!
//! The remote baseline of the paper's Fig. 4: a polled-mode bdev layer over
//! the simulated NVMe array, and an NVMe-over-Fabrics target/initiator pair
//! whose data flow follows the real protocol — inline PDUs on TCP, target-
//! driven RDMA WRITE/READ data placement on RDMA. The DAOS engine reuses
//! [`BdevLayer`] for its NVMe tier, matching the paper's architecture
//! ("SPDK for NVMe ... entirely in user space").

#![warn(missing_docs)]

pub mod bdev;
pub mod nvmf;

pub use bdev::{BdevDesc, BdevLayer, ShardBdev};
pub use nvmf::{NvmfError, NvmfInitiator, NvmfOpcode, NvmfSession, NvmfStack, NvmfTarget};
