//! The NVMe-over-Fabrics target and initiator (SPDK-style, user space,
//! polled), exercised by the paper's Fig. 4 remote benchmark.
//!
//! Wire behaviour follows the real protocol's data-flow shape:
//!
//! * **TCP**: command capsules and data travel inline over the socket
//!   (C2HData/H2CData PDUs) — every byte costs CPU on both ends.
//! * **RDMA**: capsules are small SENDs; READ data is *pushed* by the
//!   target with RDMA WRITE into client-registered memory, WRITE data is
//!   *pulled* by the target with RDMA READ — the client CPU never touches
//!   payload bytes.

use bytes::Bytes;
use ros2_fabric::{ConnId, Dir, Fabric, FabricError};
use ros2_hw::{CoreClass, Transport};
use ros2_nvme::NvmeError;
use ros2_sim::{ResourceStats, ServerPool, SimDuration, SimTime};
use ros2_verbs::{AccessFlags, Expiry, MemAddr, MemoryDomain, NodeId, RKey, VerbsError};

use crate::bdev::BdevLayer;

/// NVMe-oF command opcodes (I/O queue subset).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NvmfOpcode {
    /// Read from a namespace.
    Read,
    /// Write to a namespace.
    Write,
}

/// Errors surfaced to the initiator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NvmfError {
    /// The fabric failed (includes verbs violations).
    Fabric(FabricError),
    /// The backing device failed.
    Nvme(NvmeError),
    /// The session's staging buffer is too small for the request.
    BufferTooSmall,
}

impl From<FabricError> for NvmfError {
    fn from(e: FabricError) -> Self {
        NvmfError::Fabric(e)
    }
}

/// One initiator↔target session (a qpair bound to one connection).
#[derive(Debug)]
pub struct NvmfSession {
    conn: ConnId,
    /// Client-side staging buffer (registered for RDMA transports).
    buf_addr: MemAddr,
    buf_len: u64,
    rkey: Option<RKey>,
    ops: u64,
}

impl NvmfSession {
    /// Operations issued on this session.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// The NVMe-oF target: polling reactors over a bdev layer.
#[derive(Debug)]
pub struct NvmfTarget {
    /// Reactor cores (the Fig. 4 "server cores" axis).
    reactors: ServerPool,
    /// Per-command target-side processing (polled, user space).
    per_cmd: SimDuration,
    class: CoreClass,
    commands: u64,
}

impl NvmfTarget {
    /// Creates a target with `cores` reactors on `class` silicon.
    pub fn new(cores: usize, class: CoreClass) -> Self {
        NvmfTarget {
            reactors: ServerPool::new(cores),
            per_cmd: SimDuration::from_nanos(900),
            class,
            commands: 0,
        }
    }

    /// Commands processed.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Booking / fast-path counters for the reactor pool.
    pub fn resource_stats(&self) -> ResourceStats {
        self.reactors.stats()
    }

    fn process(&mut self, at: SimTime) -> SimTime {
        self.commands += 1;
        let cost = self.class.scale(self.per_cmd);
        self.reactors.submit(at, cost).finish
    }
}

/// The initiator: submission cores issuing commands over sessions.
#[derive(Debug)]
pub struct NvmfInitiator {
    /// Submission/completion cores (the Fig. 4 "client cores" axis).
    cores: ServerPool,
    per_submit: SimDuration,
    per_complete: SimDuration,
    class: CoreClass,
}

impl NvmfInitiator {
    /// Creates an initiator with `cores` polling cores on `class` silicon.
    pub fn new(cores: usize, class: CoreClass) -> Self {
        NvmfInitiator {
            cores: ServerPool::new(cores),
            per_submit: SimDuration::from_nanos(700),
            per_complete: SimDuration::from_nanos(500),
            class,
        }
    }

    /// Booking / fast-path counters for the submission cores.
    pub fn resource_stats(&self) -> ResourceStats {
        self.cores.stats()
    }
}

/// The assembled remote-storage stack: initiator node ↔ fabric ↔ target
/// node with its bdev layer. This is the Fig. 4 system under test.
pub struct NvmfStack {
    /// The shared fabric (owns both nodes' NICs and the switch pipes).
    pub fabric: Fabric,
    /// The initiator.
    pub initiator: NvmfInitiator,
    /// The target.
    pub target: NvmfTarget,
    /// The target's storage.
    pub bdevs: BdevLayer,
    client: NodeId,
    server: NodeId,
}

impl NvmfStack {
    /// Builds the stack. `client`/`server` identify nodes within `fabric`.
    pub fn new(
        fabric: Fabric,
        client: NodeId,
        server: NodeId,
        client_cores: usize,
        server_cores: usize,
        bdevs: BdevLayer,
    ) -> Self {
        let c_class = fabric.node(client).class();
        let s_class = fabric.node(server).class();
        NvmfStack {
            initiator: NvmfInitiator::new(client_cores, c_class),
            target: NvmfTarget::new(server_cores, s_class),
            fabric,
            bdevs,
            client,
            server,
        }
    }

    /// Opens a session (qpair) with a `buf_len`-byte client staging buffer.
    /// On RDMA the buffer is registered and its rkey conveyed to the target
    /// (the capability exchange the control plane performs in ROS2).
    pub fn open_session(&mut self, buf_len: u64) -> Result<NvmfSession, NvmfError> {
        let (pd_c, pd_s) = {
            let c = self.fabric.rdma_mut(self.client).alloc_pd("nvmf-host");
            let s = self.fabric.rdma_mut(self.server).alloc_pd("nvmf-tgt");
            (c, s)
        };
        let conn = self.fabric.connect(self.client, self.server, pd_c, pd_s)?;
        let buf_addr = self
            .fabric
            .rdma_mut(self.client)
            .alloc_buffer(buf_len, MemoryDomain::HostDram)
            .map_err(|e| NvmfError::Fabric(FabricError::Verbs(e)))?;
        let rkey = match self.fabric.transport() {
            Transport::Rdma => {
                let (_, rkey, _) = self
                    .fabric
                    .rdma_mut(self.client)
                    .reg_mr(
                        pd_c,
                        buf_addr,
                        buf_len,
                        AccessFlags::remote_rw(),
                        Expiry::Never,
                    )
                    .map_err(|e| NvmfError::Fabric(FabricError::Verbs(e)))?;
                Some(rkey)
            }
            Transport::Tcp => None,
        };
        Ok(NvmfSession {
            conn,
            buf_addr,
            buf_len,
            rkey,
            ops: 0,
        })
    }

    /// Issues a READ of `nlb` blocks at `slba` on bdev `bdev`; the data
    /// lands in the session's staging buffer. Returns the completion instant
    /// and the data.
    pub fn read(
        &mut self,
        now: SimTime,
        session: &mut NvmfSession,
        bdev: usize,
        slba: u64,
        nlb: u32,
    ) -> Result<(SimTime, Bytes), NvmfError> {
        let bytes = nlb as u64 * ros2_hw::LBA_SIZE;
        if bytes > session.buf_len {
            return Err(NvmfError::BufferTooSmall);
        }
        session.ops += 1;

        // Initiator submission (the completion-processing cost of the
        // previous op is amortized here; charging it at completion time
        // would reserve cores in the future and block earlier submissions).
        let sub = self.initiator.cores.submit(
            now,
            self.initiator
                .class
                .scale(self.initiator.per_submit + self.initiator.per_complete),
        );

        // Command capsule to the target (64 B).
        let capsule = self.fabric.send(
            sub.finish,
            session.conn,
            Dir::AtoB,
            Bytes::from(vec![0u8; 64]),
        )?;

        // Target reactor picks it up, drives the bdev.
        let picked = self.target.process(capsule.at);
        let media = self
            .bdevs
            .read(picked, bdev, slba, nlb)
            .map_err(NvmfError::Nvme)?;
        let data = media.data.expect("read returns data");

        // Data return.
        let (done_at, data) = match self.fabric.transport() {
            Transport::Rdma => {
                // Target pushes with RDMA WRITE into client memory, then a
                // tiny completion SEND.
                let rkey = session.rkey.expect("rdma session has rkey");
                let push = self.fabric.rdma_write(
                    media.at,
                    session.conn,
                    Dir::BtoA,
                    rkey,
                    session.buf_addr,
                    data,
                )?;
                let cqe = self.fabric.send(
                    push.at,
                    session.conn,
                    Dir::BtoA,
                    Bytes::from(vec![0u8; 16]),
                )?;
                let landed = self
                    .fabric
                    .rdma_mut(self.client)
                    .read_local(session.buf_addr, bytes as usize)
                    .map_err(|e| NvmfError::Fabric(FabricError::Verbs(e)))?;
                (cqe.at, landed)
            }
            Transport::Tcp => {
                // C2HData PDU carries the payload inline.
                let pdu = self.fabric.send(media.at, session.conn, Dir::BtoA, data)?;
                (pdu.at, pdu.data.expect("tcp pdu carries data"))
            }
        };

        // Initiator completion latency (CPU charged at next submission).
        let done = done_at + self.initiator.class.scale(self.initiator.per_complete);
        Ok((done, data))
    }

    /// Issues a WRITE of `data` at `slba` on bdev `bdev`.
    pub fn write(
        &mut self,
        now: SimTime,
        session: &mut NvmfSession,
        bdev: usize,
        slba: u64,
        data: Bytes,
    ) -> Result<SimTime, NvmfError> {
        let bytes = data.len() as u64;
        if bytes > session.buf_len {
            return Err(NvmfError::BufferTooSmall);
        }
        session.ops += 1;

        let sub = self.initiator.cores.submit(
            now,
            self.initiator
                .class
                .scale(self.initiator.per_submit + self.initiator.per_complete),
        );

        let arrival = match self.fabric.transport() {
            Transport::Rdma => {
                // Stage into client memory; capsule announces it; target
                // pulls with RDMA READ. The pull is initiated target-side
                // but the client CPU stays out of the byte path.
                let rkey = session.rkey.expect("rdma session has rkey");
                self.fabric
                    .rdma_mut(self.client)
                    .write_local(session.buf_addr, &data)
                    .map_err(|e| NvmfError::Fabric(FabricError::Verbs(e)))?;
                let capsule = self.fabric.send(
                    sub.finish,
                    session.conn,
                    Dir::AtoB,
                    Bytes::from(vec![0u8; 64]),
                )?;
                let picked = self.target.process(capsule.at);
                let pull = self.fabric.rdma_read(
                    picked,
                    session.conn,
                    Dir::BtoA,
                    rkey,
                    session.buf_addr,
                    bytes,
                )?;
                pull.at
            }
            Transport::Tcp => {
                // H2CData: capsule + inline payload.
                let pdu = self
                    .fabric
                    .send(sub.finish, session.conn, Dir::AtoB, data.clone())?;
                self.target.process(pdu.at)
            }
        };

        // Media write, then completion back to the client.
        let media = self
            .bdevs
            .write(arrival, bdev, slba, data)
            .map_err(NvmfError::Nvme)?;
        let cqe = self.fabric.send(
            media.at,
            session.conn,
            Dir::BtoA,
            Bytes::from(vec![0u8; 16]),
        )?;
        let done = cqe.at + self.initiator.class.scale(self.initiator.per_complete);
        Ok(done)
    }

    /// The client node id.
    pub fn client(&self) -> NodeId {
        self.client
    }

    /// The server node id.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// Resets all timing state (fabric, cores, devices) to t=0.
    pub fn reset_timing(&mut self) {
        self.fabric.reset_timing();
        self.initiator.cores.reset_timing();
        self.target.reactors.reset_timing();
        self.bdevs.array_mut().reset_timing();
    }
}

/// Re-export for error matching convenience.
pub type VerbsResult<T> = Result<T, VerbsError>;

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_fabric::NodeSpec;
    use ros2_hw::{gbps, CpuComplement, NicModel, NvmeModel};
    use ros2_nvme::{DataMode, NvmeArray};

    fn stack(transport: Transport, ccores: usize, scores: usize) -> NvmfStack {
        let spec = |name: &str, cores: usize| NodeSpec {
            name: name.into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 1 << 30,
            dpu_tcp_rx: None,
        };
        let fabric = Fabric::new(
            transport,
            vec![spec("client", ccores), spec("server", scores)],
            11,
        );
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        NvmfStack::new(fabric, NodeId(0), NodeId(1), ccores, scores, bdevs)
    }

    #[test]
    fn tcp_write_read_round_trip() {
        let mut s = stack(Transport::Tcp, 4, 4);
        let mut sess = s.open_session(1 << 20).unwrap();
        let data = Bytes::from(vec![0xCD; 8192]);
        let done = s
            .write(SimTime::ZERO, &mut sess, 0, 100, data.clone())
            .unwrap();
        let (_, back) = s.read(done, &mut sess, 0, 100, 2).unwrap();
        assert_eq!(back, data);
        assert_eq!(sess.ops(), 2);
    }

    #[test]
    fn rdma_write_read_round_trip() {
        let mut s = stack(Transport::Rdma, 4, 4);
        let mut sess = s.open_session(1 << 20).unwrap();
        let data = Bytes::from(vec![0xEF; 4096]);
        let done = s
            .write(SimTime::ZERO, &mut sess, 0, 7, data.clone())
            .unwrap();
        let (_, back) = s.read(done, &mut sess, 0, 7, 1).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.target.commands(), 2);
    }

    #[test]
    fn rdma_beats_tcp_on_small_reads() {
        let mut tcp = stack(Transport::Tcp, 4, 4);
        let mut rdma = stack(Transport::Rdma, 4, 4);
        let mut st = tcp.open_session(1 << 20).unwrap();
        let mut sr = rdma.open_session(1 << 20).unwrap();
        let (t_tcp, _) = tcp.read(SimTime::ZERO, &mut st, 0, 0, 1).unwrap();
        let (t_rdma, _) = rdma.read(SimTime::ZERO, &mut sr, 0, 0, 1).unwrap();
        assert!(t_rdma < t_tcp, "rdma {t_rdma:?} !< tcp {t_tcp:?}");
    }

    #[test]
    fn buffer_too_small_is_rejected() {
        let mut s = stack(Transport::Tcp, 1, 1);
        let mut sess = s.open_session(4096).unwrap();
        assert_eq!(
            s.read(SimTime::ZERO, &mut sess, 0, 0, 2).unwrap_err(),
            NvmfError::BufferTooSmall
        );
    }

    #[test]
    fn out_of_range_propagates_nvme_error() {
        let mut s = stack(Transport::Tcp, 1, 1);
        let mut sess = s.open_session(1 << 20).unwrap();
        let last = 1600 * 1000 * 1000 * 1000 / ros2_hw::LBA_SIZE;
        match s.read(SimTime::ZERO, &mut sess, 0, last, 1).unwrap_err() {
            NvmfError::Nvme(NvmeError::OutOfRange) => {}
            e => panic!("unexpected {e:?}"),
        }
    }
}
