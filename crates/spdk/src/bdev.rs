//! The SPDK block-device (bdev) layer: named block devices over the
//! simulated NVMe array, with the thin user-space submission cost SPDK's
//! polled-mode driver actually has (no kernel, no interrupts).

use bytes::Bytes;
use ros2_hw::LBA_SIZE;
use ros2_nvme::{NvmeArray, NvmeCmd, NvmeCompletion, NvmeDevice, NvmeError};
use ros2_sim::{ResourceStats, SimDuration, SimTime};

/// A named bdev exposing one NVMe namespace.
#[derive(Clone, Debug)]
pub struct BdevDesc {
    /// bdev name (e.g. "Nvme0n1").
    pub name: String,
    /// Index of the backing device in the array.
    pub dev: usize,
}

/// The bdev layer: a registry of named devices over one array.
#[derive(Debug)]
pub struct BdevLayer {
    array: NvmeArray,
    bdevs: Vec<BdevDesc>,
    /// Per-command submission cost of the polled-mode driver.
    submit_cost: SimDuration,
}

impl BdevLayer {
    /// Wraps `array`, exposing each device as `Nvme{i}n1`.
    pub fn new(array: NvmeArray) -> Self {
        let bdevs = (0..array.len())
            .map(|i| BdevDesc {
                name: format!("Nvme{i}n1"),
                dev: i,
            })
            .collect();
        BdevLayer {
            array,
            bdevs,
            // SPDK's PMD submission path is ~400 ns per command.
            submit_cost: SimDuration::from_nanos(400),
        }
    }

    /// Number of bdevs.
    pub fn count(&self) -> usize {
        self.bdevs.len()
    }

    /// Looks up a bdev by name.
    pub fn by_name(&self, name: &str) -> Option<&BdevDesc> {
        self.bdevs.iter().find(|b| b.name == name)
    }

    /// The descriptor for bdev `idx`.
    pub fn desc(&self, idx: usize) -> &BdevDesc {
        &self.bdevs[idx]
    }

    /// Reads `nlb` blocks from bdev `idx` at `slba`.
    pub fn read(
        &mut self,
        now: SimTime,
        idx: usize,
        slba: u64,
        nlb: u32,
    ) -> Result<NvmeCompletion, NvmeError> {
        let dev = self.bdevs[idx].dev;
        self.array
            .submit(dev, now + self.submit_cost, NvmeCmd::read(slba, nlb))
    }

    /// Writes `data` to bdev `idx` at `slba`.
    pub fn write(
        &mut self,
        now: SimTime,
        idx: usize,
        slba: u64,
        data: Bytes,
    ) -> Result<NvmeCompletion, NvmeError> {
        debug_assert_eq!(data.len() as u64 % LBA_SIZE, 0);
        let dev = self.bdevs[idx].dev;
        self.array
            .submit(dev, now + self.submit_cost, NvmeCmd::write(slba, data))
    }

    /// Direct array access (preconditioning, stats).
    pub fn array_mut(&mut self) -> &mut NvmeArray {
        &mut self.array
    }

    /// Immutable array access.
    pub fn array(&self) -> &NvmeArray {
        &self.array
    }

    /// Aggregate booking / fast-path counters over the backing array.
    pub fn resource_stats(&self) -> ResourceStats {
        self.array.resource_stats()
    }

    /// The CRC32C of stored bytes `[byte_offset, byte_offset+len)` on bdev
    /// `idx` — answered from the backing store's CRC cache (no media
    /// timing; callers charge CPU via their own cost models).
    pub fn crc_of_range(&mut self, idx: usize, byte_offset: u64, len: u64) -> u32 {
        let dev = self.bdevs[idx].dev;
        self.array.device_mut(dev).crc_of_range(byte_offset, len)
    }

    /// Aggregate data-plane (copy / zero-copy / CRC) counters over the
    /// backing array.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        self.array.data_plane_stats()
    }

    /// A single-device handle onto bdev `idx` (a VOS target's slice of the
    /// layer).
    pub fn shard(&mut self, idx: usize) -> ShardBdev<'_> {
        let dev = self.bdevs[idx].dev;
        ShardBdev {
            dev: self.array.device_mut(dev),
            submit_cost: self.submit_cost,
        }
    }

    /// Splits the layer into one [`ShardBdev`] per bdev, each borrowing
    /// its device disjointly — what lets engine shards execute in parallel
    /// without sharing any mutable state.
    ///
    /// The positional split requires the registry's bdev→device mapping to
    /// be the identity (true for every constructor today); asserted here so
    /// a future reordering registry cannot silently hand shard `i` some
    /// other bdev's device while [`Self::shard`] resolves the mapping.
    pub fn shards(&mut self) -> Vec<ShardBdev<'_>> {
        for (i, b) in self.bdevs.iter().enumerate() {
            assert_eq!(
                b.dev, i,
                "bdev registry must be identity-ordered for the positional shard split"
            );
        }
        let submit_cost = self.submit_cost;
        self.array
            .devices_mut()
            .iter_mut()
            .map(|dev| ShardBdev { dev, submit_cost })
            .collect()
    }
}

/// One device's slice of the bdev layer: the submission interface a single
/// VOS target owns. Holding a `ShardBdev` borrows exactly one device, so
/// shards over distinct devices can run concurrently.
#[derive(Debug)]
pub struct ShardBdev<'a> {
    dev: &'a mut NvmeDevice,
    submit_cost: SimDuration,
}

impl ShardBdev<'_> {
    /// Reads `nlb` blocks at `slba` from this shard's device.
    pub fn read(&mut self, now: SimTime, slba: u64, nlb: u32) -> Result<NvmeCompletion, NvmeError> {
        self.dev
            .submit(now + self.submit_cost, NvmeCmd::read(slba, nlb))
    }

    /// Writes `data` at `slba` on this shard's device.
    pub fn write(
        &mut self,
        now: SimTime,
        slba: u64,
        data: Bytes,
    ) -> Result<NvmeCompletion, NvmeError> {
        debug_assert_eq!(data.len() as u64 % LBA_SIZE, 0);
        self.dev
            .submit(now + self.submit_cost, NvmeCmd::write(slba, data))
    }

    /// The CRC32C of stored bytes `[byte_offset, byte_offset+len)` — from
    /// the backing store's CRC cache, no media timing.
    pub fn crc_of_range(&mut self, byte_offset: u64, len: u64) -> u32 {
        self.dev.crc_of_range(byte_offset, len)
    }

    /// Seeds the backing store's chunk-CRC cache for a just-written range.
    pub fn seed_crc_cache<I>(&mut self, byte_offset: u64, crcs: I)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        self.dev.seed_crc_cache(byte_offset, crcs);
    }

    /// Direct device access (corruption injection in tests).
    pub fn device_mut(&mut self) -> &mut NvmeDevice {
        self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_hw::NvmeModel;
    use ros2_nvme::DataMode;

    fn layer(n: usize) -> BdevLayer {
        BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            n,
            DataMode::Stored,
        ))
    }

    #[test]
    fn names_follow_spdk_convention() {
        let l = layer(4);
        assert_eq!(l.count(), 4);
        assert_eq!(l.desc(0).name, "Nvme0n1");
        assert!(l.by_name("Nvme3n1").is_some());
        assert!(l.by_name("Nvme4n1").is_none());
    }

    #[test]
    fn read_write_round_trip() {
        let mut l = layer(1);
        let data = Bytes::from(vec![3u8; LBA_SIZE as usize]);
        let w = l.write(SimTime::ZERO, 0, 9, data.clone()).unwrap();
        let r = l.read(w.at, 0, 9, 1).unwrap();
        assert_eq!(r.data.unwrap(), data);
    }

    #[test]
    fn submission_cost_is_added() {
        let mut l = layer(1);
        let c = l.read(SimTime::ZERO, 0, 0, 1).unwrap();
        let raw = {
            let m = NvmeModel::enterprise_1600();
            m.occupancy(LBA_SIZE, false) + m.access(false)
        };
        assert_eq!(c.at, SimTime::ZERO + SimDuration::from_nanos(400) + raw);
    }
}
