//! Per-node fabric state: NIC pipes, processing core pools, the kernel
//! softirq stage, and the node's RDMA device context.

use ros2_hw::{CoreClass, CpuComplement, DpuTcpRxModel, NicModel};
use ros2_sim::{BandwidthServer, ServerPool, SimRng};
use ros2_verbs::{NodeId, RdmaDevice};

/// Static description of a fabric node.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Human-readable name ("host", "dpu", "storage").
    pub name: String,
    /// Processor complement available for network processing.
    pub cpu: CpuComplement,
    /// The node's NIC.
    pub nic: NicModel,
    /// The node's switch-port rate in bytes/second (the 100 Gbps port).
    pub port_rate: u64,
    /// Registered-memory budget for the RDMA device.
    pub mem_budget: u64,
    /// DPU TCP receive-path model, present only on SmartNIC nodes.
    pub dpu_tcp_rx: Option<DpuTcpRxModel>,
}

impl NodeSpec {
    /// Effective wire rate: the slower of NIC and switch port.
    pub fn wire_rate(&self) -> u64 {
        self.nic.line_rate.min(self.port_rate)
    }

    /// The paper's BlueField-3 client node (§4.1): 16 Cortex-A78AE cores,
    /// integrated ConnectX-7, 30 GiB DRAM, the TCP receive-path penalty
    /// armed. The single source of this spec — every DPU world (fio,
    /// core, dpu tests, the host-vs-DPU A/B) must model the same silicon.
    pub fn bluefield3() -> Self {
        NodeSpec {
            name: "bluefield3".into(),
            cpu: CpuComplement {
                class: CoreClass::DpuArm,
                cores: 16,
            },
            nic: NicModel::connectx7(),
            port_rate: gbps100(),
            mem_budget: 30 << 30,
            dpu_tcp_rx: Some(DpuTcpRxModel::bluefield3()),
        }
    }

    /// The paper's server-grade client host (§4.1): dual EPYC 7443, 48
    /// cores, ConnectX-6. The single source of the host-client spec —
    /// assemblies take it via `Fabric::for_topology` instead of cloning
    /// their own literals.
    pub fn host_client() -> Self {
        NodeSpec {
            name: "host-client".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 48,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps100(),
            mem_budget: 64 << 30,
            dpu_tcp_rx: None,
        }
    }

    /// The paper's storage server (§4.1): 64 NUMA-0 cores, ConnectX-6.
    pub fn storage_server() -> Self {
        NodeSpec {
            name: "storage".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 64,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps100(),
            mem_budget: 64 << 30,
            dpu_tcp_rx: None,
        }
    }
}

/// The 100 Gbps switch-port rate shared by the canonical node specs.
fn gbps100() -> u64 {
    ros2_hw::gbps(100)
}

/// Live state for one node.
#[derive(Debug)]
pub struct FabricNode {
    /// The static spec.
    pub spec: NodeSpec,
    /// Outbound serialization pipe (NIC TX through the switch port).
    pub tx_pipe: BandwidthServer,
    /// Inbound serialization pipe.
    pub rx_pipe: BandwidthServer,
    /// General network-processing cores (TX side, RPC handling).
    pub tx_pool: ServerPool,
    /// Receive-processing cores. On DPU-TCP nodes this pool is limited to
    /// the RX-queue spread — the receive-path bottleneck of §4.4.
    pub rx_pool: ServerPool,
    /// The node-wide serialized kernel stage (TCP only).
    pub kernel: ServerPool,
    /// The verbs device (registrations, QPs, one-sided execution).
    pub rdma: RdmaDevice,
    /// Concurrent-flow hint for the DPU RX contention model.
    pub flow_hint: usize,
    /// Bytes sent / received (payload).
    pub bytes_tx: u64,
    /// See `bytes_tx`.
    pub bytes_rx: u64,
}

impl FabricNode {
    /// Builds the live node from a spec, deriving its RNG from `rng`.
    pub fn new(id: NodeId, spec: NodeSpec, rng: &SimRng) -> Self {
        let rx_cores = match &spec.dpu_tcp_rx {
            Some(m) => m.rx_queue_spread.min(spec.cpu.cores),
            None => spec.cpu.cores,
        };
        FabricNode {
            tx_pipe: BandwidthServer::new(spec.wire_rate()),
            rx_pipe: BandwidthServer::new(spec.wire_rate()),
            tx_pool: ServerPool::new(spec.cpu.cores),
            rx_pool: ServerPool::new(rx_cores),
            kernel: ServerPool::new(1),
            rdma: RdmaDevice::new(id, spec.mem_budget, rng.fork(0x6e0de + id.0 as u64)),
            flow_hint: 1,
            bytes_tx: 0,
            bytes_rx: 0,
            spec,
        }
    }

    /// The node's core class (host x86 or DPU ARM).
    pub fn class(&self) -> CoreClass {
        self.spec.cpu.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_hw::gbps;

    fn host_spec() -> NodeSpec {
        NodeSpec {
            name: "host".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 48,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 1 << 30,
            dpu_tcp_rx: None,
        }
    }

    #[test]
    fn wire_rate_is_min_of_nic_and_port() {
        let spec = host_spec();
        assert_eq!(spec.wire_rate(), gbps(100)); // CX-6 is 200G, port 100G
    }

    #[test]
    fn dpu_rx_pool_is_limited_to_queue_spread() {
        let mut spec = host_spec();
        spec.name = "dpu".into();
        spec.cpu = CpuComplement {
            class: CoreClass::DpuArm,
            cores: 16,
        };
        spec.dpu_tcp_rx = Some(DpuTcpRxModel::bluefield3());
        let node = FabricNode::new(NodeId(1), spec, &SimRng::new(1));
        assert_eq!(node.rx_pool.servers(), 4);
        assert_eq!(node.tx_pool.servers(), 16);
    }

    #[test]
    fn host_rx_pool_uses_all_cores() {
        let node = FabricNode::new(NodeId(0), host_spec(), &SimRng::new(1));
        assert_eq!(node.rx_pool.servers(), 48);
        assert_eq!(node.class(), CoreClass::HostX86);
    }
}
