//! The fabric: typed connections between nodes carrying two-sided messages
//! and (on RDMA) one-sided READ/WRITE, with full cost accounting.
//!
//! A message from A to B passes, in order:
//!
//! 1. **A's CPU** — per-op + per-byte send processing (scaled to A's core
//!    class), on A's TX core pool;
//! 2. **A's kernel stage** — serialized per-message cost (TCP only);
//! 3. **the connection's serialized stage** — per-socket ordering;
//! 4. **the wire** — segmentation through A's TX pipe, the path latency,
//!    and B's RX pipe (store-and-forward per segment, so concurrent flows
//!    interleave and a single large transfer still pipelines);
//! 5. **B's kernel stage** (TCP only) and **B's CPU** — per-op + per-byte
//!    receive processing on B's RX pool, with the DPU receive-path penalty
//!    when B is a SmartNIC running TCP.
//!
//! One-sided RDMA ops skip stages 1/2/5 on the *target*: the NIC executes
//! the access against registered memory via `ros2-verbs`, which is exactly
//! why the paper's DPU results keep RDMA at host parity.

use bytes::Bytes;
use ros2_hw::{per_byte, CoreClass, Transport, TransportCost, WireProtocol};
use ros2_sim::{ResourceStats, ServerPool, SimDuration, SimRng, SimTime};
use ros2_verbs::{MemAddr, NodeId, PdId, QpId, RKey, RdmaDevice, VerbsError};

#[cfg(test)]
use ros2_verbs::{AccessFlags, Expiry};

use crate::node::{FabricNode, NodeSpec};

/// A connection handle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ConnId(pub u32);

/// Direction of an operation over a connection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Dir {
    /// From the connection's `a` endpoint to `b`.
    AtoB,
    /// From `b` to `a`.
    BtoA,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::AtoB => Dir::BtoA,
            Dir::BtoA => Dir::AtoB,
        }
    }
}

/// Fabric-layer failures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// Unknown connection.
    BadConn,
    /// One-sided operation requested on a TCP connection.
    NotRdma,
    /// The verbs layer rejected the access.
    Verbs(VerbsError),
}

/// A delivered message or completed one-sided op.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Instant the receiver (or initiator, for one-sided) observes it.
    pub at: SimTime,
    /// Returned data (message payload or RDMA READ result).
    pub data: Option<Bytes>,
}

struct Conn {
    a: NodeId,
    b: NodeId,
    /// Serialized per-socket stages, one per direction.
    ser_ab: ServerPool,
    ser_ba: ServerPool,
    /// QPs backing this connection on each node (RDMA transport).
    qp_a: Option<QpId>,
    qp_b: Option<QpId>,
    /// For a sub-channel: the root connection whose QPs it borrows.
    parent: Option<ConnId>,
    ops: u64,
}

/// The fabric connecting a set of nodes through one switch.
pub struct Fabric {
    transport: Transport,
    wire: WireProtocol,
    cost: TransportCost,
    nodes: Vec<FabricNode>,
    conns: Vec<Conn>,
    /// Fixed propagation across NIC ports and the switch hop.
    path_latency: SimDuration,
    /// Messages at or below this size go *eager* (inline, one receiver
    /// copy); larger ones use the *rendezvous* protocol (an RTS/CTS
    /// handshake, then zero-copy placement). UCX's `RNDV_THRESH` analogue;
    /// only meaningful on RDMA transports.
    eager_threshold: u64,
    /// Wire traversals that booked one closed-form pipelined window per
    /// pipe (both pipes idle — the uncontended common case).
    wire_fast: u64,
    /// Wire traversals that fell back to the exact per-segment loop.
    wire_slow: u64,
    /// Validation hook: when set, every traversal runs the per-segment
    /// loop so tests can assert the fast path is bit-identical.
    force_per_segment: bool,
}

/// Fast-path / slow-path counters for wire traversals (see
/// [`Fabric::wire_traversal_stats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WireTraversalStats {
    /// Traversals that booked the closed-form pipelined window.
    pub batched: u64,
    /// Traversals that ran the per-segment booking loop.
    pub per_segment: u64,
}

impl WireTraversalStats {
    /// Fraction of traversals that took the batched fast path.
    pub fn batched_rate(&self) -> f64 {
        let total = self.batched + self.per_segment;
        if total == 0 {
            0.0
        } else {
            self.batched as f64 / total as f64
        }
    }
}

impl Fabric {
    /// Creates a fabric over `specs` using the given transport. NIC/port
    /// latencies are folded into one fixed path latency.
    pub fn new(transport: Transport, specs: Vec<NodeSpec>, seed: u64) -> Self {
        let rng = SimRng::new(seed);
        let (wire, cost) = match transport {
            Transport::Tcp => (WireProtocol::tcp(), TransportCost::tcp()),
            Transport::Rdma => (WireProtocol::rdma(), TransportCost::rdma()),
        };
        let path_latency = SimDuration::from_nanos(2_000);
        let nodes = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| FabricNode::new(NodeId(i as u32), s, &rng))
            .collect();
        Fabric {
            transport,
            wire,
            cost,
            nodes,
            conns: Vec::new(),
            path_latency,
            eager_threshold: 8 * 1024,
            wire_fast: 0,
            wire_slow: 0,
            force_per_segment: false,
        }
    }

    /// Builds the fabric for a whole deployment shape: one client node per
    /// topology entry (host or BlueField-3, per that client's placement)
    /// plus one canonical storage server per engine, all behind the shared
    /// switch.
    /// The single constructor every DFS world and the assembled system
    /// use — node specs come from their canonical sources
    /// ([`NodeSpec::host_client`], [`NodeSpec::bluefield3`],
    /// [`NodeSpec::storage_server`]), never from cloned literals.
    pub fn for_topology(
        transport: Transport,
        topology: &ros2_hw::ClusterTopology,
        seed: u64,
    ) -> Self {
        let mut specs = Vec::with_capacity(topology.node_count());
        specs.extend(topology.clients.iter().map(|p| match p {
            ros2_hw::ClientPlacement::Host => NodeSpec::host_client(),
            ros2_hw::ClientPlacement::Dpu => NodeSpec::bluefield3(),
        }));
        specs.extend((0..topology.storage_nodes).map(|_| NodeSpec::storage_server()));
        Fabric::new(transport, specs, seed)
    }

    /// Forces every wire traversal onto the exact per-segment booking loop.
    ///
    /// The batched fast path must be observationally identical, so this
    /// exists only for equivalence tests and A/B perf measurement — it is
    /// never needed for correctness.
    pub fn set_force_per_segment(&mut self, on: bool) {
        self.force_per_segment = on;
    }

    /// Sets the eager/rendezvous switchover (RDMA only; see field docs).
    pub fn set_eager_threshold(&mut self, bytes: u64) {
        self.eager_threshold = bytes;
    }

    /// The current eager/rendezvous threshold.
    pub fn eager_threshold(&self) -> u64 {
        self.eager_threshold
    }

    /// The transport in use.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// The wire protocol model.
    pub fn wire(&self) -> &WireProtocol {
        &self.wire
    }

    /// The CPU cost table.
    pub fn cost(&self) -> &TransportCost {
        &self.cost
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &FabricNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node access (registration, buffers, hints).
    pub fn node_mut(&mut self, id: NodeId) -> &mut FabricNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Mutable access to a node's RDMA device.
    pub fn rdma_mut(&mut self, id: NodeId) -> &mut RdmaDevice {
        &mut self.nodes[id.0 as usize].rdma
    }

    /// Sets the concurrent-flow hint used by the DPU RX contention model.
    pub fn set_flow_hint(&mut self, id: NodeId, flows: usize) {
        self.nodes[id.0 as usize].flow_hint = flows.max(1);
    }

    /// Opens a connection between `a` and `b`. On RDMA transports this
    /// creates and connects a QP on each side inside the given PDs.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        pd_a: PdId,
        pd_b: PdId,
    ) -> Result<ConnId, FabricError> {
        let id = ConnId(self.conns.len() as u32);
        let (qp_a, qp_b) = match self.transport {
            Transport::Tcp => (None, None),
            Transport::Rdma => {
                let qa = self.nodes[a.0 as usize]
                    .rdma
                    .create_qp(pd_a, ros2_verbs::QpType::Rc)
                    .map_err(FabricError::Verbs)?;
                let qb = self.nodes[b.0 as usize]
                    .rdma
                    .create_qp(pd_b, ros2_verbs::QpType::Rc)
                    .map_err(FabricError::Verbs)?;
                self.nodes[a.0 as usize]
                    .rdma
                    .connect_qp(qa, b, qb)
                    .map_err(FabricError::Verbs)?;
                self.nodes[b.0 as usize]
                    .rdma
                    .connect_qp(qb, a, qa)
                    .map_err(FabricError::Verbs)?;
                (Some(qa), Some(qb))
            }
        };
        self.conns.push(Conn {
            a,
            b,
            ser_ab: ServerPool::new(1),
            ser_ba: ServerPool::new(1),
            qp_a,
            qp_b,
            parent: None,
            ops: 0,
        });
        Ok(id)
    }

    /// Opens a *sub-channel* of an existing connection: an independent
    /// ordering domain (its own serialized per-socket stages) that borrows
    /// the parent's QPs instead of creating new ones. This is how a client
    /// node keeps per-(node, peer) connection state O(peers) while still
    /// giving each job its own head-of-line-blocking-free channel — the
    /// verbs analogue of multiplexing many sockets over one RC QP pair.
    ///
    /// Timing is identical to a dedicated connection: QP creation books no
    /// virtual time, and every runtime stage a sub-channel touches (its ser
    /// stages, the node pipes/pools) is either private or already shared.
    pub fn open_subchannel(&mut self, parent: ConnId) -> Result<ConnId, FabricError> {
        let root = {
            let c = self
                .conns
                .get(parent.0 as usize)
                .ok_or(FabricError::BadConn)?;
            // Chains collapse to the root so qps() resolves in one hop.
            c.parent.unwrap_or(parent)
        };
        let (a, b) = {
            let c = &self.conns[root.0 as usize];
            (c.a, c.b)
        };
        let id = ConnId(self.conns.len() as u32);
        self.conns.push(Conn {
            a,
            b,
            ser_ab: ServerPool::new(1),
            ser_ba: ServerPool::new(1),
            qp_a: None,
            qp_b: None,
            parent: Some(root),
            ops: 0,
        });
        Ok(id)
    }

    /// The `(source, destination)` nodes of `conn` in direction `dir`.
    pub fn endpoints(&self, conn: ConnId, dir: Dir) -> Result<(NodeId, NodeId), FabricError> {
        let c = self
            .conns
            .get(conn.0 as usize)
            .ok_or(FabricError::BadConn)?;
        Ok(match dir {
            Dir::AtoB => (c.a, c.b),
            Dir::BtoA => (c.b, c.a),
        })
    }

    /// The QP pair `(src_qp, dst_qp)` for `conn` in `dir` (RDMA only).
    /// Sub-channels resolve to their root connection's QPs.
    pub fn qps(&self, conn: ConnId, dir: Dir) -> Result<(QpId, QpId), FabricError> {
        let c = self
            .conns
            .get(conn.0 as usize)
            .ok_or(FabricError::BadConn)?;
        let c = match c.parent {
            Some(root) => self
                .conns
                .get(root.0 as usize)
                .ok_or(FabricError::BadConn)?,
            None => c,
        };
        match (c.qp_a, c.qp_b, dir) {
            (Some(qa), Some(qb), Dir::AtoB) => Ok((qa, qb)),
            (Some(qa), Some(qb), Dir::BtoA) => Ok((qb, qa)),
            _ => Err(FabricError::NotRdma),
        }
    }

    /// Total operations carried by `conn`.
    pub fn conn_ops(&self, conn: ConnId) -> u64 {
        self.conns[conn.0 as usize].ops
    }

    /// Resets every pipe, pool and serialized stage to t=0 (between
    /// preconditioning and measurement). Registrations, QPs and memory
    /// contents are untouched.
    pub fn reset_timing(&mut self) {
        for n in &mut self.nodes {
            n.tx_pipe.reset_timing();
            n.rx_pipe.reset_timing();
            n.tx_pool.reset_timing();
            n.rx_pool.reset_timing();
            n.kernel.reset_timing();
            n.bytes_tx = 0;
            n.bytes_rx = 0;
        }
        for c in &mut self.conns {
            c.ser_ab.reset_timing();
            c.ser_ba.reset_timing();
        }
        self.wire_fast = 0;
        self.wire_slow = 0;
    }

    // ---- timing helpers -------------------------------------------------

    fn scale(class: CoreClass, d: SimDuration) -> SimDuration {
        class.scale(d)
    }

    /// Wire traversal: segments through the source TX pipe, path latency,
    /// destination RX pipe. Returns the instant the last byte lands.
    ///
    /// The common case — both pipes idle at/after `start`, i.e. no
    /// contending flow — is booked as one closed-form pipelined window per
    /// pipe in O(1) instead of a per-segment loop (8–16 bookings per 1 MiB
    /// chunk). Under contention the exact per-segment loop runs, so grants
    /// are bit-identical either way (asserted by
    /// `tests/fastpath_equivalence.rs`).
    fn traverse_wire(&mut self, start: SimTime, src: NodeId, dst: NodeId, payload: u64) -> SimTime {
        let wire_total = self.wire.wire_bytes(payload);
        let seg = self.wire.segment;
        let last_arrival = if wire_total == 0 {
            start
        } else if !self.force_per_segment && wire_total <= seg {
            // Single-segment transfer (descriptors, completions, small I/O):
            // the closed form and the loop coincide at one TX and one RX
            // booking, so book directly — the aggregate-window bookkeeping
            // would only add overhead (measured ~10 % on desc-sized sends).
            self.wire_fast += 1;
            let tx = self.nodes[src.0 as usize]
                .tx_pipe
                .transmit(start, wire_total);
            let arrive = tx.finish + self.path_latency;
            let rx = self.nodes[dst.0 as usize]
                .rx_pipe
                .transmit(arrive, wire_total);
            start.max(rx.finish)
        } else {
            // Hoisted decline check: under contention the TX pipe is almost
            // always still busy past `start`, and the one-compare tail test
            // is far cheaper than entering the closed-form bookkeeping.
            let batched = if self.force_per_segment
                || self.nodes[src.0 as usize].tx_pipe.tail_free() > start
            {
                None
            } else {
                self.traverse_wire_batched(start, src, dst, wire_total, seg)
            };
            match batched {
                Some(at) => {
                    self.wire_fast += 1;
                    at
                }
                None => {
                    self.wire_slow += 1;
                    self.traverse_wire_segments(start, src, dst, wire_total, seg)
                }
            }
        };
        self.nodes[src.0 as usize].bytes_tx += payload;
        self.nodes[dst.0 as usize].bytes_rx += payload;
        last_arrival
    }

    /// The exact per-segment booking loop (the contended slow path).
    fn traverse_wire_segments(
        &mut self,
        start: SimTime,
        src: NodeId,
        dst: NodeId,
        wire_total: u64,
        seg: u64,
    ) -> SimTime {
        let mut remaining = wire_total;
        let mut last_arrival = start;
        while remaining > 0 {
            let chunk = remaining.min(seg);
            let tx = self.nodes[src.0 as usize].tx_pipe.transmit(start, chunk);
            let arrive = tx.finish + self.path_latency;
            let rx = self.nodes[dst.0 as usize].rx_pipe.transmit(arrive, chunk);
            last_arrival = last_arrival.max(rx.finish);
            remaining -= chunk;
        }
        last_arrival
    }

    /// Closed-form pipelined traversal for the uncontended case: one
    /// contiguous TX window and one contiguous RX window reproduce exactly
    /// what the per-segment loop would book.
    ///
    /// Why this is exact: the loop submits every segment at `start`, so on
    /// an idle TX pipe the segments serialize back-to-back into the single
    /// window `[start, start + Σ tx_i)`. Segment `i` then arrives at the RX
    /// pipe `path_latency` after its TX finish, i.e. at intervals of the
    /// full-segment TX time. When the RX pipe is no faster than the TX pipe
    /// (`rx_rate <= tx_rate`, true of every shipped topology — both ends
    /// clamp to the same switch port), each segment's RX service time is ≥
    /// its inter-arrival gap, so RX bookings are also contiguous:
    /// `[a0, a0 + Σ rx_i)` with `a0` the first arrival. A faster RX pipe
    /// would leave idle holes between segment bookings, which the aggregate
    /// window would mis-book — that case falls back to the loop.
    ///
    /// Returns `None` (book nothing) unless every exactness precondition
    /// holds.
    fn traverse_wire_batched(
        &mut self,
        start: SimTime,
        src: NodeId,
        dst: NodeId,
        wire_total: u64,
        seg: u64,
    ) -> Option<SimTime> {
        debug_assert!(
            self.nodes[src.0 as usize].tx_pipe.tail_free() <= start,
            "caller pre-checks the TX tail before entering the closed form"
        );
        let tx_rate = self.nodes[src.0 as usize].tx_pipe.rate();
        let rx_rate = self.nodes[dst.0 as usize].rx_pipe.rate();
        if rx_rate > tx_rate {
            return None;
        }
        let segments = wire_total.div_ceil(seg);
        let full = segments - 1;
        let rem = wire_total - full * seg; // in (0, seg]
        let tx_pipe = &self.nodes[src.0 as usize].tx_pipe;
        let tx_full = tx_pipe.service_time(seg);
        let tx_rem = tx_pipe.service_time(rem);
        let tx_dur = tx_full * full + tx_rem;
        // First segment is a full one unless the transfer fits in one.
        let first_tx = if full > 0 { tx_full } else { tx_rem };
        let a0 = start + first_tx + self.path_latency;
        if self.nodes[dst.0 as usize].rx_pipe.tail_free() > a0 {
            return None;
        }
        let rx_pipe = &self.nodes[dst.0 as usize].rx_pipe;
        let rx_dur = rx_pipe.service_time(seg) * full + rx_pipe.service_time(rem);
        // Last arrival instant — mirrors the loop's per-segment submit
        // times so pruning high-water marks line up with the slow path.
        let last_arrive = start + tx_dur + self.path_latency;
        self.nodes[src.0 as usize]
            .tx_pipe
            .book_batch(start, start, tx_dur, wire_total, segments);
        let rx = self.nodes[dst.0 as usize].rx_pipe.book_batch(
            last_arrive,
            a0,
            rx_dur,
            wire_total,
            segments,
        );
        Some(rx.finish)
    }

    /// Batched vs per-segment wire traversal counts since construction (or
    /// the last [`Self::reset_timing`]).
    pub fn wire_traversal_stats(&self) -> WireTraversalStats {
        WireTraversalStats {
            batched: self.wire_fast,
            per_segment: self.wire_slow,
        }
    }

    /// Aggregate booking/fast-path counters over every NIC pipe, core pool
    /// and serialized stage in the fabric.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for n in &self.nodes {
            total.merge(n.tx_pipe.stats());
            total.merge(n.rx_pipe.stats());
            total.merge(n.tx_pool.stats());
            total.merge(n.rx_pool.stats());
            total.merge(n.kernel.stats());
        }
        for c in &self.conns {
            total.merge(c.ser_ab.stats());
            total.merge(c.ser_ba.stats());
        }
        total
    }

    /// Aggregate data-plane (copy / zero-copy) counters over every node's
    /// registered-memory store.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = ros2_buf::DataPlaneStats::default();
        for n in &self.nodes {
            total.merge(n.rdma.data_plane_stats());
        }
        total
    }

    /// Receive-side CPU cost for `payload` bytes on node `dst`.
    fn recv_cpu_cost(&self, dst: NodeId, payload: u64) -> SimDuration {
        let node = &self.nodes[dst.0 as usize];
        let class = node.class();
        let base_op = Self::scale(class, self.cost.recv_per_op);
        let byte_cost = match (&node.spec.dpu_tcp_rx, self.transport) {
            (Some(model), Transport::Tcp) => {
                // The DPU receive-path penalty, contention-adjusted.
                let ps = model.effective_rx_ps_per_byte(self.cost.recv_ps_per_byte, node.flow_hint);
                per_byte(payload, ps)
            }
            _ => Self::scale(class, per_byte(payload, self.cost.recv_ps_per_byte)),
        };
        base_op + byte_cost
    }

    /// Sends a two-sided message of `payload` bytes carrying `data`.
    pub fn send(
        &mut self,
        now: SimTime,
        conn: ConnId,
        dir: Dir,
        data: Bytes,
    ) -> Result<Delivery, FabricError> {
        let (src, dst) = self.endpoints(conn, dir)?;
        let payload = data.len() as u64;

        // 1. Sender CPU.
        let src_class = self.nodes[src.0 as usize].class();
        let send_cost = Self::scale(
            src_class,
            self.cost.send_per_op + per_byte(payload, self.cost.send_ps_per_byte),
        );
        let g_send = self.nodes[src.0 as usize].tx_pool.submit(now, send_cost);

        // 2. Sender kernel stage (TCP only).
        let mut t = g_send.finish;
        if self.cost.kernel_per_msg > SimDuration::ZERO {
            let k = Self::scale(src_class, self.cost.kernel_per_msg);
            t = self.nodes[src.0 as usize].kernel.submit(t, k).finish;
        }

        // 3. Per-connection serialized stage.
        let ser_cost = Self::scale(src_class, self.cost.serialized_per_op);
        let c = &mut self.conns[conn.0 as usize];
        let ser = match dir {
            Dir::AtoB => &mut c.ser_ab,
            Dir::BtoA => &mut c.ser_ba,
        };
        t = ser.submit(t, ser_cost).finish;
        c.ops += 1;

        // 3b. RDMA rendezvous handshake for large sends: RTS out, CTS
        // back, then the NIC places data with zero receiver copies.
        let rendezvous = self.transport == Transport::Rdma && payload > self.eager_threshold;
        if rendezvous {
            t = t + self.path_latency + self.path_latency;
        }

        // 4. The wire.
        let landed = self.traverse_wire(t, src, dst, payload);

        // 5. Receiver kernel stage + CPU.
        let dst_class = self.nodes[dst.0 as usize].class();
        let mut t = landed;
        if self.cost.kernel_per_msg > SimDuration::ZERO {
            let k = Self::scale(dst_class, self.cost.kernel_per_msg);
            t = self.nodes[dst.0 as usize].kernel.submit(t, k).finish;
        }
        let mut recv_cost = self.recv_cpu_cost(dst, payload);
        if self.transport == Transport::Rdma && !rendezvous {
            // Eager RDMA: the receiver copies out of the bounce buffer.
            recv_cost += Self::scale(dst_class, ros2_hw::per_byte(payload, 50));
        }
        let g_recv = self.nodes[dst.0 as usize].rx_pool.submit(t, recv_cost);

        Ok(Delivery {
            at: g_recv.finish,
            data: Some(data),
        })
    }

    /// One-sided RDMA WRITE: places `data` into the destination's
    /// registered memory at `(rkey, addr)` with zero destination CPU cost.
    /// Returns the initiator-visible completion instant.
    pub fn rdma_write(
        &mut self,
        now: SimTime,
        conn: ConnId,
        dir: Dir,
        rkey: RKey,
        addr: MemAddr,
        data: Bytes,
    ) -> Result<Delivery, FabricError> {
        if self.transport != Transport::Rdma {
            return Err(FabricError::NotRdma);
        }
        let (src, dst) = self.endpoints(conn, dir)?;
        let (_, dst_qp) = self.qps(conn, dir)?;
        let payload = data.len() as u64;

        // Initiator posts the WR.
        let src_class = self.nodes[src.0 as usize].class();
        let post = Self::scale(src_class, self.cost.send_per_op);
        let g_post = self.nodes[src.0 as usize].tx_pool.submit(now, post);
        let ser_cost = Self::scale(src_class, self.cost.serialized_per_op);
        let c = &mut self.conns[conn.0 as usize];
        let ser = match dir {
            Dir::AtoB => &mut c.ser_ab,
            Dir::BtoA => &mut c.ser_ba,
        };
        let t = ser.submit(g_post.finish, ser_cost).finish;
        c.ops += 1;

        // Wire, then the destination NIC executes the placement.
        let landed = self.traverse_wire(t, src, dst, payload);
        self.nodes[dst.0 as usize]
            .rdma
            .execute_remote_write(landed, dst_qp, rkey, addr, &data)
            .map_err(FabricError::Verbs)?;

        // The ACK back to the initiator (latency only; piggybacked).
        let done = landed + self.path_latency;
        Ok(Delivery {
            at: done,
            data: None,
        })
    }

    /// One-sided RDMA READ: fetches `len` bytes from the destination's
    /// registered memory. Zero destination CPU cost.
    pub fn rdma_read(
        &mut self,
        now: SimTime,
        conn: ConnId,
        dir: Dir,
        rkey: RKey,
        addr: MemAddr,
        len: u64,
    ) -> Result<Delivery, FabricError> {
        if self.transport != Transport::Rdma {
            return Err(FabricError::NotRdma);
        }
        let (src, dst) = self.endpoints(conn, dir)?;
        let (_, dst_qp) = self.qps(conn, dir)?;

        // Initiator posts the WR; the request capsule crosses the wire.
        let src_class = self.nodes[src.0 as usize].class();
        let post = Self::scale(src_class, self.cost.send_per_op);
        let g_post = self.nodes[src.0 as usize].tx_pool.submit(now, post);
        let ser_cost = Self::scale(src_class, self.cost.serialized_per_op);
        let c = &mut self.conns[conn.0 as usize];
        let ser = match dir {
            Dir::AtoB => &mut c.ser_ab,
            Dir::BtoA => &mut c.ser_ba,
        };
        let t = ser.submit(g_post.finish, ser_cost).finish;
        c.ops += 1;
        let req_landed = self.traverse_wire(t, src, dst, 16);

        // Destination NIC reads memory (no CPU), data returns over the wire.
        let data = self.nodes[dst.0 as usize]
            .rdma
            .execute_remote_read(req_landed, dst_qp, rkey, addr, len)
            .map_err(FabricError::Verbs)?;
        let back = self.traverse_wire(req_landed, dst, src, len);
        Ok(Delivery {
            at: back,
            data: Some(data),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_hw::{gbps, CpuComplement, DpuTcpRxModel, NicModel};
    use ros2_verbs::MemoryDomain;

    fn spec(name: &str, class: CoreClass, cores: usize, dpu_tcp: bool) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            cpu: CpuComplement { class, cores },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 1 << 30,
            dpu_tcp_rx: if dpu_tcp {
                Some(DpuTcpRxModel::bluefield3())
            } else {
                None
            },
        }
    }

    fn two_hosts(transport: Transport) -> Fabric {
        Fabric::new(
            transport,
            vec![
                spec("client", CoreClass::HostX86, 48, false),
                spec("server", CoreClass::HostX86, 64, false),
            ],
            7,
        )
    }

    fn rdma_pair() -> (Fabric, ConnId, RKey, MemAddr) {
        let mut f = two_hosts(Transport::Rdma);
        let pd_a = f.rdma_mut(NodeId(0)).alloc_pd("client");
        let pd_b = f.rdma_mut(NodeId(1)).alloc_pd("server");
        let conn = f.connect(NodeId(0), NodeId(1), pd_a, pd_b).unwrap();
        let buf = f
            .rdma_mut(NodeId(1))
            .alloc_buffer(1 << 20, MemoryDomain::HostDram)
            .unwrap();
        let (_, rkey, _) = f
            .rdma_mut(NodeId(1))
            .reg_mr(pd_b, buf, 1 << 20, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        (f, conn, rkey, buf)
    }

    #[test]
    fn tcp_message_round_trips_data() {
        let mut f = two_hosts(Transport::Tcp);
        let pd = PdId(0); // unused on TCP
        let conn = f.connect(NodeId(0), NodeId(1), pd, pd).unwrap();
        let d = f
            .send(SimTime::ZERO, conn, Dir::AtoB, Bytes::from_static(b"rpc"))
            .unwrap();
        assert_eq!(d.data.unwrap(), Bytes::from_static(b"rpc"));
        assert!(d.at > SimTime::ZERO);
        assert_eq!(f.conn_ops(conn), 1);
    }

    #[test]
    fn rdma_write_places_bytes_with_zero_target_cpu() {
        let (mut f, conn, rkey, addr) = rdma_pair();
        let before = f.node(NodeId(1)).rx_pool.jobs_served();
        let d = f
            .rdma_write(
                SimTime::ZERO,
                conn,
                Dir::AtoB,
                rkey,
                addr,
                Bytes::from_static(b"one-sided"),
            )
            .unwrap();
        assert!(d.at > SimTime::ZERO);
        // Target CPU untouched.
        assert_eq!(f.node(NodeId(1)).rx_pool.jobs_served(), before);
        // Bytes really landed.
        let back = f.rdma_mut(NodeId(1)).read_local(addr, 9).unwrap();
        assert_eq!(&back[..], b"one-sided");
    }

    #[test]
    fn rdma_read_fetches_remote_bytes() {
        let (mut f, conn, rkey, addr) = rdma_pair();
        f.rdma_mut(NodeId(1))
            .write_local(addr, b"server data")
            .unwrap();
        let d = f
            .rdma_read(SimTime::ZERO, conn, Dir::AtoB, rkey, addr, 11)
            .unwrap();
        assert_eq!(&d.data.unwrap()[..], b"server data");
    }

    #[test]
    fn one_sided_on_tcp_is_rejected() {
        let mut f = two_hosts(Transport::Tcp);
        let conn = f.connect(NodeId(0), NodeId(1), PdId(0), PdId(0)).unwrap();
        let err = f
            .rdma_write(SimTime::ZERO, conn, Dir::AtoB, RKey(1), 0, Bytes::new())
            .unwrap_err();
        assert_eq!(err, FabricError::NotRdma);
    }

    #[test]
    fn rdma_small_latency_beats_tcp() {
        let mut tcp = two_hosts(Transport::Tcp);
        let conn_t = tcp.connect(NodeId(0), NodeId(1), PdId(0), PdId(0)).unwrap();
        let d_tcp = tcp
            .send(
                SimTime::ZERO,
                conn_t,
                Dir::AtoB,
                Bytes::from(vec![0u8; 4096]),
            )
            .unwrap();
        let (mut rdma, conn_r, rkey, addr) = rdma_pair();
        let d_rdma = rdma
            .rdma_write(
                SimTime::ZERO,
                conn_r,
                Dir::AtoB,
                rkey,
                addr,
                Bytes::from(vec![0u8; 4096]),
            )
            .unwrap();
        assert!(
            d_rdma.at < d_tcp.at,
            "rdma {:?} !< tcp {:?}",
            d_rdma.at,
            d_tcp.at
        );
    }

    #[test]
    fn large_transfer_pipelines_near_wire_rate() {
        let (mut f, conn, rkey, addr) = rdma_pair();
        let mb = Bytes::from(vec![0u8; 1 << 20]);
        let d = f
            .rdma_write(SimTime::ZERO, conn, Dir::AtoB, rkey, addr, mb)
            .unwrap();
        let gib_s = (1u64 << 20) as f64 / d.at.as_secs_f64() / (1u64 << 30) as f64;
        // Payload rate for one 1 MiB write should approach the ~11.3 GiB/s
        // RDMA payload ceiling of the 100G port (pipelined segments), and
        // certainly beat half of it (no store-and-forward doubling).
        assert!(gib_s > 7.0, "single-transfer rate {gib_s} GiB/s");
    }

    #[test]
    fn concurrent_flows_share_the_port_fairly() {
        let (mut f, conn, rkey, addr) = rdma_pair();
        // Two flows of 32 x 128 KiB each, interleaved at t=0.
        let mut finishes = Vec::new();
        for i in 0..64u64 {
            let off = (i % 2) * (1 << 19);
            let d = f
                .rdma_write(
                    SimTime::ZERO,
                    conn,
                    Dir::AtoB,
                    rkey,
                    addr + off,
                    Bytes::from(vec![1u8; 128 << 10]),
                )
                .unwrap();
            finishes.push(d.at);
        }
        let total_bytes = 64u64 * (128 << 10);
        let last = finishes.iter().max().unwrap();
        let rate = total_bytes as f64 / last.as_secs_f64();
        let ceiling = f.wire().effective_bw(gbps(100)) as f64;
        assert!(
            rate <= ceiling * 1.02,
            "rate {rate} exceeds ceiling {ceiling}"
        );
        assert!(
            rate >= ceiling * 0.80,
            "rate {rate} far below ceiling {ceiling}"
        );
    }

    #[test]
    fn dpu_tcp_receive_path_is_slower_than_host() {
        // host -> dpu (TCP) vs host -> host (TCP), 1 MiB payload.
        let mut f = Fabric::new(
            Transport::Tcp,
            vec![
                spec("host", CoreClass::HostX86, 48, false),
                spec("dpu", CoreClass::DpuArm, 16, true),
                spec("host2", CoreClass::HostX86, 48, false),
            ],
            9,
        );
        let c_dpu = f.connect(NodeId(0), NodeId(1), PdId(0), PdId(0)).unwrap();
        let c_host = f.connect(NodeId(0), NodeId(2), PdId(0), PdId(0)).unwrap();
        let to_dpu = f
            .send(
                SimTime::ZERO,
                c_dpu,
                Dir::AtoB,
                Bytes::from(vec![0u8; 1 << 20]),
            )
            .unwrap();
        let to_host = f
            .send(
                SimTime::ZERO,
                c_host,
                Dir::AtoB,
                Bytes::from(vec![0u8; 1 << 20]),
            )
            .unwrap();
        assert!(
            to_dpu.at > to_host.at,
            "DPU RX {:?} must lag host RX {:?}",
            to_dpu.at,
            to_host.at
        );
    }

    #[test]
    fn flow_hint_raises_dpu_rx_cost() {
        let mk = |flows: usize| {
            let mut f = Fabric::new(
                Transport::Tcp,
                vec![
                    spec("host", CoreClass::HostX86, 48, false),
                    spec("dpu", CoreClass::DpuArm, 16, true),
                ],
                9,
            );
            f.set_flow_hint(NodeId(1), flows);
            let c = f.connect(NodeId(0), NodeId(1), PdId(0), PdId(0)).unwrap();
            f.send(SimTime::ZERO, c, Dir::AtoB, Bytes::from(vec![0u8; 1 << 20]))
                .unwrap()
                .at
        };
        assert!(mk(32) > mk(2), "contention must slow DPU RX");
    }

    #[test]
    fn subchannels_share_qps_but_count_ops_separately() {
        let (mut f, conn, rkey, addr) = rdma_pair();
        let qp_before = f.node(NodeId(0)).rdma.qp_count();
        let sub = f.open_subchannel(conn).unwrap();
        // No new QP state was created on either side.
        assert_eq!(f.node(NodeId(0)).rdma.qp_count(), qp_before);
        assert_eq!(
            f.qps(sub, Dir::AtoB).unwrap(),
            f.qps(conn, Dir::AtoB).unwrap()
        );
        assert_eq!(
            f.endpoints(sub, Dir::BtoA).unwrap(),
            f.endpoints(conn, Dir::BtoA).unwrap()
        );
        // One-sided ops work through the sub-channel via the root's QPs.
        let d = f
            .rdma_write(
                SimTime::ZERO,
                sub,
                Dir::AtoB,
                rkey,
                addr,
                Bytes::from_static(b"sub"),
            )
            .unwrap();
        assert!(d.at > SimTime::ZERO);
        assert_eq!(f.conn_ops(sub), 1);
        assert_eq!(f.conn_ops(conn), 0);
        // A sub-channel of a sub-channel collapses to the same root.
        let sub2 = f.open_subchannel(sub).unwrap();
        assert_eq!(
            f.qps(sub2, Dir::AtoB).unwrap(),
            f.qps(conn, Dir::AtoB).unwrap()
        );
    }

    #[test]
    fn cross_tenant_one_sided_fails_through_fabric() {
        let mut f = two_hosts(Transport::Rdma);
        let pd_a = f.rdma_mut(NodeId(0)).alloc_pd("tenant-a");
        let pd_victim = f.rdma_mut(NodeId(1)).alloc_pd("victim");
        let pd_attacker = f.rdma_mut(NodeId(1)).alloc_pd("attacker-side");
        // Victim registers memory under pd_victim; the connection's server
        // QP belongs to pd_attacker, so the stolen rkey must not work.
        let buf = f
            .rdma_mut(NodeId(1))
            .alloc_buffer(4096, MemoryDomain::HostDram)
            .unwrap();
        let (_, rkey, _) = f
            .rdma_mut(NodeId(1))
            .reg_mr(
                pd_victim,
                buf,
                4096,
                AccessFlags::remote_rw(),
                Expiry::Never,
            )
            .unwrap();
        let conn = f.connect(NodeId(0), NodeId(1), pd_a, pd_attacker).unwrap();
        let err = f
            .rdma_read(SimTime::ZERO, conn, Dir::AtoB, rkey, buf, 64)
            .unwrap_err();
        assert_eq!(err, FabricError::Verbs(VerbsError::PdMismatch));
        assert_eq!(f.node(NodeId(1)).rdma.violations().pd_mismatch, 1);
    }
}
