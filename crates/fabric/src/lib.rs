//! # ros2-fabric — UCX/libfabric-style data-plane transports
//!
//! The paper's data plane runs "UCX or libfabric over either TCP or RDMA"
//! (§3.2). This crate is that layer: typed connections between nodes that
//! carry two-sided messages on both transports and one-sided RDMA
//! READ/WRITE on the RDMA transport, with every CPU, kernel, socket, NIC,
//! switch and enforcement cost accounted against the right resource.
//!
//! The cost structure is what makes the paper's findings reproducible:
//!
//! * TCP pays per-message CPU on both ends, a serialized per-socket stage,
//!   and a node-wide serialized kernel stage — so small-I/O throughput
//!   plateaus regardless of core count (Fig. 4c);
//! * RDMA pays a small initiator cost and nothing on the target for
//!   one-sided ops — so it scales with cores (Fig. 4d) and survives DPU
//!   offload at host parity (Fig. 5b);
//! * a DPU running TCP pays the §4.4 receive-path penalty, reproducing the
//!   good-TX / weak-RX asymmetry (Fig. 5a).

#![warn(missing_docs)]

#[allow(clippy::module_inception)]
pub mod fabric;
pub mod node;

pub use fabric::{ConnId, Delivery, Dir, Fabric, FabricError, WireTraversalStats};
pub use node::{FabricNode, NodeSpec};
