//! The batched wire traversal must be *observationally identical* to the
//! per-segment booking loop: every delivery instant, every byte counter,
//! on both transports, for arbitrary interleavings of two-sided sends and
//! one-sided RDMA ops — contended and not.
//!
//! Strategy: drive two fabrics built from the same seed through the same
//! operation sequence, one with `set_force_per_segment(true)`, and compare
//! every observable. Randomized mixes come from `SimRng` so a failing seed
//! replays exactly.

use bytes::Bytes;
use proptest::prelude::*;
use ros2_fabric::{ConnId, Dir, Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, Transport};
use ros2_sim::{SimRng, SimTime};
use ros2_verbs::{AccessFlags, Expiry, MemAddr, MemoryDomain, NodeId, RKey};

fn spec(name: &str, cores: usize, port_gbps: u64) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(port_gbps),
        mem_budget: 1 << 30,
        dpu_tcp_rx: None,
    }
}

/// A two-node fabric plus a registered 2 MiB remote window (RDMA only).
/// Distinct per-node port rates make traffic towards the faster node hit
/// the `rx_rate > tx_rate` decline guard of the batched wire path.
fn build(transport: Transport, port_a: u64, port_b: u64) -> (Fabric, ConnId, RKey, MemAddr) {
    let mut f = Fabric::new(
        transport,
        vec![spec("a", 8, port_a), spec("b", 8, port_b)],
        11,
    );
    let pd_a = f.rdma_mut(NodeId(0)).alloc_pd("a");
    let pd_b = f.rdma_mut(NodeId(1)).alloc_pd("b");
    let conn = f.connect(NodeId(0), NodeId(1), pd_a, pd_b).unwrap();
    let (rkey, buf) = if transport == Transport::Rdma {
        let buf = f
            .rdma_mut(NodeId(1))
            .alloc_buffer(2 << 20, MemoryDomain::HostDram)
            .unwrap();
        let (_, rkey, _) = f
            .rdma_mut(NodeId(1))
            .reg_mr(pd_b, buf, 2 << 20, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        (rkey, buf)
    } else {
        (RKey(0), 0)
    };
    (f, conn, rkey, buf)
}

/// One step of a pre-generated randomized schedule.
#[derive(Clone, Debug)]
struct ScheduledOp {
    now: SimTime,
    kind: u64,
    to_b: bool,
    len: u64,
}

/// Materializes one operation schedule from a seed: mixed cadence (bursts
/// at one instant plus forward jumps) so some traversals contend and some
/// do not.
fn schedule(seed: u64, steps: u32) -> Vec<ScheduledOp> {
    let mut rng = SimRng::new(seed);
    let mut now = SimTime::ZERO;
    (0..steps)
        .map(|_| {
            if rng.chance(0.4) {
                now += ros2_sim::SimDuration::from_nanos(rng.below(3_000_000));
            }
            ScheduledOp {
                now,
                kind: rng.below(3),
                to_b: rng.chance(0.5),
                len: 1 + rng.below(1 << 20),
            }
        })
        .collect()
}

/// Applies one scheduled operation to `f`; returns the delivery instant.
fn drive_op(
    f: &mut Fabric,
    conn: ConnId,
    rkey: RKey,
    buf: MemAddr,
    transport: Transport,
    op: &ScheduledOp,
) -> SimTime {
    if transport == Transport::Rdma && op.kind == 1 {
        // One-sided WRITE (always towards node B's registered window).
        f.rdma_write(
            op.now,
            conn,
            Dir::AtoB,
            rkey,
            buf,
            Bytes::from(vec![7u8; op.len as usize]),
        )
        .unwrap()
        .at
    } else if transport == Transport::Rdma && op.kind == 2 {
        f.rdma_read(op.now, conn, Dir::AtoB, rkey, buf, op.len.min(2 << 20))
            .unwrap()
            .at
    } else {
        let dir = if op.to_b { Dir::AtoB } else { Dir::BtoA };
        f.send(op.now, conn, dir, Bytes::from(vec![3u8; op.len as usize]))
            .unwrap()
            .at
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched and per-segment fabrics agree on every delivery instant and
    /// byte counter across random op mixes, transports and port rates
    /// (including asymmetric rates, where the fast path must decline).
    #[test]
    fn batched_equals_per_segment(seed in any::<u64>(), tcp in any::<bool>(), slow_b in any::<bool>()) {
        let transport = if tcp { Transport::Tcp } else { Transport::Rdma };
        // Asymmetric down-rate on B: traffic B->A then has rx_rate >
        // tx_rate, so the batched path must decline (the decline guard is
        // itself under test), while A->B stays eligible.
        let (port_a, port_b) = if slow_b { (100, 40) } else { (100, 100) };
        let (mut fast, conn_f, rkey_f, buf_f) = build(transport, port_a, port_b);
        let (mut slow, conn_s, rkey_s, buf_s) = build(transport, port_a, port_b);
        slow.set_force_per_segment(true);

        for (step, op) in schedule(seed, 120).iter().enumerate() {
            let at_fast = drive_op(&mut fast, conn_f, rkey_f, buf_f, transport, op);
            let at_slow = drive_op(&mut slow, conn_s, rkey_s, buf_s, transport, op);
            prop_assert_eq!(
                at_fast, at_slow,
                "seed {seed} step {step} t={:?}: fast {at_fast:?} != slow {at_slow:?}",
                op.now
            );
        }
        for n in [NodeId(0), NodeId(1)] {
            prop_assert_eq!(fast.node(n).bytes_tx, slow.node(n).bytes_tx);
            prop_assert_eq!(fast.node(n).bytes_rx, slow.node(n).bytes_rx);
        }
        // The forced fabric must never have taken the batched path.
        prop_assert_eq!(slow.wire_traversal_stats().batched, 0);
    }
}

/// An uncontended large-transfer stream books nearly every traversal via
/// the closed-form window, and the booking-level hit rate clears 90 %.
#[test]
fn uncontended_stream_hits_fast_path() {
    let (mut f, conn, rkey, buf) = build(Transport::Rdma, 100, 100);
    let mut now = SimTime::ZERO;
    for _ in 0..256 {
        let d = f
            .rdma_write(
                now,
                conn,
                Dir::AtoB,
                rkey,
                buf,
                Bytes::from(vec![0u8; 1 << 20]),
            )
            .unwrap();
        now = d.at; // closed loop: next op after the previous completes
    }
    let wire = f.wire_traversal_stats();
    assert!(
        wire.batched_rate() > 0.9,
        "batched rate {:.3} ({} / {})",
        wire.batched_rate(),
        wire.batched,
        wire.batched + wire.per_segment
    );
    let stats = f.resource_stats();
    assert!(
        stats.hit_rate() > 0.9,
        "booking hit rate {:.3} ({}/{})",
        stats.hit_rate(),
        stats.fastpath_hits,
        stats.bookings
    );
}

/// A faster RX pipe would leave idle holes between segment bookings that
/// one contiguous window would mis-book, so the batched path must decline
/// whenever `rx_rate > tx_rate` — and still match the per-segment model.
#[test]
fn faster_rx_pipe_declines_batched_path() {
    // A's port is 40 Gbps, B's 100 Gbps: A->B traffic has rx_rate > tx_rate.
    let (mut f, conn, rkey, buf) = build(Transport::Rdma, 40, 100);
    let (mut g, conn2, rkey2, buf2) = build(Transport::Rdma, 40, 100);
    g.set_force_per_segment(true);
    for i in 0..8u64 {
        let at = SimTime::from_micros(i * 400);
        let d = f
            .rdma_write(
                at,
                conn,
                Dir::AtoB,
                rkey,
                buf,
                Bytes::from(vec![0u8; 1 << 20]),
            )
            .unwrap();
        let d2 = g
            .rdma_write(
                at,
                conn2,
                Dir::AtoB,
                rkey2,
                buf2,
                Bytes::from(vec![0u8; 1 << 20]),
            )
            .unwrap();
        assert_eq!(d.at, d2.at, "write {i} diverged on asymmetric rates");
    }
    let wire = f.wire_traversal_stats();
    assert_eq!(
        wire.batched, 0,
        "payload traversals towards the faster pipe must decline the batched path"
    );
    assert!(wire.per_segment > 0);
}

/// Pinned regression for the conservation suite's byte accounting and the
/// absolute timing of a canonical transfer: a 1 MiB RDMA WRITE at t=0 on
/// the 100 Gbps testbed. If the wire model or the booking core shifts by a
/// single nanosecond, this fails before any figure silently moves.
#[test]
fn canonical_write_timing_is_pinned() {
    let (mut f, conn, rkey, buf) = build(Transport::Rdma, 100, 100);
    let d = f
        .rdma_write(
            SimTime::ZERO,
            conn,
            Dir::AtoB,
            rkey,
            buf,
            Bytes::from(vec![0u8; 1 << 20]),
        )
        .unwrap();
    // Both paths must produce this exact instant (see PINNED_AT below).
    let (mut g, conn2, rkey2, buf2) = build(Transport::Rdma, 100, 100);
    g.set_force_per_segment(true);
    let d2 = g
        .rdma_write(
            SimTime::ZERO,
            conn2,
            Dir::AtoB,
            rkey2,
            buf2,
            Bytes::from(vec![0u8; 1 << 20]),
        )
        .unwrap();
    assert_eq!(d.at, d2.at, "fast/slow divergence on the canonical write");

    const PINNED_AT_NS: u64 = 102_546;
    assert_eq!(
        d.at.as_nanos(),
        PINNED_AT_NS,
        "canonical 1 MiB RDMA WRITE completion moved"
    );
    assert_eq!(f.node(NodeId(0)).bytes_tx, 1 << 20);
    assert_eq!(f.node(NodeId(1)).bytes_rx, 1 << 20);
    assert_eq!(f.node(NodeId(1)).bytes_tx, 0);
    assert_eq!(f.node(NodeId(0)).bytes_rx, 0);
}

/// TCP sends are likewise conserved and pinned (per-segment framing grows
/// on-wire bytes; payload accounting must not).
#[test]
fn tcp_byte_accounting_is_pinned() {
    let (mut f, conn, _, _) = build(Transport::Tcp, 100, 100);
    let mut total = 0u64;
    for i in 1..=16u64 {
        let len = i * 60_000;
        f.send(
            SimTime::ZERO,
            conn,
            Dir::AtoB,
            Bytes::from(vec![0u8; len as usize]),
        )
        .unwrap();
        total += len;
    }
    assert_eq!(f.node(NodeId(0)).bytes_tx, total);
    assert_eq!(f.node(NodeId(1)).bytes_rx, total);
    assert_eq!(total, 8_160_000);
}
