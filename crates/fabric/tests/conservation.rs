//! Property tests: the fabric conserves bytes and never exceeds physical
//! ceilings, for arbitrary message mixes on both transports.

use bytes::Bytes;
use proptest::prelude::*;
use ros2_fabric::{Dir, Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, Transport};
use ros2_sim::SimTime;
use ros2_verbs::{AccessFlags, Expiry, MemoryDomain, NodeId};

fn spec(name: &str, cores: usize) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 1 << 30,
        dpu_tcp_rx: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every payload byte sent is accounted once at the sender and once at
    /// the receiver, on both transports, for any mix of sizes/directions.
    #[test]
    fn bytes_are_conserved(
        tcp in any::<bool>(),
        msgs in prop::collection::vec((any::<bool>(), 1usize..300_000), 1..40),
    ) {
        let transport = if tcp { Transport::Tcp } else { Transport::Rdma };
        let mut f = Fabric::new(transport, vec![spec("a", 8), spec("b", 8)], 5);
        let pd_a = f.rdma_mut(NodeId(0)).alloc_pd("a");
        let pd_b = f.rdma_mut(NodeId(1)).alloc_pd("b");
        let conn = f.connect(NodeId(0), NodeId(1), pd_a, pd_b).unwrap();
        let (mut a_tx, mut b_tx) = (0u64, 0u64);
        for (to_b, len) in msgs {
            let dir = if to_b { Dir::AtoB } else { Dir::BtoA };
            let d = f.send(SimTime::ZERO, conn, dir, Bytes::from(vec![0u8; len])).unwrap();
            prop_assert_eq!(d.data.unwrap().len(), len);
            if to_b { a_tx += len as u64 } else { b_tx += len as u64 }
        }
        prop_assert_eq!(f.node(NodeId(0)).bytes_tx, a_tx);
        prop_assert_eq!(f.node(NodeId(1)).bytes_rx, a_tx);
        prop_assert_eq!(f.node(NodeId(1)).bytes_tx, b_tx);
        prop_assert_eq!(f.node(NodeId(0)).bytes_rx, b_tx);
    }

    /// Aggregate one-sided throughput can never exceed the wire's payload
    /// ceiling, no matter the concurrency pattern.
    #[test]
    fn wire_ceiling_is_never_exceeded(
        sizes in prop::collection::vec(4096u64..1_048_576, 4..48),
    ) {
        let mut f = Fabric::new(Transport::Rdma, vec![spec("a", 16), spec("b", 16)], 9);
        let pd_a = f.rdma_mut(NodeId(0)).alloc_pd("a");
        let pd_b = f.rdma_mut(NodeId(1)).alloc_pd("b");
        let conn = f.connect(NodeId(0), NodeId(1), pd_a, pd_b).unwrap();
        let total: u64 = sizes.iter().sum();
        let buf = f.rdma_mut(NodeId(1)).alloc_buffer(2 << 20, MemoryDomain::HostDram).unwrap();
        let (_, rkey, _) = f
            .rdma_mut(NodeId(1))
            .reg_mr(pd_b, buf, 2 << 20, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        let mut last = SimTime::ZERO;
        for &s in &sizes {
            let d = f
                .rdma_write(SimTime::ZERO, conn, Dir::AtoB, rkey, buf, Bytes::from(vec![0u8; s as usize]))
                .unwrap();
            last = last.max(d.at);
        }
        let rate = total as f64 / last.as_secs_f64();
        let ceiling = f.wire().effective_bw(gbps(100)) as f64;
        prop_assert!(rate <= ceiling * 1.05, "rate {rate} vs ceiling {ceiling}");
    }

    /// Latency is monotone in payload size for isolated sends.
    #[test]
    fn isolated_latency_monotone_in_size(base in 1usize..100_000, extra in 1usize..500_000) {
        let run = |len: usize| {
            let mut f = Fabric::new(Transport::Tcp, vec![spec("a", 8), spec("b", 8)], 5);
            let conn = f
                .connect(NodeId(0), NodeId(1), ros2_verbs::PdId(0), ros2_verbs::PdId(0))
                .unwrap();
            f.send(SimTime::ZERO, conn, Dir::AtoB, Bytes::from(vec![0u8; len]))
                .unwrap()
                .at
        };
        prop_assert!(run(base + extra) > run(base));
    }
}
