//! Placement properties over random pool-map transitions.
//!
//! The cluster's availability story rests on three invariants of
//! `PoolMap::replica_set` (HRW placement):
//!
//! 1. **Determinism** — the set is a pure function of `(map, oid, rf)`.
//! 2. **Distinctness** — `min(rf, up_count)` *distinct* healthy engines
//!    are always chosen, leader first.
//! 3. **Minimal disruption** — a membership transition moves only the
//!    objects whose replica set actually changed: killing an engine
//!    leaves every set that did not contain it untouched (and never
//!    evicts a survivor from an affected set); adding an engine inserts
//!    at most that engine into any set (evicting at most one member),
//!    and never reshuffles the survivors among themselves.
//!
//! Driven over random transition sequences so compound histories (kill
//! then add then kill …) are covered, not just single steps.

use proptest::prelude::*;
use ros2_daos::{ObjClass, ObjectId, PoolMap, ReplicaSet};
use ros2_verbs::NodeId;

#[derive(Copy, Clone, Debug)]
enum Transition {
    /// Add a fresh engine.
    Add,
    /// Kill the `i % up_count`-th currently-healthy engine.
    Kill(usize),
}

fn transitions() -> impl Strategy<Value = Vec<Transition>> {
    prop::collection::vec(
        prop_oneof![
            Just(Transition::Add),
            (0usize..64).prop_map(Transition::Kill),
        ],
        1..8,
    )
}

/// Applies one transition, keeping at least one engine healthy. Returns
/// the slot killed, if any.
fn apply(map: &mut PoolMap, t: Transition, next_node: &mut u32) -> Option<usize> {
    match t {
        Transition::Add => {
            let node = NodeId(*next_node);
            *next_node += 1;
            map.add_engine(node);
            None
        }
        Transition::Kill(i) => {
            if map.up_count() <= 1 {
                return None; // keep the pool alive
            }
            let up_slots: Vec<usize> = (0..map.len())
                .filter(|&s| map.members()[s].health == ros2_daos::EngineHealth::Up)
                .collect();
            let slot = up_slots[i % up_slots.len()];
            map.kill(slot).expect("killing a healthy slot succeeds");
            Some(slot)
        }
    }
}

fn sample_oids(n: u64) -> Vec<ObjectId> {
    (0..n)
        .map(|i| {
            let class = if i % 3 == 0 {
                ObjClass::S1
            } else {
                ObjClass::Sx
            };
            ObjectId::new(class, i * 7919 + 13)
        })
        .collect()
}

fn as_vec(set: &ReplicaSet) -> Vec<usize> {
    set.iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn placement_is_deterministic_distinct_and_minimally_disruptive(
        engines in 1usize..9,
        rf in 1usize..4,
        ts in transitions(),
    ) {
        let mut map = PoolMap::new((0..engines).map(|i| NodeId(i as u32 + 1)).collect());
        let mut next_node = engines as u32 + 1;
        let oids = sample_oids(160);

        for t in ts {
            let before: Vec<ReplicaSet> =
                oids.iter().map(|o| map.replica_set(o, rf)).collect();
            let pre_len = map.len();
            let version_before = map.version();
            let killed = apply(&mut map, t, &mut next_node);
            let grew = map.len() > pre_len;
            if killed.is_some() || grew {
                prop_assert!(map.version() > version_before, "transitions bump the revision");
            }

            for (oid, pre) in oids.iter().zip(&before) {
                let post = map.replica_set(oid, rf);

                // (1) Determinism: recomputation agrees.
                prop_assert_eq!(post, map.replica_set(oid, rf));

                // (2) Distinctness and health.
                let slots = as_vec(&post);
                let mut dedup = slots.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), slots.len(), "duplicate replica: {:?}", slots);
                prop_assert_eq!(
                    slots.len(),
                    rf.min(map.up_count()),
                    "set size must be min(rf, up)"
                );
                for &s in &slots {
                    prop_assert_eq!(
                        map.members()[s].health,
                        ros2_daos::EngineHealth::Up,
                        "down engine routed"
                    );
                }

                // (3) Minimal disruption.
                let pre_slots = as_vec(pre);
                if let Some(dead) = killed {
                    if !pre_slots.contains(&dead) {
                        prop_assert_eq!(
                            &slots, &pre_slots,
                            "kill of a non-member moved the object"
                        );
                    } else {
                        for s in pre_slots.iter().filter(|&&s| s != dead) {
                            prop_assert!(
                                slots.contains(s),
                                "survivor {} evicted by kill: {:?} -> {:?}",
                                s, pre_slots, slots
                            );
                        }
                    }
                } else if grew {
                    let added = map.len() - 1;
                    let new_members: Vec<usize> = slots
                        .iter()
                        .copied()
                        .filter(|s| !pre_slots.contains(s))
                        .collect();
                    prop_assert!(
                        new_members.is_empty() || new_members == vec![added],
                        "add may insert only the added engine: {:?} -> {:?}",
                        pre_slots, slots
                    );
                    let evicted = pre_slots
                        .iter()
                        .filter(|s| !slots.contains(s))
                        .count();
                    prop_assert!(
                        evicted <= 1,
                        "add evicted more than one member: {:?} -> {:?}",
                        pre_slots, slots
                    );
                }
            }
        }
    }
}
