//! Ring-vs-serial client equivalence: driving randomized op streams
//! through [`OpRing`] at QD > 1 must be *functionally* bit-identical to
//! the forced-serial drain (`set_force_serial_pipeline`) — every payload,
//! every Ok/Err, every epoch, every engine-side counter. Epochs are
//! allocated at submission (not execution), so reordering completions can
//! never change what a fetch observes; these tests are the teeth behind
//! that argument. Timing is exactly what the two paths are *allowed* to
//! disagree on — the ring overlaps the completion share of the client CPU
//! — so instants are compared only for determinism (same world run twice),
//! never across arms.

use bytes::Bytes;
use ros2_daos::{
    AKey, ClientOp, ClientOpResult, DKey, DaosClient, DaosCostModel, DaosEngine, EngineCluster,
    Epoch, ObjClass, ObjectId, OpRing, ValueKind,
};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{SimDuration, SimRng, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

fn engine(ssds: usize) -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        ssds,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("cont0").unwrap();
    e
}

fn node(name: &str, cores: usize) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 8 << 30,
        dpu_tcp_rx: None,
    }
}

/// A world with `engines` storage nodes at replication factor `rf`.
fn world(engines: usize, rf: usize, jobs: usize) -> (Fabric, EngineCluster, DaosClient) {
    let mut specs = vec![node("client", 48)];
    let mut servers = Vec::new();
    for i in 0..engines {
        specs.push(node(&format!("storage{i}"), 64));
        servers.push(NodeId(1 + i as u32));
    }
    let mut fabric = Fabric::new(Transport::Rdma, specs, 23);
    let cluster = EngineCluster::new(
        (0..engines).map(|_| engine(4)).collect(),
        servers.clone(),
        rf,
    );
    let client = DaosClient::connect_multi(
        &mut fabric,
        NodeId(0),
        &servers,
        "tenant",
        "cont0",
        jobs,
        4 << 20,
        MemoryDomain::HostDram,
        DaosCostModel::default_model(),
    )
    .unwrap();
    (fabric, cluster, client)
}

/// A randomized client-level op stream: striped and single-target
/// objects, single values and array extents, SCM- and NVMe-sized
/// payloads, LATEST and past-epoch reads. Epoch numbers for past reads
/// lean on the determinism invariant itself: both arms must allocate the
/// same epoch sequence or the reads diverge.
fn plan_ops(seed: u64, steps: usize) -> Vec<(SimTime, ClientOp)> {
    let mut rng = SimRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut updates_so_far = 0u64;
    (0..steps)
        .map(|_| {
            if rng.chance(0.5) {
                now += SimDuration::from_nanos(rng.below(2_000_000));
            }
            let oid = if rng.chance(0.7) {
                ObjectId::new(ObjClass::Sx, rng.below(4))
            } else {
                ObjectId::new(ObjClass::S1, 100 + rng.below(3))
            };
            let dkey = DKey::from_u64(rng.below(16));
            let single = rng.chance(0.3);
            let akey = if single {
                AKey::from_str("v")
            } else {
                AKey::from_str("data")
            };
            let kind = if single {
                ValueKind::Single
            } else {
                ValueKind::Array {
                    offset: rng.below(8) * 4096,
                }
            };
            let op = if rng.chance(0.6) {
                updates_so_far += 1;
                let len = if rng.chance(0.5) {
                    1 + rng.below(4096)
                } else {
                    4097 + rng.below(96 << 10)
                };
                let fill = (rng.below(255) + 1) as u8;
                ClientOp::Update {
                    oid,
                    dkey,
                    akey,
                    kind,
                    data: Bytes::from(vec![fill; len as usize]),
                }
            } else {
                let epoch = if rng.chance(0.8) || updates_so_far == 0 {
                    Epoch::LATEST
                } else {
                    Epoch(1 + rng.below(updates_so_far))
                };
                ClientOp::Fetch {
                    oid,
                    dkey,
                    akey,
                    kind,
                    epoch,
                    len: 1 + rng.below(64 << 10),
                }
            };
            (now, op)
        })
        .collect()
}

/// Functional outcome, instants stripped (the arms are free to disagree
/// on time, never on data).
type Outcome = Result<Option<Bytes>, ros2_daos::DaosError>;

fn functional(r: &ClientOpResult) -> Outcome {
    match r {
        ClientOpResult::Update(Ok(_)) => Ok(None),
        ClientOpResult::Update(Err(e)) => Err(e.clone()),
        ClientOpResult::Fetch(Ok((b, _))) => Ok(Some(b.clone())),
        ClientOpResult::Fetch(Err(e)) => Err(e.clone()),
    }
}

/// Full outcome, instants kept (run-twice determinism only).
fn timed(r: &ClientOpResult) -> (Outcome, Option<SimTime>) {
    let t = match r {
        ClientOpResult::Update(Ok(at)) => Some(*at),
        ClientOpResult::Fetch(Ok((_, at))) => Some(*at),
        _ => None,
    };
    (functional(r), t)
}

/// Drives the whole plan through one ring of depth `qd` and returns the
/// per-op results in submission order.
fn run_ring(
    fabric: &mut Fabric,
    cluster: &mut EngineCluster,
    client: &mut DaosClient,
    plan: &[(SimTime, ClientOp)],
    qd: usize,
) -> Vec<ClientOpResult> {
    let mut ring = OpRing::new(0, qd);
    for (now, op) in plan {
        ring.submit(client, fabric, cluster, *now, op.clone());
    }
    ring.drain(client, fabric, cluster)
}

fn assert_worlds_agree(
    a: (&EngineCluster, &DaosClient),
    b: (&EngineCluster, &DaosClient),
    what: &str,
) {
    assert_eq!(a.0.len(), b.0.len());
    for slot in 0..a.0.len() {
        let (ea, eb) = (a.0.engine(slot), b.0.engine(slot));
        assert_eq!(
            ea.vos_stats(),
            eb.vos_stats(),
            "{what}: engine {slot} VOS stats diverged"
        );
        assert_eq!(
            ea.data_plane_stats(),
            eb.data_plane_stats(),
            "{what}: engine {slot} data-plane counters diverged"
        );
        assert_eq!(
            ea.rpcs(),
            eb.rpcs(),
            "{what}: engine {slot} rpc counters diverged"
        );
    }
    assert_eq!(a.1.ops(), b.1.ops(), "{what}: client op counters diverged");
}

#[test]
fn ring_equals_forced_serial_single_engine() {
    for seed in [3u64, 17, 92, 1105] {
        for qd in [2usize, 4, 8] {
            let plan = plan_ops(seed, 120);

            let (mut f1, mut cl1, mut c1) = world(1, 1, 1);
            let ring_out = run_ring(&mut f1, &mut cl1, &mut c1, &plan, qd);

            let (mut f2, mut cl2, mut c2) = world(1, 1, 1);
            c2.set_force_serial_pipeline(true);
            let serial_out = run_ring(&mut f2, &mut cl2, &mut c2, &plan, qd);

            assert_eq!(ring_out.len(), plan.len());
            for (i, (r, s)) in ring_out.iter().zip(&serial_out).enumerate() {
                assert_eq!(
                    functional(r),
                    functional(s),
                    "seed {seed} qd {qd} op {i}: ring != forced-serial"
                );
            }
            assert_worlds_agree(
                (&cl1, &c1),
                (&cl2, &c2),
                &format!("seed {seed} qd {qd} ring/serial"),
            );
        }
    }
}

#[test]
fn ring_equals_forced_serial_rf2_fanout() {
    for seed in [3u64, 17, 92, 1105] {
        let plan = plan_ops(seed, 100);

        let (mut f1, mut cl1, mut c1) = world(3, 2, 1);
        let ring_out = run_ring(&mut f1, &mut cl1, &mut c1, &plan, 6);

        let (mut f2, mut cl2, mut c2) = world(3, 2, 1);
        c2.set_force_serial_pipeline(true);
        let serial_out = run_ring(&mut f2, &mut cl2, &mut c2, &plan, 6);

        for (i, (r, s)) in ring_out.iter().zip(&serial_out).enumerate() {
            assert_eq!(
                functional(r),
                functional(s),
                "seed {seed} op {i}: RF=2 ring != forced-serial"
            );
        }
        assert_worlds_agree((&cl1, &c1), (&cl2, &c2), &format!("seed {seed} RF=2"));
    }
}

#[test]
fn ring_runs_are_deterministic_to_the_instant() {
    for seed in [17u64, 92] {
        let plan = plan_ops(seed, 100);
        let (mut f1, mut cl1, mut c1) = world(3, 2, 1);
        let out1 = run_ring(&mut f1, &mut cl1, &mut c1, &plan, 8);
        let (mut f2, mut cl2, mut c2) = world(3, 2, 1);
        let out2 = run_ring(&mut f2, &mut cl2, &mut c2, &plan, 8);
        for (i, (a, b)) in out1.iter().zip(&out2).enumerate() {
            assert_eq!(timed(a), timed(b), "seed {seed} op {i}: run-twice drift");
        }
        assert_worlds_agree((&cl1, &c1), (&cl2, &c2), &format!("seed {seed} run-twice"));
    }
}

#[test]
fn ring_retires_out_of_order_but_returns_in_submission_order() {
    // A big op submitted first, small ops behind it: the small ops
    // complete (and retire) before the elephant, yet the result vector
    // stays in submission order.
    let (mut f, mut cl, mut c) = world(1, 1, 1);
    let oid = ObjectId::new(ObjClass::Sx, 1);
    let mk = |i: u64, len: usize| ClientOp::Update {
        oid,
        dkey: DKey::from_u64(i),
        akey: AKey::from_str("data"),
        kind: ValueKind::Array { offset: 0 },
        data: Bytes::from(vec![i as u8 + 1; len]),
    };
    let mut ring = OpRing::new(0, 8);
    ring.submit(&mut c, &mut f, &mut cl, SimTime::ZERO, mk(0, 2 << 20));
    for i in 1..6u64 {
        ring.submit(&mut c, &mut f, &mut cl, SimTime::ZERO, mk(i, 4 << 10));
    }
    let results = ring.drain(&mut c, &mut f, &mut cl);
    assert_eq!(results.len(), 6);
    let done: Vec<SimTime> = results
        .iter()
        .map(|r| r.clone().into_update().unwrap())
        .collect();
    // Submission order preserved in the result vector...
    assert!(
        done[1..].iter().all(|&t| t < done[0]),
        "4 KiB ops must complete before the 2 MiB elephant: {done:?}"
    );
    // ...while the retire log shows completion order: slot 0 last.
    let log = ring.retire_log();
    assert_eq!(log.len(), 6);
    assert_eq!(*log.last().unwrap(), 0, "elephant retires last: {log:?}");
    // Read-back: every op actually landed.
    for i in 0..6u64 {
        let (b, _) = c
            .fetch(
                &mut f,
                &mut cl,
                *done.iter().max().unwrap(),
                0,
                oid,
                DKey::from_u64(i),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                64,
            )
            .unwrap();
        assert!(b.iter().all(|&x| x == i as u8 + 1));
    }
}

#[test]
fn ring_gates_admission_at_depth() {
    // At depth 2, submitting a third op must first retire one: the ring
    // never holds more than QD ops in flight.
    let (mut f, mut cl, mut c) = world(1, 1, 1);
    let oid = ObjectId::new(ObjClass::Sx, 2);
    let mut ring = OpRing::new(0, 2);
    for i in 0..5u64 {
        ring.submit(
            &mut c,
            &mut f,
            &mut cl,
            SimTime::ZERO,
            ClientOp::Update {
                oid,
                dkey: DKey::from_u64(i),
                akey: AKey::from_str("data"),
                kind: ValueKind::Array { offset: 0 },
                data: Bytes::from(vec![7u8; 8 << 10]),
            },
        );
        assert!(ring.in_flight() <= 2, "depth violated at op {i}");
    }
    let results = ring.drain(&mut c, &mut f, &mut cl);
    assert_eq!(results.len(), 5);
    for r in results {
        r.into_update().unwrap();
    }
}

#[test]
fn mid_flight_engine_kill_rearms_fetch_legs() {
    // Preamble: RF=2 writes so every extent lives on two engines. Then a
    // fetch-only ring; the leader of the hot object dies *between
    // submissions*, with staged-but-unexecuted legs pointing at it. Those
    // legs must re-arm onto the survivor — zero failed ops, correct
    // bytes, the re-arms counted — and the whole run must replay
    // deterministically.
    let run = || {
        let (mut f, mut cl, mut c) = world(3, 2, 1);
        let oid = ObjectId::new(ObjClass::Sx, 5);
        let n_writes = 8u64;
        for i in 0..n_writes {
            c.update(
                &mut f,
                &mut cl,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(i),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![i as u8 + 1; 16 << 10]),
            )
            .unwrap();
        }
        let victim = cl.route_update(&oid).leader().expect("healthy leader");

        let mut ring = OpRing::new(0, 16);
        let t0 = SimTime::from_millis(1);
        let fetch = |i: u64| ClientOp::Fetch {
            oid,
            dkey: DKey::from_u64(i),
            akey: AKey::from_str("data"),
            kind: ValueKind::Array { offset: 0 },
            epoch: Epoch::LATEST,
            len: 16 << 10,
        };
        // First half staged against the pre-kill map (some legs point at
        // the doomed leader)...
        for i in 0..4u64 {
            ring.submit(&mut c, &mut f, &mut cl, t0, fetch(i));
        }
        cl.kill_engine(victim).unwrap();
        // ...second half routes degraded from the start.
        for i in 4..n_writes {
            ring.submit(&mut c, &mut f, &mut cl, t0, fetch(i));
        }
        let results = ring.drain(&mut c, &mut f, &mut cl);

        let mut payloads = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            let (b, _) = r
                .into_fetch()
                .unwrap_or_else(|e| panic!("fetch {i} failed after kill: {e:?}"));
            assert!(
                b.iter().all(|&x| x == i as u8 + 1),
                "fetch {i} returned wrong bytes"
            );
            payloads.push(b);
        }
        let rearms = ring.leg_rearms();
        assert!(rearms >= 1, "staged legs at the dead leader must re-arm");
        // Conservation: every write cost 2 RPCs (RF=2), every fetch
        // exactly one — re-arming moves a leg, it never duplicates it.
        let total_rpcs: u64 = (0..cl.len()).map(|s| cl.engine(s).rpcs()).sum();
        assert_eq!(total_rpcs, n_writes * 2 + n_writes);
        (payloads, rearms, total_rpcs)
    };
    assert_eq!(run(), run(), "kill scenario must replay bit-identically");
}

#[test]
fn qp_state_is_o_engines_not_o_jobs() {
    // The pooled connection state: J jobs against E engines must hold E
    // QPs on the client NIC (one per root connection), not J x E — the RC
    // state the paper's §2.3 scaling argument worries about.
    let (f, _cl, _c) = world(3, 1, 6);
    assert_eq!(
        f.node(NodeId(0)).rdma.qp_count(),
        3,
        "client-side RC state must stay one QP per engine"
    );
    // Each storage node likewise sees one QP from this client.
    for s in 1..=3u32 {
        assert_eq!(f.node(NodeId(s)).rdma.qp_count(), 1);
    }
}
