//! Parallel-vs-serial engine equivalence: `DaosEngine::execute_batch`
//! (rayon fan-out across shards) must be bit-identical to issuing the same
//! ops serially through `update`/`fetch` — every returned payload, every
//! virtual-time instant, every stats counter. Shards share no mutable
//! state and epochs are caller-allocated in submission order, so the only
//! way this can fail is a sharding bug; randomized op streams from
//! `SimRng` hunt for one (a failing seed replays exactly).

use bytes::Bytes;
use ros2_daos::{
    AKey, ClientOp, ClientOpResult, DKey, DaosClient, DaosCostModel, DaosEngine, EngineCluster,
    Epoch, ObjClass, ObjectId, TargetOp, TargetOpResult, ValueKind,
};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{SimRng, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

fn engine(ssds: usize) -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        ssds,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("cont0").unwrap();
    e
}

/// One randomized op before epoch allocation.
#[derive(Clone, Debug)]
enum PlannedOp {
    Update {
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    },
    Fetch {
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    },
}

/// A randomized stream mixing single values and array extents, SCM-sized
/// and NVMe-sized payloads, past-epoch and latest reads, across striped
/// and single-target objects.
fn plan_ops(seed: u64, steps: usize) -> Vec<(SimTime, PlannedOp)> {
    let mut rng = SimRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut highest_epoch = 0u64;
    (0..steps)
        .map(|_| {
            if rng.chance(0.5) {
                now += ros2_sim::SimDuration::from_nanos(rng.below(2_000_000));
            }
            let oid = if rng.chance(0.7) {
                ObjectId::new(ObjClass::Sx, rng.below(4))
            } else {
                ObjectId::new(ObjClass::S1, 100 + rng.below(3))
            };
            let dkey = DKey::from_u64(rng.below(16));
            let single = rng.chance(0.3);
            let akey = if single {
                AKey::from_str("v")
            } else {
                AKey::from_str("data")
            };
            let op = if rng.chance(0.6) {
                highest_epoch += 1;
                let len = if rng.chance(0.5) {
                    1 + rng.below(4096) // SCM-bound
                } else {
                    4097 + rng.below(96 << 10) // NVMe-bound
                };
                let fill = (rng.below(255) + 1) as u8;
                let kind = if single {
                    ValueKind::Single
                } else {
                    ValueKind::Array {
                        offset: rng.below(16) * 4096,
                    }
                };
                PlannedOp::Update {
                    oid,
                    dkey,
                    akey,
                    kind,
                    data: Bytes::from(vec![fill; len as usize]),
                }
            } else {
                let epoch = if rng.chance(0.8) || highest_epoch == 0 {
                    Epoch::LATEST
                } else {
                    Epoch(1 + rng.below(highest_epoch))
                };
                let kind = if single {
                    ValueKind::Single
                } else {
                    ValueKind::Array {
                        offset: rng.below(16) * 4096,
                    }
                };
                PlannedOp::Fetch {
                    oid,
                    dkey,
                    akey,
                    kind,
                    epoch,
                    len: 1 + rng.below(64 << 10),
                }
            };
            (now, op)
        })
        .collect()
}

/// Canonical comparable form of a per-op outcome.
type Outcome = Result<(Option<Bytes>, SimTime), ros2_daos::DaosError>;

fn run_serial(e: &mut DaosEngine, plan: &[(SimTime, PlannedOp)]) -> Vec<Outcome> {
    plan.iter()
        .map(|(now, op)| match op.clone() {
            PlannedOp::Update {
                oid,
                dkey,
                akey,
                kind,
                data,
            } => {
                let epoch = e.next_epoch("cont0").unwrap();
                e.update(*now, "cont0", oid, dkey, akey, kind, epoch, data)
                    .map(|at| (None, at))
            }
            PlannedOp::Fetch {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                len,
            } => e
                .fetch(*now, "cont0", oid, &dkey, &akey, kind, epoch, len)
                .map(|(b, at)| (Some(b), at)),
        })
        .collect()
}

fn run_batch(e: &mut DaosEngine, plan: &[(SimTime, PlannedOp)]) -> Vec<Outcome> {
    let ops: Vec<TargetOp> = plan
        .iter()
        .map(|(now, op)| match op.clone() {
            PlannedOp::Update {
                oid,
                dkey,
                akey,
                kind,
                data,
            } => {
                let epoch = e.next_epoch("cont0").unwrap();
                TargetOp::Update {
                    now: *now,
                    oid,
                    dkey,
                    akey,
                    kind,
                    epoch,
                    data,
                }
            }
            PlannedOp::Fetch {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                len,
            } => TargetOp::Fetch {
                now: *now,
                oid,
                dkey,
                akey,
                kind,
                epoch,
                len,
            },
        })
        .collect();
    e.execute_batch("cont0", ops)
        .unwrap()
        .into_iter()
        .map(|r| match r {
            TargetOpResult::Update(r) => r.map(|at| (None, at)),
            TargetOpResult::Fetch(r) => r.map(|(b, at)| (Some(b), at)),
        })
        .collect()
}

fn assert_engines_agree(a: &DaosEngine, b: &DaosEngine, what: &str) {
    assert_eq!(a.vos_stats(), b.vos_stats(), "{what}: VOS stats diverged");
    assert_eq!(
        a.resource_stats(),
        b.resource_stats(),
        "{what}: booking counters diverged"
    );
    assert_eq!(
        a.data_plane_stats(),
        b.data_plane_stats(),
        "{what}: data-plane counters diverged"
    );
    assert_eq!(a.rpcs(), b.rpcs(), "{what}: rpc counters diverged");
}

#[test]
fn parallel_batch_equals_serial_ops() {
    for seed in [3u64, 17, 92, 1105] {
        let plan = plan_ops(seed, 200);
        let mut serial = engine(4);
        let serial_out = run_serial(&mut serial, &plan);

        let mut parallel = engine(4);
        let parallel_out = run_batch(&mut parallel, &plan);

        let mut forced = engine(4);
        forced.set_force_serial_batch(true);
        let forced_out = run_batch(&mut forced, &plan);

        for (i, ((s, p), f)) in serial_out
            .iter()
            .zip(&parallel_out)
            .zip(&forced_out)
            .enumerate()
        {
            assert_eq!(s, p, "seed {seed} op {i}: serial != parallel batch");
            assert_eq!(p, f, "seed {seed} op {i}: parallel != forced-serial batch");
        }
        assert_engines_agree(&serial, &parallel, &format!("seed {seed} serial/parallel"));
        assert_engines_agree(&parallel, &forced, &format!("seed {seed} parallel/forced"));
    }
}

#[test]
fn batch_interleaves_same_key_ops_in_submission_order() {
    // An update followed by a fetch of the same key inside one batch must
    // behave exactly like the serial sequence (same shard, order
    // preserved).
    let mut e = engine(4);
    let oid = ObjectId::new(ObjClass::Sx, 1);
    let d = DKey::from_u64(5);
    let a = AKey::from_str("data");
    let e1 = e.next_epoch("cont0").unwrap();
    let e2 = e.next_epoch("cont0").unwrap();
    let results = e
        .execute_batch(
            "cont0",
            vec![
                TargetOp::Update {
                    now: SimTime::ZERO,
                    oid,
                    dkey: d.clone(),
                    akey: a.clone(),
                    kind: ValueKind::Array { offset: 0 },
                    epoch: e1,
                    data: Bytes::from(vec![1u8; 8192]),
                },
                TargetOp::Update {
                    now: SimTime::ZERO,
                    oid,
                    dkey: d.clone(),
                    akey: a.clone(),
                    kind: ValueKind::Array { offset: 0 },
                    epoch: e2,
                    data: Bytes::from(vec![2u8; 8192]),
                },
                TargetOp::Fetch {
                    now: SimTime::ZERO,
                    oid,
                    dkey: d.clone(),
                    akey: a.clone(),
                    kind: ValueKind::Array { offset: 0 },
                    epoch: Epoch::LATEST,
                    len: 8192,
                },
                TargetOp::Fetch {
                    now: SimTime::ZERO,
                    oid,
                    dkey: d,
                    akey: a,
                    kind: ValueKind::Array { offset: 0 },
                    epoch: e1,
                    len: 8192,
                },
            ],
        )
        .unwrap();
    let (latest, _) = results[2].clone().into_fetch().unwrap();
    assert!(latest.iter().all(|&b| b == 2), "LATEST sees the 2nd update");
    let (past, _) = results[3].clone().into_fetch().unwrap();
    assert!(past.iter().all(|&b| b == 1), "epoch-bounded read sees v1");
}

// ---- client-level equivalence: serial ops == batch-of-one ---------------

fn client_world(transport: Transport) -> (Fabric, EngineCluster, DaosClient) {
    let spec = |name: &str, cores: usize| NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 8 << 30,
        dpu_tcp_rx: None,
    };
    let mut fabric = Fabric::new(transport, vec![spec("client", 48), spec("storage", 64)], 23);
    let mut e = engine(4);
    e.cont_create("cont0").unwrap();
    let client = DaosClient::connect(
        &mut fabric,
        NodeId(0),
        NodeId(1),
        "tenant",
        "cont0",
        2,
        4 << 20,
        MemoryDomain::HostDram,
        DaosCostModel::default_model(),
    )
    .unwrap();
    (fabric, EngineCluster::single(e), client)
}

#[test]
fn client_batch_of_one_equals_serial_op() {
    for transport in [Transport::Rdma, Transport::Tcp] {
        let (mut f1, mut cl1, mut c1) = client_world(transport);
        let (mut f2, mut cl2, mut c2) = client_world(transport);
        let oid = ObjectId::new(ObjClass::Sx, 1);
        let mut rng = SimRng::new(77);
        let mut now = SimTime::ZERO;
        for i in 0..24u64 {
            now += ros2_sim::SimDuration::from_nanos(rng.below(500_000));
            let dkey = DKey::from_u64(i % 6);
            let akey = AKey::from_str("data");
            let len = 1 + rng.below(128 << 10);
            if rng.chance(0.5) {
                let data = Bytes::from(vec![(i % 250) as u8 + 1; len as usize]);
                let serial = c1.update(
                    &mut f1,
                    &mut cl1,
                    now,
                    0,
                    oid,
                    dkey.clone(),
                    akey.clone(),
                    ValueKind::Array { offset: 0 },
                    data.clone(),
                );
                let batch = c2
                    .execute_batch(
                        &mut f2,
                        &mut cl2,
                        now,
                        0,
                        vec![ClientOp::Update {
                            oid,
                            dkey,
                            akey,
                            kind: ValueKind::Array { offset: 0 },
                            data,
                        }],
                    )
                    .remove(0)
                    .into_update();
                assert_eq!(serial, batch, "{transport:?} op {i}: update diverged");
            } else {
                let serial = c1.fetch(
                    &mut f1,
                    &mut cl1,
                    now,
                    0,
                    oid,
                    dkey.clone(),
                    akey.clone(),
                    ValueKind::Array { offset: 0 },
                    Epoch::LATEST,
                    len,
                );
                let batch = c2
                    .execute_batch(
                        &mut f2,
                        &mut cl2,
                        now,
                        0,
                        vec![ClientOp::Fetch {
                            oid,
                            dkey,
                            akey,
                            kind: ValueKind::Array { offset: 0 },
                            epoch: Epoch::LATEST,
                            len,
                        }],
                    )
                    .remove(0)
                    .into_fetch();
                assert_eq!(serial, batch, "{transport:?} op {i}: fetch diverged");
            }
        }
        assert_eq!(
            f1.resource_stats(),
            f2.resource_stats(),
            "{transport:?}: fabric bookings diverged"
        );
        assert_engines_agree(
            cl1.engine(0),
            cl2.engine(0),
            &format!("{transport:?} client worlds"),
        );
        assert_eq!(c1.ops(), c2.ops());
    }
}

#[test]
fn client_multi_op_batch_round_trips() {
    // A QD-N style fan-out: 16 mixed ops in one batch, functional results
    // must match what the serial path would produce for the same keys.
    let (mut f, mut cl, mut c) = client_world(Transport::Rdma);
    let oid = ObjectId::new(ObjClass::Sx, 9);
    let mut ops = Vec::new();
    for i in 0..8u64 {
        ops.push(ClientOp::Update {
            oid,
            dkey: DKey::from_u64(i),
            akey: AKey::from_str("data"),
            kind: ValueKind::Array { offset: 0 },
            data: Bytes::from(vec![i as u8 + 1; 32 << 10]),
        });
    }
    for i in 0..8u64 {
        ops.push(ClientOp::Fetch {
            oid,
            dkey: DKey::from_u64(i),
            akey: AKey::from_str("data"),
            kind: ValueKind::Array { offset: 0 },
            epoch: Epoch::LATEST,
            len: 32 << 10,
        });
    }
    let results = c.execute_batch(&mut f, &mut cl, SimTime::ZERO, 0, ops);
    assert_eq!(results.len(), 16);
    for (i, r) in results.into_iter().enumerate() {
        match i {
            0..=7 => {
                r.into_update().unwrap();
            }
            _ => {
                let want = (i - 8) as u8 + 1;
                let (data, _) = r.into_fetch().unwrap();
                assert_eq!(data.len(), 32 << 10);
                assert!(data.iter().all(|&b| b == want), "op {i} read wrong bytes");
            }
        }
    }
    // Oversized ops fail in place without sinking the batch.
    let mixed = c.execute_batch(
        &mut f,
        &mut cl,
        SimTime::from_secs(1),
        0,
        vec![
            ClientOp::Update {
                oid,
                dkey: DKey::from_u64(0),
                akey: AKey::from_str("data"),
                kind: ValueKind::Array { offset: 0 },
                data: Bytes::from(vec![0u8; 8 << 20]), // > 4 MiB staging
            },
            ClientOp::Fetch {
                oid,
                dkey: DKey::from_u64(1),
                akey: AKey::from_str("data"),
                kind: ValueKind::Array { offset: 0 },
                epoch: Epoch::LATEST,
                len: 32 << 10,
            },
        ],
    );
    assert!(matches!(
        mixed[0],
        ClientOpResult::Update(Err(ros2_daos::DaosError::Transport(_)))
    ));
    mixed[1].clone().into_fetch().unwrap();
}
