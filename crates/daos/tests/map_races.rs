//! Map races end to end: the pipelined client keeps its own cached pool
//! map (refreshed only by an explicit query or an asynchronously
//! *delivered* RAS event), engines fence requests stamped with a stale
//! revision, and the `OpRing` recovery ladder — deadline, classify,
//! refresh, re-resolve, backoff — turns every race into a bounded retry
//! instead of a wrong answer or a hang.
//!
//! The headline scenario (the PR's acceptance gate): a mid-flight engine
//! kill under QD ≥ 16 with RAS delivery delayed past ten op-latencies
//! completes with zero failed ops, at least one observed `StaleMap`
//! fence, and bit-identical replay.

use bytes::Bytes;
use ros2_daos::{
    AKey, ClientOp, ClientOpResult, DKey, DaosClient, DaosCostModel, DaosEngine, DaosError,
    EngineCluster, Epoch, ObjClass, ObjectId, OpRing, RetryStats, ValueKind,
};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{SimDuration, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

fn engine(ssds: usize) -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        ssds,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("cont0").unwrap();
    e
}

fn node(name: &str, cores: usize) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 8 << 30,
        dpu_tcp_rx: None,
    }
}

fn world(engines: usize, rf: usize) -> (Fabric, EngineCluster, DaosClient) {
    let mut specs = vec![node("client", 48)];
    let mut servers = Vec::new();
    for i in 0..engines {
        specs.push(node(&format!("storage{i}"), 64));
        servers.push(NodeId(1 + i as u32));
    }
    let mut fabric = Fabric::new(Transport::Rdma, specs, 23);
    let cluster = EngineCluster::new(
        (0..engines).map(|_| engine(4)).collect(),
        servers.clone(),
        rf,
    );
    let client = DaosClient::connect_multi(
        &mut fabric,
        NodeId(0),
        &servers,
        "tenant",
        "cont0",
        1,
        4 << 20,
        MemoryDomain::HostDram,
        DaosCostModel::default_model(),
    )
    .unwrap();
    (fabric, cluster, client)
}

fn fetch_op(oid: ObjectId, i: u64) -> ClientOp {
    ClientOp::Fetch {
        oid,
        dkey: DKey::from_u64(i),
        akey: AKey::from_str("data"),
        kind: ValueKind::Array { offset: 0 },
        epoch: Epoch::LATEST,
        len: 16 << 10,
    }
}

/// Writes `n` distinct extents of `oid` serially and returns the average
/// per-op latency of the preamble (the "op latency" the RAS-delay gate is
/// measured in).
fn preamble(
    f: &mut Fabric,
    cl: &mut EngineCluster,
    c: &mut DaosClient,
    oid: ObjectId,
    n: u64,
) -> SimDuration {
    let mut t = SimTime::ZERO;
    for i in 0..n {
        t = c
            .update(
                f,
                cl,
                t,
                0,
                oid,
                DKey::from_u64(i),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![i as u8 + 1; 16 << 10]),
            )
            .unwrap();
    }
    SimDuration::from_nanos(t.as_nanos() / n)
}

/// The acceptance scenario. A fetch ring at QD 32 over an RF=2 object;
/// the *non-leader* replica dies between submissions, and the RAS event
/// reaches the client only 20 op-latencies later — far beyond the run.
/// Every fetch the stale cache routes at the (live) leader carries the
/// old revision stamp, so the engine fences it and the ladder recovers
/// via an authoritative refresh. Returns everything observable for the
/// replay-identity assertion.
#[allow(clippy::type_complexity)]
fn kill_under_qd32(
    forced_serial: bool,
) -> (
    Vec<(Option<Bytes>, SimTime)>,
    u64,
    RetryStats,
    Option<SimTime>,
) {
    let (mut f, mut cl, mut c) = world(4, 2);
    c.set_force_serial_pipeline(forced_serial);
    let oid = ObjectId::new(ObjClass::Sx, 5);
    let n = 32u64;
    let op_latency = preamble(&mut f, &mut cl, &mut c, oid, n);

    // The victim is the non-leader replica: stale-routed fetches then hit
    // the surviving leader, which holds the *new* map and fences them.
    let set = cl.route_update(&oid);
    let victim = set.iter().nth(1).expect("RF=2 yields a second replica");

    let t0 = SimTime::from_millis(10);
    let mut ring = OpRing::new(0, 32);
    for i in 0..16u64 {
        ring.submit(&mut c, &mut f, &mut cl, t0, fetch_op(oid, i % n));
    }
    cl.kill_engine(victim).unwrap();
    // RAS delivery lands 20 op-latencies after the kill — the whole ring
    // drains against the stale cached revision.
    let ras_at = t0 + op_latency.saturating_mul(20);
    c.deliver_map(ras_at, cl.snapshot_map());
    for i in 16..32u64 {
        ring.submit(&mut c, &mut f, &mut cl, t0, fetch_op(oid, i % n));
    }
    let results = ring.drain(&mut c, &mut f, &mut cl);

    let mut out = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        let (b, at) = match r {
            ClientOpResult::Fetch(Ok(ok)) => ok,
            other => panic!("op {i} failed under the kill: {other:?}"),
        };
        assert!(
            b.iter().all(|&x| x == (i as u64 % n) as u8 + 1),
            "fetch {i} returned wrong bytes"
        );
        // "No op hangs": every completion clears the deadline ladder's
        // worst case (budget × (deadline + refresh + backoff cap)) with
        // slack, rather than drifting unboundedly.
        assert!(
            at < t0 + SimDuration::from_millis(100),
            "op {i} overran the ladder bound: {at}"
        );
        out.push((Some(b), at));
    }
    (
        out,
        cl.fences(),
        c.retry_stats(),
        c.first_successful_retry(),
    )
}

#[test]
fn kill_under_qd32_fences_recovers_and_replays_identically() {
    let (results, fences, retry, first_retry) = kill_under_qd32(false);
    assert_eq!(results.len(), 32, "no op may hang or vanish");
    assert!(fences >= 1, "a stale-stamped fetch must be fenced");
    assert!(retry.fenced >= 1, "the client must classify the fence");
    assert!(retry.retries >= 1, "fenced legs must re-stage");
    assert!(retry.map_refreshes >= 1, "the ladder must refresh the map");
    assert_eq!(retry.exhausted, 0, "no op may burn its whole budget");
    assert!(
        retry.retries <= 32 * 3,
        "retries stay within budget x depth: {retry:?}"
    );
    let t = first_retry.expect("a retry must eventually succeed");
    assert!(t > SimTime::ZERO, "time-to-first-successful-retry recorded");

    // Bit-identical replay: instants, payloads, fences, and every ladder
    // counter — twice more.
    let again = kill_under_qd32(false);
    assert_eq!(
        (results, fences, retry, first_retry),
        again,
        "chaos schedule must replay bit-identically"
    );
}

#[test]
fn forced_serial_replay_of_the_chaos_schedule_is_deterministic() {
    // The same schedule through the forced-serial drain: still zero
    // failures, still bit-identical run-to-run (the serial path routes by
    // the live map, so it sees no fences — determinism is the claim).
    let a = kill_under_qd32(true);
    assert_eq!(a.0.len(), 32);
    let b = kill_under_qd32(true);
    assert_eq!(a, b, "forced-serial chaos replay must be bit-identical");
}

#[test]
fn dead_leader_times_out_and_fails_over_to_the_survivor() {
    // Killing the *leader* exercises the other classifier arm: the stale
    // cache routes fetches at a dead engine, which answers nothing — only
    // the per-leg deadline detects it, then the refreshed route lands on
    // the survivor.
    let (mut f, mut cl, mut c) = world(4, 2);
    let oid = ObjectId::new(ObjClass::Sx, 5);
    let n = 16u64;
    preamble(&mut f, &mut cl, &mut c, oid, n);
    let victim = cl.route_update(&oid).leader().expect("healthy leader");

    let t0 = SimTime::from_millis(10);
    let mut ring = OpRing::new(0, 16);
    for i in 0..8u64 {
        ring.submit(&mut c, &mut f, &mut cl, t0, fetch_op(oid, i));
    }
    cl.kill_engine(victim).unwrap();
    // RAS delivery never lands during the run: recovery is ladder-only.
    c.deliver_map(SimTime::from_secs(60), cl.snapshot_map());
    for i in 8..n {
        ring.submit(&mut c, &mut f, &mut cl, t0, fetch_op(oid, i));
    }
    for (i, r) in ring.drain(&mut c, &mut f, &mut cl).into_iter().enumerate() {
        let (b, _) = r
            .into_fetch()
            .unwrap_or_else(|e| panic!("fetch {i} failed: {e:?}"));
        assert!(b.iter().all(|&x| x == i as u8 + 1));
    }
    let retry = c.retry_stats();
    assert!(retry.timeouts >= 1, "dead-leader legs must time out");
    assert!(retry.retries >= 1);
    assert_eq!(retry.exhausted, 0);
    assert!(
        c.first_successful_retry().is_some(),
        "failover must complete a retried op"
    );
}

#[test]
fn blackholed_engine_exhausts_the_budget_and_fails_cleanly() {
    // RF=1 with the only replica black-holed: the map never changes, so
    // every refresh re-resolves to the same dead-air connection. The
    // ladder must burn its bounded budget and surface a typed error —
    // never hang, never succeed by accident.
    let (mut f, mut cl, mut c) = world(2, 1);
    let oid = ObjectId::new(ObjClass::Sx, 7);
    preamble(&mut f, &mut cl, &mut c, oid, 4);
    let target = cl.route_update(&oid).leader().unwrap();

    let mut ring = OpRing::new(0, 4);
    let t0 = SimTime::from_millis(10);
    // Bootstrap the cache before the hole opens (connection loss is not
    // a map event — no RAS, no new revision).
    ring.submit(&mut c, &mut f, &mut cl, t0, fetch_op(oid, 0));
    cl.set_blackhole(target, true);
    for i in 1..4u64 {
        ring.submit(&mut c, &mut f, &mut cl, t0, fetch_op(oid, i));
    }
    let results = ring.drain(&mut c, &mut f, &mut cl);
    let budget = c.retry_policy().budget as u64;
    let mut failed = 0u64;
    for r in results {
        match r {
            ClientOpResult::Fetch(Ok(_)) => {}
            ClientOpResult::Fetch(Err(DaosError::Transport(msg))) => {
                assert!(
                    msg.contains("retry budget exhausted"),
                    "clean typed failure expected, got {msg}"
                );
                failed += 1;
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(failed >= 1, "black-holed fetches must fail");
    let retry = c.retry_stats();
    assert_eq!(retry.exhausted, failed, "every failure is a spent budget");
    assert!(
        retry.timeouts >= failed * (budget + 1),
        "each attempt burned a deadline: {retry:?}"
    );
    // The hole heals: the same fetch now succeeds (the client object is
    // still fully usable after clean failures).
    cl.set_blackhole(target, false);
    let mut ring = OpRing::new(0, 1);
    ring.submit(
        &mut c,
        &mut f,
        &mut cl,
        SimTime::from_millis(50),
        fetch_op(oid, 1),
    );
    for r in ring.drain(&mut c, &mut f, &mut cl) {
        r.into_fetch().expect("healed path must serve");
    }
}

#[test]
fn stale_updates_fence_then_commit_on_the_current_map() {
    // Updates racing the map: kill the non-leader mid-ring. Stale-stamped
    // update legs at survivors are fenced, refresh, and re-stage wherever
    // the *current* map still places them; the leg at the dead engine is
    // dropped and the survivors carry the commit. Every ack must then be
    // durable under a serial read-back.
    let (mut f, mut cl, mut c) = world(4, 2);
    let oid = ObjectId::new(ObjClass::Sx, 5);
    preamble(&mut f, &mut cl, &mut c, oid, 4);
    let victim = cl.route_update(&oid).iter().nth(1).unwrap();

    let t0 = SimTime::from_millis(10);
    let n = 16u64;
    let upd = |i: u64| ClientOp::Update {
        oid,
        dkey: DKey::from_u64(100 + i),
        akey: AKey::from_str("data"),
        kind: ValueKind::Array { offset: 0 },
        data: Bytes::from(vec![i as u8 + 1; 8 << 10]),
    };
    let mut ring = OpRing::new(0, 16);
    for i in 0..6u64 {
        ring.submit(&mut c, &mut f, &mut cl, t0, upd(i));
    }
    cl.kill_engine(victim).unwrap();
    c.deliver_map(SimTime::from_secs(60), cl.snapshot_map());
    for i in 6..n {
        ring.submit(&mut c, &mut f, &mut cl, t0, upd(i));
    }
    let mut done = SimTime::ZERO;
    for (i, r) in ring.drain(&mut c, &mut f, &mut cl).into_iter().enumerate() {
        let at = r
            .into_update()
            .unwrap_or_else(|e| panic!("update {i} failed: {e:?}"));
        done = done.max(at);
    }
    assert!(cl.fences() >= 1, "stale update legs must be fenced");
    assert_eq!(c.retry_stats().exhausted, 0);
    // Acked-means-durable: every update reads back from the new map.
    for i in 0..n {
        let (b, _) = c
            .fetch(
                &mut f,
                &mut cl,
                done,
                0,
                oid,
                DKey::from_u64(100 + i),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                8 << 10,
            )
            .unwrap_or_else(|e| panic!("acked update {i} lost: {e:?}"));
        assert!(b.iter().all(|&x| x == i as u8 + 1));
    }
}

#[test]
fn delayed_ras_delivery_applies_only_when_due_and_query_beats_it() {
    let (mut f, mut cl, mut c) = world(3, 2);
    let oid = ObjectId::new(ObjClass::Sx, 1);
    preamble(&mut f, &mut cl, &mut c, oid, 2);

    // Bootstrap the cache via a pipelined op.
    let mut ring = OpRing::new(0, 1);
    ring.submit(&mut c, &mut f, &mut cl, SimTime::ZERO, fetch_op(oid, 0));
    ring.drain(&mut c, &mut f, &mut cl);
    assert_eq!(c.cache_version(), Some(1));

    let victim = cl.route_update(&oid).iter().nth(1).unwrap();
    cl.kill_engine(victim).unwrap();
    c.deliver_map(SimTime::from_millis(5), cl.snapshot_map());

    // An op *before* the delivery is due goes out stamped with the old
    // revision — proof the pending delivery did not apply early — gets
    // fenced, and it is the recovery ladder (not the delivery) that
    // refreshes the cache.
    let mut ring = OpRing::new(0, 1);
    let t1 = SimTime::from_millis(1);
    ring.submit(&mut c, &mut f, &mut cl, t1, fetch_op(oid, 0));
    ring.drain(&mut c, &mut f, &mut cl);
    assert_eq!(cl.fences(), 1, "stale stamp proves the cache lagged");
    assert_eq!(c.retry_stats().map_refreshes, 1, "the ladder refreshed");
    assert_eq!(c.cache_version(), Some(2));

    // Rebuild bumps the revision again; a delivery that IS due by the
    // next op applies at the poll, so the op goes out current — no new
    // fence, no ladder refresh.
    cl.rebuild(&mut f, SimTime::from_millis(6)).unwrap();
    c.deliver_map(SimTime::from_millis(8), cl.snapshot_map());
    let mut ring = OpRing::new(0, 1);
    ring.submit(
        &mut c,
        &mut f,
        &mut cl,
        SimTime::from_millis(10),
        fetch_op(oid, 0),
    );
    ring.drain(&mut c, &mut f, &mut cl);
    assert_eq!(cl.fences(), 1, "a due delivery pre-empts the fence");
    assert_eq!(c.retry_stats().map_refreshes, 1);
    assert_eq!(c.cache_version(), Some(cl.map().version()));

    // A MapQuery-style sync is authoritative immediately and cancels any
    // pending (older-or-equal) delivery.
    c.deliver_map(SimTime::from_secs(60), cl.snapshot_map());
    c.sync_map(cl.snapshot_map());
    assert_eq!(c.cache_version(), Some(cl.map().version()));
}
