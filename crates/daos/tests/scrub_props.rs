//! Scrub properties: random histories of {overlapping writes, silent
//! bit-rot, epoch aggregation, an engine kill} against a replicated
//! cluster, then a scrub-and-repair pass. Four invariants must hold on
//! every history:
//!
//! 1. **No acked write is ever lost** — the last write to every
//!    `(object, dkey)` reads back byte-correct after scrub + repair,
//!    even when the replica it landed on rotted underneath it.
//! 2. **Scrub converges** — one repairing pass leaves every replica set
//!    byte-comparable (equal record-set fingerprints) and a second pass
//!    finds zero mismatches.
//! 3. **The clean path is combine-only** — a scrub pass over a healthy
//!    cluster verifies every chunk without scanning a single payload
//!    byte (recorded checksums are folded with `crc32c_combine` against
//!    the media stores' cached chunk CRCs).
//! 4. **Replay is bit-identical** — the same history produces the same
//!    repair counts, fingerprints, and completion instants run-to-run,
//!    and a paced scrub lane changes only the timing, never the repairs.
//!
//! Histories stay inside the repairable regime RF = 2 guarantees: at
//! most one fault per object between scrubs, so bit-rot targets the
//! replica the scheduled kill will take anyway (a rot on one replica
//! plus the death of the other is an unrecoverable double fault — out
//! of scope here, surfaced as an unrepaired RAS event in production).

use bytes::Bytes;
use proptest::prelude::*;
use ros2_daos::{
    AKey, BgService, DKey, DaosClient, DaosCostModel, DaosEngine, EngineCluster, Epoch, ObjClass,
    ObjectId, ScrubStats, ValueKind,
};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{QosLimits, SimDuration, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

const ENGINES: usize = 4;
const RF: usize = 2;

fn engine() -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        2,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("cont0").unwrap();
    e
}

fn node(name: &str) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores: 48,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 8 << 30,
        dpu_tcp_rx: None,
    }
}

fn world() -> (Fabric, EngineCluster, DaosClient) {
    let mut specs = vec![node("client")];
    let mut servers = Vec::new();
    for i in 0..ENGINES {
        specs.push(node(&format!("storage{i}")));
        servers.push(NodeId(1 + i as u32));
    }
    let mut fabric = Fabric::new(Transport::Rdma, specs, 29);
    let cluster = EngineCluster::new(
        (0..ENGINES).map(|_| engine()).collect(),
        servers.clone(),
        RF,
    );
    let client = DaosClient::connect_multi(
        &mut fabric,
        NodeId(0),
        &servers,
        "tenant",
        "cont0",
        1,
        4 << 20,
        MemoryDomain::HostDram,
        DaosCostModel::default_model(),
    )
    .unwrap();
    (fabric, cluster, client)
}

/// Fired between writes of the history.
#[derive(Clone, Debug)]
enum Event {
    /// Silently flip a media byte under one replica of this object.
    Corrupt { obj: u64 },
    /// Cluster-wide epoch aggregation at the safe boundary.
    Aggregate,
    /// Kill this engine, scrub the survivors, then rebuild.
    Kill { slot: usize },
}

/// One randomly drawn history.
#[derive(Clone, Debug)]
struct History {
    /// `(object, dkey, fill byte)` per write; the extent length is a
    /// pure function of the dkey so last-writer-wins is byte-exact.
    writes: Vec<(u64, u64, u8)>,
    /// `(fire after this many writes, event)`, sorted by index.
    events: Vec<(usize, Event)>,
    /// The slot the (at most one) kill targets, if any — bit-rot aims
    /// at this replica so the history stays single-fault per object.
    kill_slot: Option<usize>,
}

fn histories() -> impl Strategy<Value = History> {
    let writes = prop::collection::vec((0u64..3, 0u64..5, 1u8..250), 4..16);
    let corrupts = prop::collection::vec((0usize..16, 0u64..3), 0..4);
    let aggregates = prop::collection::vec(0usize..16, 0..3);
    let kill =
        (any::<bool>(), (0usize..16, 0usize..ENGINES)).prop_map(|(some, v)| some.then_some(v));
    (writes, corrupts, aggregates, kill).prop_map(|(writes, corrupts, aggregates, kill)| {
        let mut events: Vec<(usize, Event)> = Vec::new();
        for (at, obj) in corrupts {
            events.push((at, Event::Corrupt { obj }));
        }
        for at in aggregates {
            events.push((at, Event::Aggregate));
        }
        if let Some((at, slot)) = kill {
            events.push((at, Event::Kill { slot }));
        }
        events.sort_by_key(|&(at, _)| at);
        History {
            writes,
            events,
            kill_slot: kill.map(|(_, slot)| slot),
        }
    })
}

/// Deterministic per-dkey extent length: multiple chunks plus a ragged
/// tail, so `crc32c_combine` folds partial-chunk recorded checksums.
fn len_for(dkey: u64) -> usize {
    (8 << 10) + (dkey as usize) * (5 << 10) + 734
}

fn oid_for(obj: u64) -> ObjectId {
    ObjectId::new(ObjClass::Sx, 40 + obj)
}

/// Everything the replay assertion compares: timing-independent repair
/// outcomes plus the completion instants of both scrub passes.
type Outcome = (u64, u64, Vec<u64>, SimTime, SimTime);

fn run(h: &History, paced: bool) -> Outcome {
    let (mut f, mut cl, mut c) = world();
    if paced {
        cl.set_service_budget(BgService::Scrub, QosLimits::bytes_per_sec(48 << 10));
        cl.set_service_budget(BgService::Rebuild, QosLimits::bytes_per_sec(256 << 10));
    }
    let mut t = SimTime::ZERO;
    let mut next_event = 0usize;
    let mut killed = false;
    // Last acked fill byte per (object, dkey).
    let mut expect: Vec<((u64, u64), u8)> = Vec::new();

    for (i, &(obj, dkey, fill)) in h.writes.iter().enumerate() {
        while next_event < h.events.len() && h.events[next_event].0 <= i {
            let (_, ev) = h.events[next_event].clone();
            next_event += 1;
            match ev {
                Event::Corrupt { obj } => {
                    let oid = oid_for(obj);
                    let set = cl.route_update(&oid);
                    // Rot the replica the scheduled kill will take (it
                    // dies anyway); otherwise the first in route order.
                    let victim = match h.kill_slot.filter(|_| !killed) {
                        Some(ks) if set.contains(ks) => ks,
                        _ => match set.iter().next() {
                            Some(s) => s,
                            None => continue,
                        },
                    };
                    cl.engine_mut(victim).corrupt_object(oid);
                }
                Event::Aggregate => {
                    let (_, at) = cl.aggregate_cluster(t, "cont0", None).unwrap();
                    t = t.max(at);
                }
                Event::Kill { slot } if !killed => {
                    killed = true;
                    cl.kill_engine(slot).unwrap();
                    c.deliver_map(t, cl.snapshot_map());
                    // Self-healing order: repair rot among the survivors
                    // first, so the rebuild never streams from a rotten
                    // source, then restore RF.
                    let (_, at) = cl.scrub(&mut f, t).unwrap();
                    let at = cl.rebuild(&mut f, at).unwrap();
                    c.deliver_map(at, cl.snapshot_map());
                    t = t.max(at);
                }
                Event::Kill { .. } => {}
            }
        }
        t = c
            .update(
                &mut f,
                &mut cl,
                t,
                0,
                oid_for(obj),
                DKey::from_u64(dkey),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![fill; len_for(dkey)]),
            )
            .unwrap();
        expect.retain(|&(k, _)| k != (obj, dkey));
        expect.push(((obj, dkey), fill));
    }

    // The repairing pass, then a verifying pass over the healed cluster.
    let (first, t_first) = cl.scrub(&mut f, t + SimDuration::from_millis(1)).unwrap();
    let before: ScrubStats = cl.scrub_stats();
    let (second, t_second) = cl.scrub(&mut f, t_first).unwrap();
    let after: ScrubStats = cl.scrub_stats();

    // Invariant 2: converged — the second pass is clean everywhere.
    assert_eq!(
        second.mismatches_found, 0,
        "scrub failed to converge: {second:?}"
    );
    // Invariant 3: the clean pass verified real volume without touching
    // a single payload byte.
    assert!(after.chunks_compared > before.chunks_compared);
    assert_eq!(
        after.scanned_bytes - before.scanned_bytes,
        0,
        "clean scrub pass scanned payload bytes"
    );

    // Invariant 2, byte-comparable: every replica of every object
    // resolves to the same record-set fingerprint.
    let mut fps = Vec::new();
    for obj in 0..3u64 {
        let oid = oid_for(obj);
        let set = cl.route_update(&oid);
        let mut per: Vec<u64> = set
            .iter()
            .map(|s| cl.engine(s).object_fingerprint(oid))
            .collect();
        if let Some(&fp) = per.first() {
            assert!(
                per.iter().all(|&x| x == fp),
                "object {obj} replicas diverge after scrub: {per:?}"
            );
            fps.append(&mut per);
        }
    }

    // Invariant 1: every acked write's final value reads back intact.
    let read_at = t_second + SimDuration::from_secs(1);
    for &((obj, dkey), fill) in &expect {
        let (b, _) = c
            .fetch(
                &mut f,
                &mut cl,
                read_at,
                0,
                oid_for(obj),
                DKey::from_u64(dkey),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                len_for(dkey) as u64,
            )
            .unwrap_or_else(|e| panic!("acked write ({obj},{dkey}) lost: {e:?}"));
        assert!(
            b.len() == len_for(dkey) && b.iter().all(|&x| x == fill),
            "acked write ({obj},{dkey}) read back corrupt"
        );
    }

    (
        first.mismatches_found,
        first.mismatches_repaired,
        fps,
        t_first,
        t_second,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Invariant 4 (and 1–3 inside `run`): bit-identical replay, and the
    // paced lanes change timing only — never what gets repaired.
    #[test]
    fn scrub_histories_replay_bit_identically(h in histories()) {
        let a = run(&h, false);
        let b = run(&h, false);
        prop_assert_eq!(&a, &b, "unpaced replay diverged");

        let p1 = run(&h, true);
        let p2 = run(&h, true);
        prop_assert_eq!(&p1, &p2, "paced replay diverged");

        // Functional outcomes match across pacing budgets.
        prop_assert_eq!((p1.0, p1.1, &p1.2), (a.0, a.1, &a.2));
        // Whatever the first pass found, it repaired (histories stay in
        // the single-fault regime).
        prop_assert_eq!(a.0, a.1, "unrepaired mismatch survived");
    }
}

/// A byte budget on the scrub lane actually throttles: same repairs,
/// later completion, and the lane's wait counter shows the stall.
#[test]
fn scrub_budget_paces_the_pass() {
    let h = History {
        writes: (0..10).map(|i| (i % 3, i % 5, (i + 1) as u8)).collect(),
        events: vec![
            (4, Event::Corrupt { obj: 1 }),
            (7, Event::Corrupt { obj: 2 }),
        ],
        kill_slot: None,
    };
    let unpaced = run(&h, false);
    let paced = run(&h, true);
    assert!(unpaced.0 >= 2, "scheduled rot went undetected: {unpaced:?}");
    assert_eq!(
        (paced.0, paced.1, &paced.2),
        (unpaced.0, unpaced.1, &unpaced.2)
    );
    assert!(
        paced.3 > unpaced.3,
        "paced scrub did not finish later: {:?} vs {:?}",
        paced.3,
        unpaced.3
    );
}
