//! Connection-pool properties: random interleavings of {client choice,
//! update, session kill, engine kill} against a multi-client cluster
//! whose engine-side pool holds only two resident sessions. Invariants
//! on every schedule:
//!
//! 1. **Eviction and session kills never lose acked data** — a pool slot
//!    holds *session* state only; every acked update reads back
//!    byte-correct at the end, through whatever handshakes the pool
//!    charges on the way back in.
//! 2. **Resident state stays bounded** — the pool's high-water mark
//!    never exceeds its capacity, and its counters stay consistent
//!    (admits = hits + misses, reconnects ≤ misses).
//! 3. **Replay is bit-identical** — the same schedule yields the same
//!    ack instants and the same pool counters run-to-run.

use bytes::Bytes;
use proptest::prelude::*;
use ros2_daos::{
    AKey, ConnPool, DKey, DaosClient, DaosCostModel, DaosEngine, EngineCluster, Epoch, ObjClass,
    ObjectId, ValueKind,
};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{SimDuration, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

const ENGINES: usize = 3;
const RF: usize = 2;
const POOL_CAPACITY: usize = 2;
const HOT: u64 = 5;

fn engine() -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        2,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("cont0").unwrap();
    e
}

fn node(name: &str) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores: 48,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 8 << 30,
        dpu_tcp_rx: None,
    }
}

/// `n_clients` client nodes ahead of three storage nodes, RF 2, pool
/// capacity 2 — every third admission thrashes by construction.
fn world(n_clients: usize) -> (Fabric, EngineCluster, Vec<DaosClient>) {
    let mut specs: Vec<NodeSpec> = (0..n_clients)
        .map(|c| node(&format!("client{c}")))
        .collect();
    let mut servers = Vec::new();
    for i in 0..ENGINES {
        specs.push(node(&format!("storage{i}")));
        servers.push(NodeId((n_clients + i) as u32));
    }
    let mut fabric = Fabric::new(Transport::Rdma, specs, 23);
    let mut cluster = EngineCluster::new(
        (0..ENGINES).map(|_| engine()).collect(),
        servers.clone(),
        RF,
    );
    let clients = (0..n_clients)
        .map(|c| {
            DaosClient::connect_multi(
                &mut fabric,
                NodeId(c as u32),
                &servers,
                "tenant",
                "cont0",
                1,
                4 << 20,
                MemoryDomain::HostDram,
                DaosCostModel::default_model(),
            )
            .unwrap()
        })
        .collect();
    cluster.enable_conn_pool(POOL_CAPACITY, ConnPool::DEFAULT_HANDSHAKE);
    (fabric, cluster, clients)
}

/// One step of a schedule: which client acts, and what it does.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// The client writes the next payload (through pool admission).
    Update(usize),
    /// The engine side drops the client's resident session outright.
    KillSession(usize),
}

#[derive(Clone, Debug)]
struct Schedule {
    n_clients: usize,
    steps: Vec<Step>,
    /// Kill storage slot 1 before this step index (none if past the end).
    kill_engine_at: usize,
}

fn schedules() -> impl Strategy<Value = Schedule> {
    (
        2usize..7,
        0usize..64,
        prop::collection::vec((0usize..6, 0u8..8), 10..40),
    )
        .prop_map(|(n_clients, kill_engine_at, raw)| Schedule {
            n_clients,
            steps: raw
                .into_iter()
                .map(|(c, a)| {
                    let c = c % n_clients;
                    if a == 7 {
                        Step::KillSession(c)
                    } else {
                        Step::Update(c)
                    }
                })
                .collect(),
            kill_engine_at,
        })
}

type Acked = (usize, usize, SimTime);

/// Runs one schedule; checks invariants 1 and 2 inline and returns what
/// the replay assertion compares.
fn run(sched: &Schedule) -> (Vec<Acked>, ros2_daos::ConnPoolStats) {
    let (mut f, mut cl, mut clients) = world(sched.n_clients);
    let oid = ObjectId::new(ObjClass::Sx, HOT);
    let mut t = SimTime::ZERO;
    let mut acked: Vec<Acked> = Vec::new();

    for (i, &step) in sched.steps.iter().enumerate() {
        if i == sched.kill_engine_at {
            cl.kill_engine(1).unwrap();
            let snap = cl.snapshot_map();
            for client in clients.iter_mut() {
                client.deliver_map(t, snap.clone());
            }
            t += SimDuration::from_micros(10);
        }
        match step {
            Step::Update(c) => {
                let start = cl.pool_admit(NodeId(c as u32), t);
                let at = clients[c]
                    .update(
                        &mut f,
                        &mut cl,
                        start,
                        0,
                        oid,
                        DKey::from_u64(1000 + i as u64),
                        AKey::from_str("data"),
                        ValueKind::Array { offset: 0 },
                        Bytes::from(vec![(i % 250) as u8 + 1; 8 << 10]),
                    )
                    .unwrap_or_else(|e| panic!("step {i} (client {c}) failed: {e:?}"));
                assert!(at >= start, "completion precedes pool admission");
                acked.push((i, c, at));
                t = at;
            }
            Step::KillSession(c) => {
                cl.pool_kill_session(NodeId(c as u32));
            }
        }
    }

    // Invariant 2: bounded resident state, consistent counters.
    let stats = cl.conn_pool_stats();
    assert!(
        stats.resident_peak <= POOL_CAPACITY as u64,
        "pool overflowed its capacity: {stats:?}"
    );
    assert_eq!(stats.admits, stats.hits + stats.misses, "{stats:?}");
    assert!(stats.reconnects <= stats.misses, "{stats:?}");

    // Invariant 1: every acked update reads back byte-correct — through
    // fresh pool admissions, after every eviction, session kill, and the
    // engine kill the schedule threw at it.
    let read_at = t + SimDuration::from_secs(1);
    for &(i, c, _) in &acked {
        let start = cl.pool_admit(NodeId(c as u32), read_at);
        let (b, _) = clients[c]
            .fetch(
                &mut f,
                &mut cl,
                start,
                0,
                oid,
                DKey::from_u64(1000 + i as u64),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                8 << 10,
            )
            .unwrap_or_else(|e| panic!("acked update {i} (client {c}) lost: {e:?}"));
        assert!(
            b.iter().all(|&x| x == (i % 250) as u8 + 1),
            "acked update {i} read back corrupt"
        );
    }
    (acked, cl.conn_pool_stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    // Invariant 3 (with 1 and 2 checked inside `run`): schedules replay
    // bit-identically, pool counters included.
    #[test]
    fn pool_schedules_replay_bit_identically(sched in schedules()) {
        prop_assert_eq!(run(&sched), run(&sched));
    }
}
