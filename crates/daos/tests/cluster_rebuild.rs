//! Cluster-level redundancy, driven through the routing client: updates
//! fan to every replica, an engine kill degrades reads without failing
//! them, and the online rebuild restores the replication factor with
//! bit-identical data (CRC-verified on fetch).

use bytes::Bytes;
use ros2_daos::{
    AKey, DKey, DaosClient, DaosCostModel, DaosEngine, EngineCluster, Epoch, ObjClass, ObjectId,
    ValueKind,
};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{CoreClass, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::SimTime;
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

fn cluster_world(engines: usize, rf: usize) -> (Fabric, EngineCluster, DaosClient, Vec<NodeId>) {
    let mut specs = vec![NodeSpec::host_client()];
    specs.extend((0..engines).map(|_| NodeSpec::storage_server()));
    let mut fabric = Fabric::new(Transport::Rdma, specs, 0x5eed);
    let nodes: Vec<NodeId> = (1..=engines as u32).map(NodeId).collect();
    let engine_vec: Vec<DaosEngine> = (0..engines)
        .map(|i| {
            let bdevs = BdevLayer::new(NvmeArray::new(
                NvmeModel::enterprise_1600(),
                2,
                DataMode::Stored,
            ));
            DaosEngine::new(
                format!("pool-eng{i}"),
                bdevs,
                256 << 20,
                DaosCostModel::default_model(),
                CoreClass::HostX86,
            )
        })
        .collect();
    let mut cluster = EngineCluster::new(engine_vec, nodes.clone(), rf);
    cluster.cont_create("cont0").unwrap();
    let client = DaosClient::connect_multi(
        &mut fabric,
        NodeId(0),
        &nodes,
        "tenant",
        "cont0",
        2,
        4 << 20,
        MemoryDomain::HostDram,
        DaosCostModel::default_model(),
    )
    .unwrap();
    (fabric, cluster, client, nodes)
}

fn payload(i: u64, len: usize) -> Bytes {
    Bytes::from(vec![(i % 251) as u8 + 1; len])
}

#[test]
fn updates_replicate_to_rf_engines() {
    let (mut fabric, mut cluster, mut client, _) = cluster_world(4, 2);
    let oid = ObjectId::new(ObjClass::Sx, 42);
    let mut t = SimTime::ZERO;
    for i in 0..8u64 {
        t = client
            .update(
                &mut fabric,
                &mut cluster,
                t,
                0,
                oid,
                DKey::from_u64(i),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                payload(i, 64 << 10),
            )
            .unwrap();
    }
    let set = cluster.route_update(&oid);
    assert_eq!(set.len(), 2, "RF=2 replica set");
    // Every replica holds the object; non-members hold nothing.
    for s in 0..cluster.len() {
        let has = cluster.engine(s).list_objects().contains(&oid);
        assert_eq!(has, set.contains(s), "engine {s} replica state wrong");
    }
    // Both replicas answer the same bytes at the engine level.
    let mut reads = Vec::new();
    for s in set.iter() {
        let (data, _) = cluster
            .engine_mut(s)
            .fetch(
                t,
                "cont0",
                oid,
                &DKey::from_u64(3),
                &AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                64 << 10,
            )
            .unwrap();
        reads.push(data);
    }
    assert_eq!(reads[0], reads[1], "replicas diverged");
}

#[test]
fn kill_degrades_reads_and_rebuild_restores_rf() {
    let (mut fabric, mut cluster, mut client, _) = cluster_world(4, 2);
    // Write 24 objects so some surely land on the victim.
    let oids: Vec<ObjectId> = (0..24)
        .map(|i| ObjectId::new(ObjClass::Sx, 100 + i))
        .collect();
    let mut t = SimTime::ZERO;
    for (i, &oid) in oids.iter().enumerate() {
        t = client
            .update(
                &mut fabric,
                &mut cluster,
                t,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                payload(i as u64, 32 << 10),
            )
            .unwrap();
    }
    // Kill the leader of the first object.
    let victim = cluster.route_update(&oids[0]).leader().unwrap();
    let v1 = cluster.map().version();
    let v2 = cluster.kill_engine(victim).unwrap();
    assert!(v2 > v1, "kill bumps the map revision");
    assert!(cluster.rebuild_pending());

    // Every object still reads back correct bytes; affected ones degraded.
    for (i, &oid) in oids.iter().enumerate() {
        let (data, at) = client
            .fetch(
                &mut fabric,
                &mut cluster,
                t,
                1,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                32 << 10,
            )
            .expect("degraded fetch must succeed");
        assert_eq!(data, payload(i as u64, 32 << 10), "object {i} bytes");
        t = at;
    }
    let degraded = cluster.rebuild_stats().degraded_fetches;
    assert!(degraded > 0, "some fetches must have been degraded");

    // Updates during the degraded window keep working (to survivors).
    t = client
        .update(
            &mut fabric,
            &mut cluster,
            t,
            0,
            oids[0],
            DKey::from_u64(1),
            AKey::from_str("data"),
            ValueKind::Array { offset: 0 },
            payload(99, 8 << 10),
        )
        .unwrap();

    // Rebuild restores RF: every object's post-kill set is fully
    // populated, including records written while degraded.
    let t_rebuilt = cluster.rebuild(&mut fabric, t).unwrap();
    assert!(t_rebuilt >= t, "rebuild consumes virtual time");
    assert!(!cluster.rebuild_pending());
    let stats = cluster.rebuild_stats();
    assert!(stats.objects_moved > 0, "{stats:?}");
    assert!(stats.bytes_moved > 0, "{stats:?}");
    for &oid in &oids {
        let set = cluster.route_update(&oid);
        assert_eq!(set.len(), 2, "RF restored for {oid:?}");
        for s in set.iter() {
            assert!(
                cluster.engine(s).list_objects().contains(&oid),
                "replica {s} missing {oid:?} after rebuild"
            );
        }
    }

    // Post-rebuild reads route to the (possibly new) leader and the CRC
    // verify passes on every object — including the degraded-window write.
    let mut t = t_rebuilt;
    for (i, &oid) in oids.iter().enumerate() {
        let (data, at) = client
            .fetch(
                &mut fabric,
                &mut cluster,
                t,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                32 << 10,
            )
            .expect("post-rebuild fetch");
        assert_eq!(data, payload(i as u64, 32 << 10));
        t = at;
    }
    let (data, _) = client
        .fetch(
            &mut fabric,
            &mut cluster,
            t,
            0,
            oids[0],
            DKey::from_u64(1),
            AKey::from_str("data"),
            ValueKind::Array { offset: 0 },
            Epoch::LATEST,
            8 << 10,
        )
        .unwrap();
    assert_eq!(data, payload(99, 8 << 10), "degraded-window write survives");
    assert_eq!(
        cluster.vos_stats().checksum_failures,
        0,
        "no silent corruption anywhere in the failure cycle"
    );
}

#[test]
fn rf1_kill_loses_only_the_dead_engines_objects() {
    let (mut fabric, mut cluster, mut client, _) = cluster_world(3, 1);
    let oids: Vec<ObjectId> = (0..12)
        .map(|i| ObjectId::new(ObjClass::S1, 500 + i))
        .collect();
    let mut t = SimTime::ZERO;
    for (i, &oid) in oids.iter().enumerate() {
        t = client
            .update(
                &mut fabric,
                &mut cluster,
                t,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("v"),
                ValueKind::Single,
                payload(i as u64, 512),
            )
            .unwrap();
    }
    let victim = cluster.route_update(&oids[0]).leader().unwrap();
    cluster.kill_engine(victim).unwrap();
    let t2 = cluster.rebuild(&mut fabric, t).unwrap();
    for &oid in &oids {
        let survivor_set = cluster.route_update(&oid);
        assert_eq!(survivor_set.len(), 1);
        let r = client.fetch(
            &mut fabric,
            &mut cluster,
            t2,
            0,
            oid,
            DKey::from_u64(0),
            AKey::from_str("v"),
            ValueKind::Single,
            Epoch::LATEST,
            512,
        );
        // Objects that lived only on the dead engine are gone (RF=1 has
        // no redundancy); everything else still reads.
        if survivor_set.leader() == Some(victim) {
            unreachable!("dead engine cannot be routed");
        }
        let _ = r; // both outcomes are legal under RF=1; no panic is the contract
    }
}
