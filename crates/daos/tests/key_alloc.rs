//! Allocation regression for the metadata key path: constructing the keys
//! the hot path builds (u64 chunk dkeys, short string akeys), probing the
//! object index, and repeating a warm fetch must perform ZERO heap
//! allocations — measured for real with a counting global allocator, not
//! inferred from types.
//!
//! All measurements run inside one `#[test]` (the counters are
//! process-global; concurrent tests in the same binary would pollute the
//! deltas).

use bytes::Bytes;
use ros2_buf::{allocation_count, CountingAlloc};
use ros2_daos::{
    AKey, DKey, DaosCostModel, DaosEngine, Epoch, KeyPair, ObjClass, ObjectId, ValueKind,
};
use ros2_hw::{CoreClass, NvmeModel};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::SimTime;
use ros2_spdk::BdevLayer;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocs_in(f: impl FnOnce()) -> u64 {
    let before = allocation_count();
    f();
    allocation_count() - before
}

#[test]
fn key_path_is_allocation_free() {
    // --- key construction: inline representation, no heap ----------------
    let n = allocs_in(|| {
        for i in 0..10_000u64 {
            let d = DKey::from_u64(i);
            let a = AKey::from_str("data");
            std::hint::black_box((&d, &a));
        }
        std::hint::black_box((DKey::from_str("."), AKey::from_str("superblock")));
    });
    assert_eq!(
        n, 0,
        "inline key construction must not allocate ({n} allocs)"
    );

    // --- index-key packing from borrowed keys ----------------------------
    let d = DKey::from_u64(7);
    let a = AKey::from_str("data");
    let n = allocs_in(|| {
        for _ in 0..10_000 {
            std::hint::black_box(KeyPair::from_refs(&d, &a));
        }
    });
    assert_eq!(n, 0, "KeyPair::from_refs must not allocate ({n} allocs)");

    // --- warm engine fetches: the whole metadata read path ---------------
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        1,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        64 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("c").unwrap();
    let oid = ObjectId::new(ObjClass::S1, 1);
    let epoch = e.next_epoch("c").unwrap();
    // One SCM-resident single value and one SCM array record.
    e.update(
        SimTime::ZERO,
        "c",
        oid,
        DKey::from_u64(0),
        AKey::from_str("v"),
        ValueKind::Single,
        epoch,
        Bytes::from(vec![0x5A; 512]),
    )
    .unwrap();
    e.update(
        SimTime::ZERO,
        "c",
        oid,
        DKey::from_u64(1),
        AKey::from_str("data"),
        ValueKind::Array { offset: 0 },
        epoch,
        Bytes::from(vec![0x6B; 4096]),
    )
    .unwrap();

    // Warm both paths once (CRC caches are seeded at update; the first
    // fetch may still grow scratch buffers).
    for _ in 0..3 {
        e.fetch(
            SimTime::ZERO,
            "c",
            oid,
            &DKey::from_u64(0),
            &AKey::from_str("v"),
            ValueKind::Single,
            Epoch::LATEST,
            512,
        )
        .unwrap();
        e.fetch(
            SimTime::ZERO,
            "c",
            oid,
            &DKey::from_u64(1),
            &AKey::from_str("data"),
            ValueKind::Array { offset: 0 },
            Epoch::LATEST,
            4096,
        )
        .unwrap();
    }

    // Steady state: key build + index probe + record load + CRC verify,
    // with zero allocations per op.
    let n = allocs_in(|| {
        for _ in 0..1_000 {
            let (sv, _) = e
                .fetch(
                    SimTime::ZERO,
                    "c",
                    oid,
                    &DKey::from_u64(0),
                    &AKey::from_str("v"),
                    ValueKind::Single,
                    Epoch::LATEST,
                    512,
                )
                .unwrap();
            std::hint::black_box(sv);
            let (arr, _) = e
                .fetch(
                    SimTime::ZERO,
                    "c",
                    oid,
                    &DKey::from_u64(1),
                    &AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    Epoch::LATEST,
                    4096,
                )
                .unwrap();
            std::hint::black_box(arr);
        }
    });
    assert_eq!(
        n, 0,
        "warm single-value + covered array fetches must be allocation-free \
         ({n} allocs over 2000 ops)"
    );
}
