//! Chaos properties: random interleavings of {kill instant, RAS delay,
//! retry budget, queue depth} against the pipelined client. Three
//! invariants must hold on every schedule:
//!
//! 1. **No acked update is ever lost** — everything the ring acked reads
//!    back byte-correct from the post-chaos cluster.
//! 2. **No op hangs past its deadline ladder** — every completion lands
//!    within the bounded worst case (budget × (deadline + refresh +
//!    backoff cap)) plus data-plane slack; exhausted budgets surface as
//!    typed errors, never as silence.
//! 3. **Replay is bit-identical** — the same schedule produces the same
//!    instants, payloads, and ladder counters run-to-run, on both the
//!    pipelined ring and the forced-serial drain (the CI gate runs this
//!    suite single-threaded as its own step).

use bytes::Bytes;
use proptest::prelude::*;
use ros2_daos::{
    AKey, ClientOp, ClientOpResult, DKey, DaosClient, DaosCostModel, DaosEngine, DaosError,
    EngineCluster, Epoch, ObjClass, ObjectId, OpRing, RetryPolicy, RetryStats, ValueKind,
};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{SimDuration, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

fn engine() -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        2,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("cont0").unwrap();
    e
}

fn node(name: &str) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores: 48,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 8 << 30,
        dpu_tcp_rx: None,
    }
}

fn world() -> (Fabric, EngineCluster, DaosClient) {
    let engines = 4usize;
    let mut specs = vec![node("client")];
    let mut servers = Vec::new();
    for i in 0..engines {
        specs.push(node(&format!("storage{i}")));
        servers.push(NodeId(1 + i as u32));
    }
    let mut fabric = Fabric::new(Transport::Rdma, specs, 23);
    let cluster = EngineCluster::new((0..engines).map(|_| engine()).collect(), servers.clone(), 2);
    let client = DaosClient::connect_multi(
        &mut fabric,
        NodeId(0),
        &servers,
        "tenant",
        "cont0",
        1,
        4 << 20,
        MemoryDomain::HostDram,
        DaosCostModel::default_model(),
    )
    .unwrap();
    (fabric, cluster, client)
}

/// One randomly drawn chaos schedule.
#[derive(Clone, Debug)]
struct Schedule {
    /// Ring depth.
    qd: usize,
    /// Kill fires after this many ring submissions (mid-flight).
    kill_at: usize,
    /// Kill the hot object's leader (true) or its second replica (false)
    /// — the two classifier arms (deadline timeout vs fence).
    kill_leader: bool,
    /// RAS delivery lag after the kill instant.
    ras_delay: SimDuration,
    /// Retry budget of the ladder.
    budget: u32,
}

fn schedules() -> impl Strategy<Value = Schedule> {
    (2usize..33, 0usize..24, any::<bool>(), 0u64..5_000, 1u32..6).prop_map(
        |(qd, kill_at, kill_leader, delay_us, budget)| Schedule {
            qd,
            kill_at: kill_at % 24,
            kill_leader,
            ras_delay: SimDuration::from_micros(delay_us),
            budget,
        },
    )
}

const N_OPS: usize = 24;
const HOT: u64 = 5;

fn op_for(i: usize) -> ClientOp {
    let oid = ObjectId::new(ObjClass::Sx, HOT);
    if i % 3 == 2 {
        // Fetch a preamble extent.
        ClientOp::Fetch {
            oid,
            dkey: DKey::from_u64((i % 8) as u64),
            akey: AKey::from_str("data"),
            kind: ValueKind::Array { offset: 0 },
            epoch: Epoch::LATEST,
            len: 16 << 10,
        }
    } else {
        // Update a fresh extent.
        ClientOp::Update {
            oid,
            dkey: DKey::from_u64(100 + i as u64),
            akey: AKey::from_str("data"),
            kind: ValueKind::Array { offset: 0 },
            data: Bytes::from(vec![(i % 250) as u8 + 1; 12 << 10]),
        }
    }
}

type Timed = (usize, Option<Bytes>, Option<SimTime>, Option<String>);

/// Runs `sched` once. Returns the per-op functional+timed outcomes, the
/// ladder counters, and the total engine fences — everything the replay
/// assertion compares — after checking the three invariants inline.
fn run(sched: &Schedule, forced_serial: bool) -> (Vec<Timed>, RetryStats, u64) {
    let (mut f, mut cl, mut c) = world();
    c.set_force_serial_pipeline(forced_serial);
    c.set_retry_policy(RetryPolicy {
        budget: sched.budget,
        ..RetryPolicy::default()
    });
    let oid = ObjectId::new(ObjClass::Sx, HOT);
    let mut t = SimTime::ZERO;
    for i in 0..8u64 {
        t = c
            .update(
                &mut f,
                &mut cl,
                t,
                0,
                oid,
                DKey::from_u64(i),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![i as u8 + 1; 16 << 10]),
            )
            .unwrap();
    }
    let set = cl.route_update(&oid);
    let victim = if sched.kill_leader {
        set.leader().unwrap()
    } else {
        set.iter().nth(1).unwrap()
    };

    let t0 = t + SimDuration::from_millis(1);
    let mut ring = OpRing::new(0, sched.qd);
    for i in 0..N_OPS {
        if i == sched.kill_at {
            cl.kill_engine(victim).unwrap();
            c.deliver_map(t0 + sched.ras_delay, cl.snapshot_map());
        }
        ring.submit(&mut c, &mut f, &mut cl, t0, op_for(i));
    }
    if sched.kill_at >= N_OPS {
        cl.kill_engine(victim).unwrap();
        c.deliver_map(t0 + sched.ras_delay, cl.snapshot_map());
    }
    let results = ring.drain(&mut c, &mut f, &mut cl);

    // Invariant 2: bounded completion. The ladder's worst case per leg is
    // (budget + 1) deadlines plus a refresh and capped backoff per rung;
    // everything else is ordinary data-plane time.
    let p = c.retry_policy();
    let ladder_worst = (p.leg_deadline + p.refresh_rtt + p.backoff_cap)
        .saturating_mul(p.budget as u64 + 1)
        + SimDuration::from_millis(50);
    let mut out = Vec::new();
    let mut acked: Vec<usize> = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        let row: Timed = match r {
            ClientOpResult::Update(Ok(at)) => {
                assert!(at < t0 + ladder_worst, "op {i} overran the ladder: {at}");
                acked.push(i);
                (i, None, Some(at), None)
            }
            ClientOpResult::Fetch(Ok((b, at))) => {
                assert!(at < t0 + ladder_worst, "op {i} overran the ladder: {at}");
                assert!(
                    b.iter().all(|&x| x == (i % 8) as u8 + 1),
                    "fetch {i} returned wrong bytes"
                );
                (i, Some(b), Some(at), None)
            }
            // A clean typed failure is allowed only as a spent budget —
            // never a hang, never a wrong answer.
            ClientOpResult::Update(Err(DaosError::Transport(m)))
            | ClientOpResult::Fetch(Err(DaosError::Transport(m)))
                if m.contains("retry budget exhausted") =>
            {
                (i, None, None, Some(m))
            }
            other => panic!("op {i} failed outside the ladder contract: {other:?}"),
        };
        out.push(row);
    }

    // Invariant 1: acked-means-durable, read back serially from whatever
    // the cluster looks like now.
    let read_at = t0 + SimDuration::from_secs(1);
    for &i in &acked {
        let (b, _) = c
            .fetch(
                &mut f,
                &mut cl,
                read_at,
                0,
                oid,
                DKey::from_u64(100 + i as u64),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                12 << 10,
            )
            .unwrap_or_else(|e| panic!("acked update {i} lost: {e:?}"));
        assert!(
            b.iter().all(|&x| x == (i % 250) as u8 + 1),
            "acked update {i} read back corrupt"
        );
    }
    (out, c.retry_stats(), cl.fences())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    // Invariant 3 (and 1 and 2 inside `run`): the pipelined ring and the
    // forced-serial drain each replay their schedule bit-identically.
    #[test]
    fn chaos_schedules_replay_bit_identically(sched in schedules()) {
        let a = run(&sched, false);
        let b = run(&sched, false);
        prop_assert_eq!(&a, &b, "pipelined replay diverged");

        let s1 = run(&sched, true);
        let s2 = run(&sched, true);
        prop_assert_eq!(&s1, &s2, "forced-serial replay diverged");
    }
}
