//! The replicated multi-engine cluster: versioned pool map, object
//! placement, degraded routing, and online rebuild.
//!
//! The paper's deployment (§3.1) is a *cluster* of DAOS engines behind one
//! switch. This module is the piece that turns the one-client/one-engine
//! reproduction into that shape:
//!
//! * [`PoolMap`] — engine membership + health, stamped with a monotonically
//!   increasing **map revision**. Every health transition (engine kill,
//!   engine add) bumps the revision; the control plane carries the bump as
//!   a RAS-style event (`ros2_ctl::ControlRequest::RasEvent`).
//! * **Placement** — [`PoolMap::replica_set`] ranks engines per object by
//!   highest-random-weight (rendezvous) hashing and takes the top
//!   `replication factor` healthy members, leader first. HRW gives the two
//!   invariants the property suite pins: placement is a pure function of
//!   `(map, oid, rf)`, and a membership change moves **only** the objects
//!   whose replica set actually changed (survivors never reshuffle among
//!   themselves).
//! * [`EngineCluster`] — owns the engines and routes: updates fan out to
//!   every healthy replica, fetches go to the leader and fail over to a
//!   surviving replica while an engine is down (**degraded read**, counted
//!   in [`RebuildStats::degraded_fetches`]). With one engine and RF = 1
//!   every route degenerates to slot 0 and the data path is bit-identical
//!   to the pre-cluster pinned behaviour.
//! * **Online rebuild** — after a kill, surviving replicas export the dead
//!   engine's records and stream them over the fabric (at data-plane
//!   rates, booked on the storage nodes' ports) to the deterministic HRW
//!   backfill engine — the "designated spare" — restoring RF.
//!
//! Epochs stay cluster-consistent without a consensus round: the first
//! healthy engine allocates ([`DaosEngine::next_epoch`]) and every other
//! healthy engine observes ([`DaosEngine::observe_epoch`]), so a failover
//! leader continues the same monotonic sequence.
//!
//! **Background services** (PR 8) ride behind a [`ServiceScheduler`]: three
//! per-service [`QosLane`]s — the same bucket-pair admission mechanism the
//! DPU tenant manager shapes foreground tenants with — pace rebuild
//! streaming, coordinated epoch aggregation, and replica scrub so recovery
//! traffic cannot starve foreground I/O. Lanes default to unlimited, whose
//! grants land exactly at `now`, so unbudgeted behaviour stays
//! bit-identical to the unpaced code. See `DESIGN.md` §13 for the safe
//! aggregation-boundary rule and the scrub/repair epoch discipline.

use std::collections::HashMap;

use bytes::Bytes;
use ros2_ctl::ControlRequest;
use ros2_fabric::{ConnId, Dir, Fabric, FabricError};
use ros2_sim::{QosLane, QosLimits, SimDuration, SimTime};
use ros2_verbs::{NodeId, PdId};

use crate::conn_pool::{ConnPool, ConnPoolStats};
use crate::engine::DaosEngine;
use crate::types::{DKey, DaosError, Epoch, ObjectId};
use crate::vos::{ScrubCheck, VosStats};

/// Largest supported replication factor (fits the inline
/// [`ReplicaSet`]; the paper's deployments use 2–3).
pub const MAX_RF: usize = 4;

/// Health of one pool-map member.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EngineHealth {
    /// Serving I/O.
    Up,
    /// Killed / unreachable; excluded from placement.
    Down,
}

/// One engine's entry in the pool map.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PoolMember {
    /// The fabric node this engine serves on.
    pub node: NodeId,
    /// Current health.
    pub health: EngineHealth,
}

/// The versioned cluster membership map. Pure placement state — the live
/// engines themselves live in [`EngineCluster`] — so the property suite
/// can drive maps through arbitrary transitions without building storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolMap {
    version: u64,
    members: Vec<PoolMember>,
}

/// An ordered replica set (leader first), held inline so routing never
/// allocates on the data path.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReplicaSet {
    len: u8,
    slots: [u16; MAX_RF],
}

impl ReplicaSet {
    const EMPTY: ReplicaSet = ReplicaSet {
        len: 0,
        slots: [0; MAX_RF],
    };

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty (no healthy replica exists).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The leader slot, if any replica exists.
    pub fn leader(&self) -> Option<usize> {
        (self.len > 0).then_some(self.slots[0] as usize)
    }

    /// Iterates member slots, leader first.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots[..self.len as usize].iter().map(|&s| s as usize)
    }

    /// Whether `slot` is a member.
    pub fn contains(&self, slot: usize) -> bool {
        self.iter().any(|s| s == slot)
    }

    fn push(&mut self, slot: usize) {
        self.slots[self.len as usize] = slot as u16;
        self.len += 1;
    }

    /// This set with `slot` removed (order preserved).
    pub fn without(&self, slot: usize) -> ReplicaSet {
        let mut out = ReplicaSet::EMPTY;
        for s in self.iter().filter(|&s| s != slot) {
            out.push(s);
        }
        out
    }
}

/// The per-engine rendezvous weight of an object: an FNV-1a-style fold
/// over the object id and the member slot. Note the multiplier is the
/// workspace's historical `placement_hash` constant (`0x1000_0000_01b3`),
/// *not* the canonical FNV-64 prime (`0x100_0000_01b3`) — kept identical
/// to [`crate::types::placement_hash`] on purpose, since both constants
/// are load-bearing for pinned placement results. The real system
/// jump-hashes over the pool map.
fn hrw_score(oid: &ObjectId, slot: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in oid.hi.to_le_bytes() {
        eat(b);
    }
    for b in oid.lo.to_le_bytes() {
        eat(b);
    }
    for b in slot.to_le_bytes() {
        eat(b);
    }
    h
}

impl PoolMap {
    /// A fresh map (revision 1) with every engine healthy.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        PoolMap {
            version: 1,
            members: nodes
                .into_iter()
                .map(|node| PoolMember {
                    node,
                    health: EngineHealth::Up,
                })
                .collect(),
        }
    }

    /// The map revision (bumped on every membership/health change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The members, by slot.
    pub fn members(&self) -> &[PoolMember] {
        &self.members
    }

    /// Reconstructs a map from its RAS-push wire form: the slot-aligned
    /// node ids (the receiver already knows the pool's node layout), one
    /// health byte per slot (1 = up), and the pushed revision. Inverse of
    /// the encoding [`MapSnapshot::to_push`] produces.
    pub fn from_wire(nodes: &[NodeId], healths: &[u8], version: u64) -> Self {
        assert_eq!(nodes.len(), healths.len(), "one health byte per slot");
        PoolMap {
            version,
            members: nodes
                .iter()
                .zip(healths)
                .map(|(&node, &h)| PoolMember {
                    node,
                    health: if h == 1 {
                        EngineHealth::Up
                    } else {
                        EngineHealth::Down
                    },
                })
                .collect(),
        }
    }

    /// Total member count (including down engines).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the map has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Healthy member count.
    pub fn up_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.health == EngineHealth::Up)
            .count()
    }

    /// Adds a healthy engine; returns its slot. Bumps the revision.
    pub fn add_engine(&mut self, node: NodeId) -> usize {
        self.members.push(PoolMember {
            node,
            health: EngineHealth::Up,
        });
        self.version += 1;
        self.members.len() - 1
    }

    /// Bumps the revision without a membership change — the
    /// rebuild-complete transition. Routing changes at that instant (the
    /// pre-kill-survivor override ends and the HRW backfill member joins
    /// the set), so clients holding the pre-rebuild revision must be
    /// fenced into a refresh like any other map race.
    pub fn note_rebuilt(&mut self) {
        self.version += 1;
    }

    /// Marks `slot` down. Returns the new revision; `Err` if the slot is
    /// unknown or already down.
    pub fn kill(&mut self, slot: usize) -> Result<u64, DaosError> {
        let m = self.members.get_mut(slot).ok_or(DaosError::NoSuchEntity)?;
        if m.health == EngineHealth::Down {
            return Err(DaosError::NoSuchEntity);
        }
        m.health = EngineHealth::Down;
        self.version += 1;
        Ok(self.version)
    }

    /// The object's replica set under this map: the `rf` highest-weight
    /// healthy members, leader first. Deterministic in `(map, oid, rf)`;
    /// returns fewer than `rf` slots only when fewer engines are healthy.
    pub fn replica_set(&self, oid: &ObjectId, rf: usize) -> ReplicaSet {
        self.replica_set_with(oid, rf, None)
    }

    /// [`Self::replica_set`] with `treat_up` counted as healthy regardless
    /// of its recorded health — the pre-failure set, used to find the
    /// surviving copies of an object while its rebuild is pending.
    pub fn replica_set_with(
        &self,
        oid: &ObjectId,
        rf: usize,
        treat_up: Option<usize>,
    ) -> ReplicaSet {
        let rf = rf.min(MAX_RF);
        // Insertion sort into a fixed top-rf array: highest score first,
        // ties broken toward the lower slot.
        let mut top: [(u64, usize); MAX_RF] = [(0, usize::MAX); MAX_RF];
        let mut filled = 0usize;
        for (slot, m) in self.members.iter().enumerate() {
            let up = m.health == EngineHealth::Up || treat_up == Some(slot);
            if !up {
                continue;
            }
            let score = hrw_score(oid, slot as u64);
            let mut i = filled.min(rf);
            while i > 0 && (top[i - 1].0 < score || (top[i - 1].0 == score && top[i - 1].1 > slot))
            {
                if i < rf {
                    top[i] = top[i - 1];
                }
                i -= 1;
            }
            if i < rf {
                top[i] = (score, slot);
                if filled < rf {
                    filled += 1;
                }
            }
        }
        let mut out = ReplicaSet::EMPTY;
        for &(_, slot) in top.iter().take(filled) {
            out.push(slot);
        }
        out
    }
}

/// The one routing rule, shared verbatim by the live cluster and every
/// client-side cached snapshot: while a kill awaits rebuild, affected
/// objects route to the pre-kill *survivors* (the members guaranteed to
/// hold the data); otherwise placement is the plain HRW replica set.
/// Returns the set plus whether the object has lost redundancy (a
/// degraded route).
fn route_in(
    map: &PoolMap,
    pending_dead: Option<usize>,
    rf: usize,
    oid: &ObjectId,
) -> (ReplicaSet, bool) {
    if let Some(dead) = pending_dead {
        let pre = map.replica_set_with(oid, rf, Some(dead));
        if pre.contains(dead) {
            return (pre.without(dead), true);
        }
    }
    (map.replica_set(oid, rf), false)
}

/// A client-side copy of the routing state: the versioned [`PoolMap`]
/// plus the pending-kill marker and the pool's replication factor.
///
/// Every client stack caches one of these and resolves routes from it —
/// *not* from the live map — so a membership change genuinely races
/// in-flight I/O. The cache is refreshed only by an explicit
/// `MapQuery` control round-trip or an asynchronously *delivered* RAS
/// event (delivery delay is a fault-injectable parameter, not zero);
/// engines fence requests stamped with an older revision
/// ([`DaosError::StaleMap`]) so a stale client can never act on a
/// misroute silently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapSnapshot {
    map: PoolMap,
    pending_dead: Option<usize>,
    rf: usize,
}

impl MapSnapshot {
    /// The snapshot's map revision.
    pub fn version(&self) -> u64 {
        self.map.version()
    }

    /// The snapshotted membership map.
    pub fn map(&self) -> &PoolMap {
        &self.map
    }

    /// The unrebuilt kill this snapshot routes around, if any.
    pub fn pending_dead(&self) -> Option<usize> {
        self.pending_dead
    }

    /// The object's routing set under this snapshot plus whether the
    /// route is degraded — the same pure rule the live cluster applies.
    pub fn route(&self, oid: &ObjectId) -> (ReplicaSet, bool) {
        route_in(&self.map, self.pending_dead, self.rf, oid)
    }

    /// The replica set an update fans out to under this snapshot.
    pub fn route_update(&self, oid: &ObjectId) -> ReplicaSet {
        self.route(oid).0
    }

    /// Encodes this snapshot as the control-plane RAS push message: one
    /// health byte per slot (1 = up), the map revision, and the pending
    /// unrebuilt kill (`u32::MAX` = none). The control plane encodes this
    /// **once** per membership change and fans the same frame out to every
    /// subscribed client — the push analogue of a per-client `MapQuery`.
    pub fn to_push(&self) -> ControlRequest {
        ControlRequest::MapPush {
            version: self.map.version(),
            healths: Bytes::from(
                self.map
                    .members()
                    .iter()
                    .map(|m| u8::from(m.health == EngineHealth::Up))
                    .collect::<Vec<u8>>(),
            ),
            pending_dead: self.pending_dead.map_or(u32::MAX, |s| s as u32),
        }
    }

    /// Reconstructs a snapshot from the [`ControlRequest::MapPush`] wire
    /// fields. The receiver supplies the slot-aligned node ids and the
    /// pool RF (both fixed at pool-connect time and never pushed).
    pub fn from_wire(
        nodes: &[NodeId],
        rf: usize,
        version: u64,
        healths: &[u8],
        pending_dead: u32,
    ) -> Self {
        MapSnapshot {
            map: PoolMap::from_wire(nodes, healths, version),
            pending_dead: (pending_dead != u32::MAX).then_some(pending_dead as usize),
            rf,
        }
    }
}

/// Counters for the redundancy machinery, reported alongside the
/// `ResourceStats` / `DataPlaneStats` / `DpuStats` families.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Rebuild passes completed.
    pub rebuilds: u64,
    /// Objects whose replica set lost a member and was restored.
    pub objects_moved: u64,
    /// Records re-replicated to backfill engines.
    pub records_moved: u64,
    /// Payload bytes streamed between storage nodes.
    pub bytes_moved: u64,
    /// Fetches of objects whose replica set was short a member (an
    /// unrebuilt kill) — degraded-mode reads. Counted whenever the object
    /// had lost redundancy at fetch time, whether or not the dead member
    /// was its leader.
    pub degraded_fetches: u64,
}

impl RebuildStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: RebuildStats) {
        self.rebuilds += other.rebuilds;
        self.objects_moved += other.objects_moved;
        self.records_moved += other.records_moved;
        self.bytes_moved += other.bytes_moved;
        self.degraded_fetches += other.degraded_fetches;
    }
}

/// The three background services the cluster paces independently.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BgService {
    /// Post-kill re-replication streaming.
    Rebuild,
    /// Coordinated epoch-boundary aggregation.
    Aggregation,
    /// Replica scrub (CRC cross-check + bit-rot repair).
    Scrub,
}

/// Per-service paced admission: one [`QosLane`] per background service,
/// sharing the token-bucket mechanism with the DPU tenant manager. All
/// lanes start unlimited — an unlimited lane's grants land exactly at
/// `now`, pinning unbudgeted services bit-identical to the unpaced code.
#[derive(Debug)]
pub struct ServiceScheduler {
    rebuild: QosLane,
    aggregation: QosLane,
    scrub: QosLane,
}

impl ServiceScheduler {
    fn new() -> Self {
        ServiceScheduler {
            rebuild: QosLane::new(QosLimits::unlimited()),
            aggregation: QosLane::new(QosLimits::unlimited()),
            scrub: QosLane::new(QosLimits::unlimited()),
        }
    }

    /// The lane pacing `service` (budget, admission counters).
    pub fn lane(&self, service: BgService) -> &QosLane {
        match service {
            BgService::Rebuild => &self.rebuild,
            BgService::Aggregation => &self.aggregation,
            BgService::Scrub => &self.scrub,
        }
    }

    fn lane_mut(&mut self, service: BgService) -> &mut QosLane {
        match service {
            BgService::Rebuild => &mut self.rebuild,
            BgService::Aggregation => &mut self.aggregation,
            BgService::Scrub => &mut self.scrub,
        }
    }

    /// Replaces a service's budget with fresh buckets (full at t=0).
    pub fn set_budget(&mut self, service: BgService, limits: QosLimits) {
        *self.lane_mut(service) = QosLane::new(limits);
    }

    fn reset_timing(&mut self) {
        self.rebuild.reset_timing();
        self.aggregation.reset_timing();
        self.scrub.reset_timing();
    }
}

/// Counters for the scrub/aggregation services, reported alongside
/// [`RebuildStats`]. Throttle waits are read out of the service lanes when
/// the stats are sampled.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Cluster scrub passes completed.
    pub scrub_passes: u64,
    /// Coordinated aggregation passes completed.
    pub aggregation_passes: u64,
    /// Objects cross-checked across their replica sets.
    pub objects_checked: u64,
    /// Per-replica object checks performed.
    pub replicas_checked: u64,
    /// Checksum chunks compared (combine-only on the clean path).
    pub chunks_compared: u64,
    /// Stored bytes verified by combining cached chunk CRCs.
    pub combine_bytes: u64,
    /// Payload bytes actually rescanned (CRC-cache misses; ~0 when clean
    /// caches are warm).
    pub scanned_bytes: u64,
    /// Replica-object mismatches detected (bit-rot or divergent record
    /// sets).
    pub mismatches_found: u64,
    /// Mismatches repaired from a healthy replica.
    pub mismatches_repaired: u64,
    /// Records streamed by scrub repair.
    pub repair_records: u64,
    /// Payload bytes streamed by scrub repair.
    pub repair_bytes: u64,
    /// Cumulative delay the rebuild lane imposed.
    pub rebuild_throttle_wait: SimDuration,
    /// Cumulative delay the aggregation lane imposed.
    pub aggregation_throttle_wait: SimDuration,
    /// Cumulative delay the scrub lane imposed.
    pub scrub_throttle_wait: SimDuration,
}

impl ScrubStats {
    /// Folds another counter set into this one (exhaustive by
    /// destructuring, so a new field cannot be silently dropped).
    pub fn merge(&mut self, other: ScrubStats) {
        let ScrubStats {
            scrub_passes,
            aggregation_passes,
            objects_checked,
            replicas_checked,
            chunks_compared,
            combine_bytes,
            scanned_bytes,
            mismatches_found,
            mismatches_repaired,
            repair_records,
            repair_bytes,
            rebuild_throttle_wait,
            aggregation_throttle_wait,
            scrub_throttle_wait,
        } = other;
        self.scrub_passes += scrub_passes;
        self.aggregation_passes += aggregation_passes;
        self.objects_checked += objects_checked;
        self.replicas_checked += replicas_checked;
        self.chunks_compared += chunks_compared;
        self.combine_bytes += combine_bytes;
        self.scanned_bytes += scanned_bytes;
        self.mismatches_found += mismatches_found;
        self.mismatches_repaired += mismatches_repaired;
        self.repair_records += repair_records;
        self.repair_bytes += repair_bytes;
        self.rebuild_throttle_wait += rebuild_throttle_wait;
        self.aggregation_throttle_wait += aggregation_throttle_wait;
        self.scrub_throttle_wait += scrub_throttle_wait;
    }
}

/// Result of one cluster scrub pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Objects whose replica sets were cross-checked.
    pub objects_checked: u64,
    /// Replica-object mismatches detected this pass.
    pub mismatches_found: u64,
    /// Mismatches repaired from a healthy replica this pass.
    pub mismatches_repaired: u64,
}

/// The N engines of a deployment behind one routing layer. See the module
/// docs for the placement/degraded/rebuild semantics.
pub struct EngineCluster {
    engines: Vec<DaosEngine>,
    map: PoolMap,
    rf: usize,
    /// A kill whose re-replication has not run yet: affected objects route
    /// to the pre-kill survivors until [`Self::rebuild`] completes.
    pending_dead: Option<usize>,
    stats: RebuildStats,
    /// Lazily-opened storage-node-to-storage-node rebuild connections.
    rebuild_conns: HashMap<(usize, usize), ConnId>,
    rebuild_pds: HashMap<u32, PdId>,
    /// Fault injection: a black-holed slot is alive in the map but its
    /// connection silently eats traffic — clients only discover it by
    /// deadline expiry, never by an error reply.
    blackholed: Vec<bool>,
    /// Fault injection: per-slot added service latency (a slow engine).
    /// Unlike a blackhole the op still completes — just late.
    stalls: Vec<SimDuration>,
    /// Paced lanes for the background services (rebuild, aggregation,
    /// scrub).
    services: ServiceScheduler,
    /// Scrub/aggregation counters (throttle waits sampled from the lanes).
    sstats: ScrubStats,
    /// Engine-side per-client connection pool for multi-client (incast)
    /// worlds. `None` — the default — bypasses admission entirely, keeping
    /// every single-client world bit-identical to the pre-pool code.
    conn_pool: Option<ConnPool>,
}

fn map_fabric(e: FabricError) -> DaosError {
    DaosError::Transport(format!("rebuild stream: {e:?}"))
}

impl EngineCluster {
    /// Assembles a cluster of `engines` (parallel to `nodes`) replicating
    /// each object across `replication_factor` members.
    pub fn new(engines: Vec<DaosEngine>, nodes: Vec<NodeId>, replication_factor: usize) -> Self {
        assert_eq!(engines.len(), nodes.len(), "one node per engine");
        assert!(!engines.is_empty(), "a cluster needs at least one engine");
        assert!(
            (1..=MAX_RF).contains(&replication_factor),
            "replication factor must be in 1..={MAX_RF}"
        );
        let n = engines.len();
        let mut cluster = EngineCluster {
            engines,
            map: PoolMap::new(nodes),
            rf: replication_factor,
            pending_dead: None,
            stats: RebuildStats::default(),
            rebuild_conns: HashMap::new(),
            rebuild_pds: HashMap::new(),
            blackholed: vec![false; n],
            stalls: vec![SimDuration::ZERO; n],
            services: ServiceScheduler::new(),
            sstats: ScrubStats::default(),
            conn_pool: None,
        };
        cluster.push_map_to_engines();
        cluster
    }

    /// Hands every engine the authoritative map (plus its own slot and the
    /// pool RF) so it can fence stale-stamped and misrouted requests.
    /// Engines learn map revisions only through this push — exactly at
    /// membership-change instants, never lazily.
    fn push_map_to_engines(&mut self) {
        let map = self.map.clone();
        let rf = self.rf;
        for (slot, e) in self.engines.iter_mut().enumerate() {
            e.observe_map(&map, slot, rf);
        }
    }

    /// The degenerate single-engine cluster (RF = 1, storage on
    /// `NodeId(1)`) — the shape every pre-cluster world assembles. Routing
    /// through it is bit-identical to driving the engine directly.
    pub fn single(engine: DaosEngine) -> Self {
        EngineCluster::new(vec![engine], vec![NodeId(1)], 1)
    }

    /// Builds the canonical N-engine pool: one engine per storage node,
    /// each over `ssds` drives with `scm_bytes_per_target` of SCM,
    /// labelled `pool0-eng{slot}`. The single source of engine assembly —
    /// `Ros2System::launch` and the cluster FIO world both build through
    /// here, so the bench worlds cannot drift from the assembled system.
    pub fn assemble(
        nodes: Vec<NodeId>,
        replication_factor: usize,
        ssds: usize,
        mode: ros2_nvme::DataMode,
        scm_bytes_per_target: u64,
        model: crate::types::DaosCostModel,
        class: ros2_hw::CoreClass,
    ) -> Self {
        let engines: Vec<DaosEngine> = (0..nodes.len())
            .map(|i| {
                let bdevs = ros2_spdk::BdevLayer::new(ros2_nvme::NvmeArray::new(
                    ros2_hw::NvmeModel::enterprise_1600(),
                    ssds,
                    mode,
                ));
                DaosEngine::new(
                    format!("pool0-eng{i}"),
                    bdevs,
                    scm_bytes_per_target,
                    model,
                    class,
                )
            })
            .collect();
        EngineCluster::new(engines, nodes, replication_factor)
    }

    /// Number of engines (including down ones).
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the cluster has no engines (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The configured replication factor.
    pub fn replication_factor(&self) -> usize {
        self.rf
    }

    /// The versioned pool map.
    pub fn map(&self) -> &PoolMap {
        &self.map
    }

    /// Redundancy counters (degraded reads served, rebuild movement).
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.stats
    }

    /// Scrub/aggregation counters, with per-service throttle waits
    /// sampled from the lanes at call time.
    pub fn scrub_stats(&self) -> ScrubStats {
        let mut out = self.sstats;
        out.rebuild_throttle_wait = self.services.rebuild.throttle_wait;
        out.aggregation_throttle_wait = self.services.aggregation.throttle_wait;
        out.scrub_throttle_wait = self.services.scrub.throttle_wait;
        out
    }

    /// Sets a background service's pacing budget (fresh buckets, full at
    /// t=0). Services default to unlimited — bit-identical to unpaced.
    pub fn set_service_budget(&mut self, service: BgService, limits: QosLimits) {
        self.services.set_budget(service, limits);
    }

    /// A background service's lane (budget and admission counters).
    pub fn service_lane(&self, service: BgService) -> &QosLane {
        self.services.lane(service)
    }

    /// Immutable engine access by slot.
    pub fn engine(&self, slot: usize) -> &DaosEngine {
        &self.engines[slot]
    }

    /// Mutable engine access by slot.
    pub fn engine_mut(&mut self, slot: usize) -> &mut DaosEngine {
        &mut self.engines[slot]
    }

    /// Iterates all engines.
    pub fn engines(&self) -> impl Iterator<Item = &DaosEngine> {
        self.engines.iter()
    }

    /// Whether the engine in `slot` is currently healthy. The op pipeline
    /// checks this at leg-execution time: a leg staged before a kill and
    /// executed after it must re-arm (fetch) or drop (update replica)
    /// rather than talk to a dead engine.
    pub fn is_up(&self, slot: usize) -> bool {
        self.map.members()[slot].health == EngineHealth::Up
    }

    fn first_up(&self) -> Option<usize> {
        (0..self.engines.len()).find(|&s| self.is_up(s))
    }

    /// Creates a container on every engine.
    pub fn cont_create(&mut self, label: impl Into<String>) -> Result<(), DaosError> {
        let label = label.into();
        for e in &mut self.engines {
            e.cont_create(label.clone())?;
        }
        Ok(())
    }

    /// Whether a container exists on the routing leader.
    pub fn cont_exists(&self, label: &str) -> bool {
        self.first_up()
            .map(|s| self.engines[s].cont_exists(label))
            .unwrap_or(false)
    }

    /// Allocates the next cluster-wide commit epoch for `cont`: the first
    /// healthy engine allocates, every other healthy engine observes — so
    /// all healthy counters agree and a failover leader continues the same
    /// monotonic sequence.
    pub fn next_epoch(&mut self, cont: &str) -> Result<Epoch, DaosError> {
        let first = self.first_up().ok_or(DaosError::NoSuchEntity)?;
        let epoch = self.engines[first].next_epoch(cont)?;
        for s in 0..self.engines.len() {
            if s != first && self.is_up(s) {
                self.engines[s].observe_epoch(cont, epoch);
            }
        }
        Ok(epoch)
    }

    /// Records a snapshot on the epoch-allocating engine.
    pub fn snapshot(&mut self, cont: &str) -> Result<Epoch, DaosError> {
        let first = self.first_up().ok_or(DaosError::NoSuchEntity)?;
        self.engines[first].snapshot(cont)
    }

    /// The container's current committed-epoch high-water mark, read from
    /// the epoch-allocating engine **without** allocating. This is the
    /// stamp a fetch completion carries back to the caller (clients learn
    /// the commit horizon from every completion and from aggregation
    /// reports), and the value the DPU read cache compares against to
    /// detect writes it did not issue itself. `Epoch(0)` for a container
    /// no healthy engine knows.
    pub fn container_epoch(&self, cont: &str) -> Epoch {
        self.first_up()
            .and_then(|s| self.engines[s].container_meta(cont))
            .map(|m| Epoch(m.epoch_counter))
            .unwrap_or(Epoch(0))
    }

    /// The object's current routing set and whether it is degraded (the
    /// set lost a member to a not-yet-rebuilt kill). While a rebuild is
    /// pending, affected objects route to the pre-kill *survivors* — the
    /// members guaranteed to hold the data — and the HRW backfill member
    /// joins the set only once [`Self::rebuild`] has re-replicated onto it.
    fn route(&self, oid: &ObjectId) -> (ReplicaSet, bool) {
        route_in(&self.map, self.pending_dead, self.rf, oid)
    }

    /// A client-cacheable copy of the current routing state. This is the
    /// payload of a `MapQuery` reply and of a RAS delivery: once handed
    /// out it never changes, so a client holding it genuinely races later
    /// membership changes.
    pub fn snapshot_map(&self) -> MapSnapshot {
        MapSnapshot {
            map: self.map.clone(),
            pending_dead: self.pending_dead,
            rf: self.rf,
        }
    }

    /// The current routing state as the RAS push wire message — encoded
    /// once, deliverable to every subscribed client.
    pub fn ras_push(&self) -> ControlRequest {
        self.snapshot_map().to_push()
    }

    /// Turns on the engine-side connection pool: resident per-client
    /// session state is bounded at `capacity` with LRU eviction and
    /// `handshake` charged per (re)connect. Worlds that never call this
    /// (every single-client world) stay bit-identical to the pre-pool
    /// cluster.
    pub fn enable_conn_pool(&mut self, capacity: usize, handshake: SimDuration) {
        self.conn_pool = Some(ConnPool::new(capacity, handshake));
    }

    /// Admits one request from `client` through the connection pool:
    /// returns the instant the request may proceed (`now` on a hit or when
    /// no pool is configured, `now + handshake` when the client had to
    /// (re)connect).
    pub fn pool_admit(&mut self, client: NodeId, now: SimTime) -> SimTime {
        match &mut self.conn_pool {
            Some(pool) => pool.admit(client, now),
            None => now,
        }
    }

    /// The connection pool, if enabled.
    pub fn conn_pool(&self) -> Option<&ConnPool> {
        self.conn_pool.as_ref()
    }

    /// Connection-pool counters (all-zero when no pool is configured).
    pub fn conn_pool_stats(&self) -> ConnPoolStats {
        self.conn_pool
            .as_ref()
            .map(ConnPool::stats)
            .unwrap_or_default()
    }

    /// Drops `client`'s resident session (fault injection). Returns
    /// whether a session was actually dropped.
    pub fn pool_kill_session(&mut self, client: NodeId) -> bool {
        self.conn_pool
            .as_mut()
            .is_some_and(|p| p.kill_session(client))
    }

    /// Routes a fetch through a client's cached `snap` instead of the live
    /// map, with the same degraded-read accounting as
    /// [`Self::route_fetch`]: the cluster still observes the read (the
    /// engines serve it), it just resolved the route from the client's
    /// possibly-stale view.
    pub fn route_fetch_snapshot(&mut self, snap: &MapSnapshot, oid: &ObjectId) -> ReplicaSet {
        self.route_fetch_snapshot_meta(snap, oid).0
    }

    /// [`Self::route_fetch_snapshot`] plus the degraded flag, for callers
    /// that maintain a read cache: only leader-path (non-degraded) fetch
    /// completions are safe to fill from. Accounting is identical.
    pub fn route_fetch_snapshot_meta(
        &mut self,
        snap: &MapSnapshot,
        oid: &ObjectId,
    ) -> (ReplicaSet, bool) {
        let (set, degraded) = snap.route(oid);
        if degraded {
            self.stats.degraded_fetches += 1;
        }
        (set, degraded)
    }

    /// The replica set an update must fan out to (every healthy member).
    pub fn route_update(&self, oid: &ObjectId) -> ReplicaSet {
        self.route(oid).0
    }

    /// The replica set a fetch may read from, leader first. A fetch of an
    /// object that has lost a replica to an unrebuilt kill is counted as a
    /// degraded-mode read (redundancy is short, whichever member died; if
    /// the dead member was the leader, the read also fails over).
    pub fn route_fetch(&mut self, oid: &ObjectId) -> ReplicaSet {
        self.route_fetch_meta(oid).0
    }

    /// A side-effect-free preview of the live-map route for `oid`: the
    /// replica set and degraded flag **without** counting a fetch. Cache
    /// probes use this to validate an entry against the current route
    /// before deciding whether any fetch happens at all.
    pub fn route_preview(&self, oid: &ObjectId) -> (ReplicaSet, bool) {
        self.route(oid)
    }

    /// [`Self::route_fetch`] plus the degraded flag (see
    /// [`Self::route_fetch_snapshot_meta`]). Accounting is identical.
    pub fn route_fetch_meta(&mut self, oid: &ObjectId) -> (ReplicaSet, bool) {
        let (set, degraded) = self.route(oid);
        if degraded {
            self.stats.degraded_fetches += 1;
        }
        (set, degraded)
    }

    /// Marks `slot` down and bumps the map revision (the RAS event the
    /// control plane broadcasts). Affected objects immediately route
    /// around the dead engine; redundancy is restored by
    /// [`Self::rebuild`]. Only one unrebuilt failure is supported at a
    /// time — a second kill before rebuild is rejected.
    pub fn kill_engine(&mut self, slot: usize) -> Result<u64, DaosError> {
        if self.pending_dead.is_some() {
            return Err(DaosError::Transport(
                "a rebuild is already pending; rebuild before the next kill".into(),
            ));
        }
        let version = self.map.kill(slot)?;
        self.pending_dead = Some(slot);
        self.push_map_to_engines();
        Ok(version)
    }

    /// Fault injection: black-holes (or restores) the connection to
    /// `slot`. The engine stays Up in the map — requests to it just
    /// vanish, which clients can only detect by deadline expiry.
    pub fn set_blackhole(&mut self, slot: usize, on: bool) {
        self.blackholed[slot] = on;
    }

    /// Whether the connection to `slot` is black-holed.
    pub fn blackholed(&self, slot: usize) -> bool {
        self.blackholed[slot]
    }

    /// Whether a request sent to `slot` would get any reply at all:
    /// the engine is up *and* its connection is not black-holed.
    pub fn is_reachable(&self, slot: usize) -> bool {
        self.is_up(slot) && !self.blackholed[slot]
    }

    /// Fault injection: adds `extra` service latency to every op `slot`
    /// completes (a slow engine — completes late rather than never).
    pub fn set_stall(&mut self, slot: usize, extra: SimDuration) {
        self.stalls[slot] = extra;
    }

    /// The injected slow-engine stall for `slot` (zero when healthy).
    pub fn stall(&self, slot: usize) -> SimDuration {
        self.stalls[slot]
    }

    /// Total stale-map fences across engines (requests rejected with
    /// [`DaosError::StaleMap`] rather than served).
    pub fn fences(&self) -> u64 {
        self.engines.iter().map(|e| e.fences()).sum()
    }

    /// Test/validation hook: forces serial batch execution on every engine
    /// (see [`DaosEngine::set_force_serial_batch`]).
    pub fn set_force_serial_batch(&mut self, on: bool) {
        for e in &mut self.engines {
            e.set_force_serial_batch(on);
        }
    }

    fn rebuild_conn(
        &mut self,
        fabric: &mut Fabric,
        src: usize,
        dst: usize,
    ) -> Result<ConnId, DaosError> {
        if let Some(&c) = self.rebuild_conns.get(&(src, dst)) {
            return Ok(c);
        }
        let (a, b) = (self.map.members()[src].node, self.map.members()[dst].node);
        let pa = *self
            .rebuild_pds
            .entry(a.0)
            .or_insert_with(|| fabric.rdma_mut(a).alloc_pd("rebuild"));
        let pb = *self
            .rebuild_pds
            .entry(b.0)
            .or_insert_with(|| fabric.rdma_mut(b).alloc_pd("rebuild"));
        let conn = fabric.connect(a, b, pa, pb).map_err(map_fabric)?;
        self.rebuild_conns.insert((src, dst), conn);
        Ok(conn)
    }

    /// Online rebuild of the pending kill: for every object that lost a
    /// replica, the first surviving replica exports the records **once**,
    /// streams the payload bytes over the fabric to the deterministic HRW
    /// backfill engine (wire time booked on both storage nodes' ports —
    /// data-plane rates), and the backfill imports them through the normal
    /// VOS update path (fresh media placement, fresh checksums). Each
    /// record's send is admitted through the rebuild [`QosLane`], so a
    /// GiB/s budget throttles recovery below foreground rates; the default
    /// unlimited lane grants at `now` and changes nothing. Returns the
    /// instant the last import persisted. A no-op when nothing is pending.
    pub fn rebuild(&mut self, fabric: &mut Fabric, now: SimTime) -> Result<SimTime, DaosError> {
        // `pending_dead` is cleared only after the whole pass succeeds: a
        // mid-rebuild error leaves degraded routing in place and the next
        // rebuild() retries (re-imported records are byte-identical at the
        // same epochs, so a partial first pass is harmless).
        let Some(dead) = self.pending_dead else {
            return Ok(now);
        };
        self.stats.rebuilds += 1;
        let mut t_done = now;
        let mut oids: Vec<ObjectId> = Vec::new();
        for s in 0..self.engines.len() {
            if self.is_up(s) {
                oids.extend(self.engines[s].list_objects());
            }
        }
        oids.sort();
        oids.dedup();
        for oid in oids {
            let pre = self.map.replica_set_with(&oid, self.rf, Some(dead));
            if !pre.contains(dead) {
                continue;
            }
            let post = self.map.replica_set(&oid, self.rf);
            let Some(src) = pre.iter().find(|&s| s != dead) else {
                // RF = 1 and the only copy died: nothing to restore from.
                continue;
            };
            let dsts: Vec<usize> = post.iter().filter(|&s| !pre.contains(s)).collect();
            if dsts.is_empty() {
                continue;
            }
            // One export per oid regardless of backfill fan-out — the seed
            // re-read (and re-charged media time for) the source object
            // once per destination.
            let (records, t_read) = self.engines[src].export_object(now, oid)?;
            for dst in dsts {
                let conn = self.rebuild_conn(fabric, src, dst)?;
                let mut t = t_read;
                let mut bytes = 0u64;
                for rec in &records {
                    t = self.services.rebuild.admit(t, rec.data.len() as u64);
                    if !rec.data.is_empty() {
                        let d = fabric
                            .send(t, conn, Dir::AtoB, rec.data.clone())
                            .map_err(map_fabric)?;
                        t = d.at;
                    }
                    bytes += rec.data.len() as u64;
                }
                let t_imported = self.engines[dst].import_records(t, oid, &records)?;
                t_done = t_done.max(t_imported);
                self.stats.records_moved += records.len() as u64;
                self.stats.bytes_moved += bytes;
            }
            self.stats.objects_moved += 1;
        }
        self.pending_dead = None;
        // Rebuild completion changes routing (the pre-kill-survivor
        // override ends; the HRW backfill member joins the set) without a
        // membership edit, so it gets its own revision bump and push —
        // clients still holding the degraded-window map must be fenced
        // into a refresh.
        self.map.note_rebuilt();
        self.push_map_to_engines();
        Ok(t_done)
    }

    /// Whether a kill is awaiting rebuild.
    pub fn rebuild_pending(&self) -> bool {
        self.pending_dead.is_some()
    }

    /// Coordinated epoch aggregation for `cont`: picks the highest
    /// boundary that is safe on **every** up engine and runs
    /// [`DaosEngine::aggregate`] on all of them at that same boundary, so
    /// replicas reclaim exactly the same shadowed records and their
    /// stores stay byte-comparable — the precondition replica scrub
    /// cross-checks.
    ///
    /// The safe-boundary rule: the minimum over up engines of the
    /// container's epoch counter (nothing above an engine's view is
    /// aggregated before it has observed the epoch), capped by the oldest
    /// retained snapshot (snapshot reads resolve "newest ≤ snapshot",
    /// which aggregation at the snapshot boundary preserves), capped by
    /// `inflight_floor - 1` when the caller has epochs still in flight
    /// (a pipelined ring that has not drained). Engines that have never
    /// seen the container are skipped; if none has, there is nothing to
    /// aggregate.
    ///
    /// Each engine's pass is admitted through the aggregation lane (one
    /// op per engine); returns the boundary used and the grant instant of
    /// the last pass.
    pub fn aggregate_cluster(
        &mut self,
        now: SimTime,
        cont: &str,
        inflight_floor: Option<Epoch>,
    ) -> Result<(Epoch, SimTime), DaosError> {
        let mut boundary = u64::MAX;
        let mut seen = false;
        for s in 0..self.engines.len() {
            if !self.is_up(s) {
                continue;
            }
            if let Some(meta) = self.engines[s].container_meta(cont) {
                seen = true;
                boundary = boundary.min(meta.epoch_counter);
                if let Some(&snap) = meta.snapshots.iter().min() {
                    boundary = boundary.min(snap);
                }
            }
        }
        if !seen {
            return Err(DaosError::NoSuchEntity);
        }
        if let Some(floor) = inflight_floor {
            boundary = boundary.min(floor.0.saturating_sub(1));
        }
        let mut t = now;
        for s in 0..self.engines.len() {
            if !self.is_up(s) {
                continue;
            }
            t = self.services.aggregation.admit(t, 1);
            self.engines[s].aggregate(Epoch(boundary));
        }
        self.sstats.aggregation_passes += 1;
        Ok((Epoch(boundary), t))
    }

    /// One replica-scrub pass: every object's replica set is
    /// self-verified (each replica's recorded checksums combined against
    /// its media stores' cached chunk CRCs — bit-rot rewrites media bytes
    /// behind the index and invalidates those caches, so it cannot hide)
    /// and cross-checked by record-set fingerprint. A replica that fails
    /// either check is repaired from the first self-clean replica in
    /// route order: punch the bad copy, stream the reference's records
    /// over the rebuild fabric path, and re-import them **at their
    /// original epochs** through the normal update path (fresh placement,
    /// fresh checksums) — so the repaired replica resolves the same
    /// version overlay, byte-for-byte. Verification and repair streaming
    /// are admitted through the scrub lane. With no healthy reference
    /// (RF = 1, or every replica rotten) the mismatch is detected but
    /// left unrepaired for the caller's RAS event.
    pub fn scrub(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
    ) -> Result<(ScrubOutcome, SimTime), DaosError> {
        let mut oids: Vec<ObjectId> = Vec::new();
        for s in 0..self.engines.len() {
            if self.is_up(s) {
                oids.extend(self.engines[s].list_objects());
            }
        }
        oids.sort();
        oids.dedup();
        let scanned_before = self.data_plane_stats().crc_bytes_scanned;
        let mut outcome = ScrubOutcome::default();
        let mut t_done = now;
        for oid in oids {
            let set = self.route(&oid).0;
            if set.is_empty() {
                continue;
            }
            outcome.objects_checked += 1;
            self.sstats.objects_checked += 1;
            // Per-replica self-verify, paced by verified volume.
            let mut checks: Vec<(usize, ScrubCheck, u64)> = Vec::new();
            let mut t = now;
            for s in set.iter() {
                let check = self.engines[s].scrub_object(oid);
                t = self.services.scrub.admit(t, check.bytes);
                self.sstats.replicas_checked += 1;
                self.sstats.chunks_compared += check.chunks;
                self.sstats.combine_bytes += check.bytes;
                let fp = self.engines[s].object_fingerprint(oid);
                checks.push((s, check, fp));
            }
            t_done = t_done.max(t);
            // The reference replica: first self-clean copy in route order.
            let reference = checks
                .iter()
                .find(|(_, c, _)| c.bad == 0)
                .map(|&(s, _, fp)| (s, fp));
            for &(slot, check, fp) in &checks {
                let healthy = check.bad == 0 && reference.is_some_and(|(_, rfp)| fp == rfp);
                if healthy {
                    continue;
                }
                outcome.mismatches_found += 1;
                self.sstats.mismatches_found += 1;
                let Some((src, _)) = reference.filter(|&(src, _)| src != slot) else {
                    continue;
                };
                // Repair: punch the rotten copy and re-stream the
                // reference's record history at original epochs.
                let (records, t_read) = self.engines[src].export_object(t_done, oid)?;
                self.engines[slot].punch_object(oid);
                let conn = self.rebuild_conn(fabric, src, slot)?;
                let mut t = t_read;
                let mut bytes = 0u64;
                for rec in &records {
                    t = self.services.scrub.admit(t, rec.data.len() as u64);
                    if !rec.data.is_empty() {
                        let d = fabric
                            .send(t, conn, Dir::AtoB, rec.data.clone())
                            .map_err(map_fabric)?;
                        t = d.at;
                    }
                    bytes += rec.data.len() as u64;
                }
                let t_imported = self.engines[slot].import_records(t, oid, &records)?;
                t_done = t_done.max(t_imported);
                self.sstats.repair_records += records.len() as u64;
                self.sstats.repair_bytes += bytes;
                outcome.mismatches_repaired += 1;
                self.sstats.mismatches_repaired += 1;
            }
        }
        self.sstats.scrub_passes += 1;
        self.sstats.scanned_bytes += self
            .data_plane_stats()
            .crc_bytes_scanned
            .saturating_sub(scanned_before);
        Ok((outcome, t_done))
    }

    /// Lists an object's dkeys from its routing leader.
    pub fn list_dkeys(&mut self, oid: ObjectId) -> Vec<DKey> {
        match self.route(&oid).0.leader() {
            Some(s) => self.engines[s].list_dkeys(oid),
            None => Vec::new(),
        }
    }

    /// Punches a `(dkey, akey)` on every routed replica; the leader's
    /// result is authoritative.
    pub fn punch(
        &mut self,
        oid: ObjectId,
        dkey: &DKey,
        akey: &crate::types::AKey,
    ) -> Result<(), DaosError> {
        let set = self.route(&oid).0;
        let mut first: Option<Result<(), DaosError>> = None;
        for s in set.iter() {
            let r = self.engines[s].punch(oid, dkey, akey);
            if first.is_none() {
                first = Some(r);
            }
        }
        first.unwrap_or(Err(DaosError::NoSuchEntity))
    }

    /// Punches an entire object on every routed replica.
    pub fn punch_object(&mut self, oid: ObjectId) {
        let set = self.route(&oid).0;
        for s in set.iter() {
            self.engines[s].punch_object(oid);
        }
    }

    /// Total RPCs processed across engines.
    pub fn rpcs(&self) -> u64 {
        self.engines.iter().map(|e| e.rpcs()).sum()
    }

    /// Merged VOS stats across engines.
    pub fn vos_stats(&self) -> VosStats {
        let mut out = VosStats::default();
        for e in &self.engines {
            out.merge(&e.vos_stats());
        }
        out
    }

    /// Aggregate booking counters across engines.
    pub fn resource_stats(&self) -> ros2_sim::ResourceStats {
        let mut total = ros2_sim::ResourceStats::default();
        for e in &self.engines {
            total.merge(e.resource_stats());
        }
        total
    }

    /// Aggregate data-plane counters across engines.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = ros2_buf::DataPlaneStats::default();
        for e in &self.engines {
            total.merge(e.data_plane_stats());
        }
        total
    }

    /// Resets every engine's timing to t=0 (contents untouched), and
    /// rebuilds every service lane full at t=0 with counters zeroed.
    pub fn reset_timing(&mut self) {
        for e in &mut self.engines {
            e.reset_timing();
        }
        self.services.reset_timing();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ObjClass;

    fn map(n: usize) -> PoolMap {
        PoolMap::new((0..n).map(|i| NodeId(i as u32 + 1)).collect())
    }

    #[test]
    fn replica_sets_are_deterministic_and_distinct() {
        let m = map(6);
        for lo in 0..200u64 {
            let oid = ObjectId::new(ObjClass::Sx, lo);
            let a = m.replica_set(&oid, 3);
            let b = m.replica_set(&oid, 3);
            assert_eq!(a, b);
            assert_eq!(a.len(), 3);
            let slots: Vec<usize> = a.iter().collect();
            let mut dedup = slots.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct: {slots:?}");
        }
    }

    #[test]
    fn kill_moves_only_affected_objects() {
        let mut m = map(5);
        let oids: Vec<ObjectId> = (0..500).map(|i| ObjectId::new(ObjClass::Sx, i)).collect();
        let before: Vec<ReplicaSet> = oids.iter().map(|o| m.replica_set(o, 2)).collect();
        m.kill(2).unwrap();
        for (oid, pre) in oids.iter().zip(&before) {
            let post = m.replica_set(oid, 2);
            if !pre.contains(2) {
                assert_eq!(&post, pre, "unaffected object moved");
            } else {
                // Survivors keep their copies; exactly one backfill joins.
                for s in pre.iter().filter(|&s| s != 2) {
                    assert!(post.contains(s), "survivor evicted");
                }
                assert!(!post.contains(2));
            }
        }
    }

    #[test]
    fn replica_set_shrinks_to_up_count() {
        let mut m = map(2);
        let oid = ObjectId::new(ObjClass::S1, 9);
        assert_eq!(m.replica_set(&oid, 3).len(), 2);
        m.kill(0).unwrap();
        let set = m.replica_set(&oid, 3);
        assert_eq!(set.len(), 1);
        assert_eq!(set.leader(), Some(1));
        assert!(m.kill(0).is_err(), "double kill rejected");
    }

    #[test]
    fn map_versions_bump_on_transitions() {
        let mut m = map(3);
        assert_eq!(m.version(), 1);
        m.kill(1).unwrap();
        assert_eq!(m.version(), 2);
        let slot = m.add_engine(NodeId(9));
        assert_eq!(slot, 3);
        assert_eq!(m.version(), 3);
        assert_eq!(m.up_count(), 3);
    }

    #[test]
    fn map_push_roundtrips_through_the_wire() {
        let mut m = map(4);
        m.kill(2).unwrap();
        let snap = MapSnapshot {
            map: m.clone(),
            pending_dead: Some(2),
            rf: 3,
        };
        let nodes: Vec<NodeId> = m.members().iter().map(|mem| mem.node).collect();
        let frame = snap.to_push().encode();
        match ControlRequest::decode(frame).unwrap() {
            ControlRequest::MapPush {
                version,
                healths,
                pending_dead,
            } => {
                let rebuilt = MapSnapshot::from_wire(&nodes, 3, version, &healths, pending_dead);
                assert_eq!(rebuilt, snap);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // No pending kill encodes as the u32::MAX sentinel and survives.
        let clean = MapSnapshot {
            map: map(4),
            pending_dead: None,
            rf: 2,
        };
        match clean.to_push() {
            ControlRequest::MapPush {
                version,
                healths,
                pending_dead,
            } => {
                assert_eq!(pending_dead, u32::MAX);
                let rebuilt = MapSnapshot::from_wire(&nodes, 2, version, &healths, pending_dead);
                assert_eq!(rebuilt, clean);
            }
            other => panic!("wrong encode: {other:?}"),
        }
    }

    #[test]
    fn spread_is_reasonably_balanced() {
        let m = map(4);
        let mut counts = [0u32; 4];
        for lo in 0..4000u64 {
            let oid = ObjectId::new(ObjClass::Sx, lo);
            counts[m.replica_set(&oid, 1).leader().unwrap()] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "imbalanced {counts:?}");
        }
    }
}
