//! The DAOS client (libdaos analogue) — the component ROS2 relocates from
//! the host CPU to the BlueField-3 (§3.2).
//!
//! The client is placement-agnostic: it runs on whichever fabric node it is
//! constructed for, and every CPU cost it pays is scaled to that node's
//! core class. Each job (FIO thread) owns a connection, a serialized client
//! core, and a registered staging buffer:
//!
//! * **RDMA**: updates announce staged data and the *server* pulls with
//!   RDMA READ; fetches are *pushed* by the server with RDMA WRITE into the
//!   job's buffer. The client CPU never touches payload bytes.
//! * **TCP**: payloads travel inline in the RPC messages, paying per-byte
//!   CPU on both ends (and the DPU receive-path penalty when the client is
//!   the SmartNIC).

use bytes::{Bytes, BytesMut};
use ros2_buf::zero_bytes;
use ros2_fabric::{ConnId, Dir, Fabric, FabricError};
use ros2_hw::{CoreClass, Transport};
use ros2_sim::{ResourceStats, ServerPool, SimTime};
use ros2_verbs::{AccessFlags, Expiry, MemAddr, MemoryDomain, MrId, NodeId, PdId, RKey};

use crate::engine::{DaosEngine, TargetOp, TargetOpResult, ValueKind};
use crate::types::{AKey, DKey, DaosCostModel, DaosError, Epoch, ObjectId};

/// RPC descriptor size on the wire (OBJ_UPDATE/OBJ_FETCH header).
const RPC_DESC: usize = 128;
/// Completion message size.
const RPC_DONE: usize = 16;

/// The zeroed OBJ_UPDATE/OBJ_FETCH descriptor: a refcounted slice of the
/// process-wide zero pool, so issuing an RPC never heap-allocates the
/// header (the seed built a fresh `Vec` per RPC on every path).
fn rpc_desc() -> Bytes {
    zero_bytes(RPC_DESC)
}

/// The zeroed completion message (same shared pool).
fn rpc_done() -> Bytes {
    zero_bytes(RPC_DONE)
}

fn map_fabric(e: FabricError) -> DaosError {
    DaosError::Transport(format!("{e:?}"))
}

struct ClientJob {
    conn: ConnId,
    core: ServerPool,
    buf: MemAddr,
    buf_len: u64,
    rkey: Option<RKey>,
    /// The MR handle behind `rkey` (RDMA only), kept so the registration
    /// can be replaced when a scoped rkey nears expiry.
    mr: Option<MrId>,
}

/// A connected DAOS client bound to one container.
pub struct DaosClient {
    node: NodeId,
    server: NodeId,
    cont: String,
    pd: PdId,
    jobs: Vec<ClientJob>,
    model: DaosCostModel,
    class: CoreClass,
    transport: Transport,
    ops: u64,
}

impl DaosClient {
    /// Connects `jobs` client jobs from `node` to the engine on `server`,
    /// staging through `buf_len`-byte buffers in `domain` (DPU DRAM for the
    /// prototype; [`MemoryDomain::GpuHbm`] for the GPUDirect extension).
    /// Staging MRs are registered with [`Expiry::Never`]; the DPU tenant
    /// manager's scoped-rkey discipline uses [`Self::connect_scoped`].
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        fabric: &mut Fabric,
        node: NodeId,
        server: NodeId,
        tenant: &str,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
    ) -> Result<Self, DaosError> {
        Self::connect_scoped(
            fabric,
            node,
            server,
            tenant,
            cont,
            jobs,
            buf_len,
            domain,
            model,
            Expiry::Never,
        )
    }

    /// [`Self::connect`] with every staging MR registered under `expiry`
    /// from the outset — no window where an unscoped rkey exists.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_scoped(
        fabric: &mut Fabric,
        node: NodeId,
        server: NodeId,
        tenant: &str,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
        expiry: Expiry,
    ) -> Result<Self, DaosError> {
        let class = fabric.node(node).class();
        let transport = fabric.transport();
        let pd = fabric.rdma_mut(node).alloc_pd(tenant);
        let server_pd = fabric
            .rdma_mut(server)
            .alloc_pd(format!("daos-engine:{tenant}"));
        let mut out_jobs = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let conn = fabric
                .connect(node, server, pd, server_pd)
                .map_err(map_fabric)?;
            let buf = fabric
                .rdma_mut(node)
                .alloc_buffer(buf_len, domain)
                .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
            let (mr, rkey) = match transport {
                Transport::Rdma => {
                    let (mr, rkey, _) = fabric
                        .rdma_mut(node)
                        .reg_mr(pd, buf, buf_len, AccessFlags::remote_rw(), expiry)
                        .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
                    (Some(mr), Some(rkey))
                }
                Transport::Tcp => (None, None),
            };
            out_jobs.push(ClientJob {
                conn,
                core: ServerPool::new(1),
                buf,
                buf_len,
                rkey,
                mr,
            });
        }
        Ok(DaosClient {
            node,
            server,
            cont: cont.into(),
            pd,
            jobs: out_jobs,
            model,
            class,
            transport,
            ops: 0,
        })
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The storage-server node this client targets.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// The client's protection domain (its tenant boundary).
    pub fn pd(&self) -> PdId {
        self.pd
    }

    /// Number of jobs.
    pub fn jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Operations issued.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The container this client is bound to.
    pub fn container(&self) -> &str {
        &self.cont
    }

    /// Resets per-job core timing to t=0.
    pub fn reset_timing(&mut self) {
        for j in &mut self.jobs {
            j.core.reset_timing();
        }
    }

    /// Aggregate booking / fast-path counters over the per-job client
    /// cores.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for j in &self.jobs {
            total.merge(j.core.stats());
        }
        total
    }

    /// Replaces `job`'s staging registration with one that expires at
    /// `expiry` — the scoped-rkey discipline the DPU tenant manager issues.
    /// A no-op on TCP transports (no registered memory on the wire path).
    ///
    /// The old MR is deregistered first, so a stolen copy of the previous
    /// rkey dies with the swap; in-flight one-sided ops that land after the
    /// swap fail with `InvalidRkey`/`ExpiredRkey` at the NIC, exactly like
    /// hardware.
    pub fn set_mr_expiry(
        &mut self,
        fabric: &mut Fabric,
        job: usize,
        expiry: Expiry,
    ) -> Result<(), DaosError> {
        if self.transport != Transport::Rdma {
            return Ok(());
        }
        let (buf, buf_len) = (self.jobs[job].buf, self.jobs[job].buf_len);
        if let Some(mr) = self.jobs[job].mr.take() {
            fabric
                .rdma_mut(self.node)
                .dereg_mr(mr)
                .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
        }
        let (mr, rkey, _) = fabric
            .rdma_mut(self.node)
            .reg_mr(self.pd, buf, buf_len, AccessFlags::remote_rw(), expiry)
            .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
        self.jobs[job].mr = Some(mr);
        self.jobs[job].rkey = Some(rkey);
        Ok(())
    }

    fn client_cpu(&mut self, now: SimTime, job: usize) -> SimTime {
        let mut cost = self.class.scale(self.model.client_per_op);
        if self.class == CoreClass::DpuArm {
            cost = cost.mul_f64(self.model.dpu_client_overhead);
        }
        self.jobs[job].core.submit(now, cost).finish
    }

    /// Phase A of an update: client CPU, payload staging, descriptor send
    /// and (RDMA) the server's pull. Returns the instant the data is
    /// resident server-side plus the server's payload handle.
    fn stage_update(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        job: usize,
        data: Bytes,
    ) -> Result<(SimTime, Bytes), DaosError> {
        let len = data.len() as u64;
        let t_cpu = self.client_cpu(now, job);
        let conn = self.jobs[job].conn;
        match self.transport {
            Transport::Rdma => {
                // Stage locally (zero-copy: the registered buffer adopts
                // the caller's handle); descriptor announces it; server
                // pulls.
                fabric
                    .rdma_mut(self.node)
                    .write_local_bytes(self.jobs[job].buf, &data)
                    .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
                let desc = fabric
                    .send(t_cpu, conn, Dir::AtoB, rpc_desc())
                    .map_err(map_fabric)?;
                let pull = fabric
                    .rdma_read(
                        desc.at,
                        conn,
                        Dir::BtoA,
                        self.jobs[job].rkey.expect("rdma job has rkey"),
                        self.jobs[job].buf,
                        len,
                    )
                    .map_err(map_fabric)?;
                Ok((pull.at, pull.data.expect("pull returns data")))
            }
            Transport::Tcp => {
                // Descriptor + inline payload in one stream write.
                let mut msg = BytesMut::with_capacity(RPC_DESC + data.len());
                msg.extend_from_slice(&[0u8; RPC_DESC]);
                msg.extend_from_slice(&data);
                let d = fabric
                    .send(t_cpu, conn, Dir::AtoB, msg.freeze())
                    .map_err(map_fabric)?;
                Ok((d.at, d.data.expect("tcp carries data").slice(RPC_DESC..)))
            }
        }
    }

    /// Phase C of an update: the server's completion SEND at `persisted`.
    fn finish_update(
        &mut self,
        fabric: &mut Fabric,
        job: usize,
        persisted: SimTime,
    ) -> Result<SimTime, DaosError> {
        let done = fabric
            .send(persisted, self.jobs[job].conn, Dir::BtoA, rpc_done())
            .map_err(map_fabric)?;
        Ok(done.at)
    }

    /// Phase A of a fetch: client CPU plus the descriptor send. Returns
    /// the instant the request reaches the server.
    fn stage_fetch(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        job: usize,
    ) -> Result<SimTime, DaosError> {
        let t_cpu = self.client_cpu(now, job);
        let conn = self.jobs[job].conn;
        let req = fabric
            .send(t_cpu, conn, Dir::AtoB, rpc_desc())
            .map_err(map_fabric)?;
        Ok(req.at)
    }

    /// Phase C of a fetch: (RDMA) the server's push into the job's
    /// registered buffer plus the completion SEND, or (TCP) the inline
    /// response.
    fn finish_fetch(
        &mut self,
        fabric: &mut Fabric,
        job: usize,
        data: Bytes,
        ready: SimTime,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        let conn = self.jobs[job].conn;
        match self.transport {
            Transport::Rdma => {
                let push = fabric
                    .rdma_write(
                        ready,
                        conn,
                        Dir::BtoA,
                        self.jobs[job].rkey.expect("rdma job has rkey"),
                        self.jobs[job].buf,
                        data,
                    )
                    .map_err(map_fabric)?;
                let done = fabric
                    .send(push.at, conn, Dir::BtoA, rpc_done())
                    .map_err(map_fabric)?;
                let landed = fabric
                    .rdma_mut(self.node)
                    .read_local(self.jobs[job].buf, len as usize)
                    .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
                Ok((landed, done.at))
            }
            Transport::Tcp => {
                let d = fabric
                    .send(ready, conn, Dir::BtoA, data)
                    .map_err(map_fabric)?;
                Ok((d.data.expect("tcp carries data"), d.at))
            }
        }
    }

    /// Issues an OBJ_UPDATE from `job`. Returns the commit instant.
    ///
    /// Identical to a one-op [`Self::execute_batch`] — both run the same
    /// stage/execute/finish phases (asserted by the batch equivalence
    /// suite) — without the batch bookkeeping.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        self.ops += 1;
        if data.len() as u64 > self.jobs[job].buf_len {
            return Err(DaosError::Transport("staging buffer too small".into()));
        }
        let epoch = engine.next_epoch(&self.cont)?;
        let (data_at_server, payload) = self.stage_update(fabric, now, job, data)?;
        let persisted = engine.update(
            data_at_server,
            &self.cont,
            oid,
            dkey,
            akey,
            kind,
            epoch,
            payload,
        )?;
        self.finish_update(fabric, job, persisted)
    }

    /// Issues an OBJ_FETCH from `job` reading `len` bytes at `epoch`.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        self.ops += 1;
        if len > self.jobs[job].buf_len {
            return Err(DaosError::Transport("staging buffer too small".into()));
        }
        let req_at = self.stage_fetch(fabric, now, job)?;
        let (data, ready) =
            engine.fetch(req_at, &self.cont, oid, &dkey, &akey, kind, epoch, len)?;
        self.finish_fetch(fabric, job, data, ready, len)
    }

    /// Submits a whole queue's worth of independent ops from `job` as one
    /// fan-out: every descriptor/staging exchange runs first (in
    /// submission order), the engine executes the batch across its shards
    /// in one [`DaosEngine::execute_batch`] call, and completions drain
    /// back in submission order — one engine round-trip instead of N.
    ///
    /// Results come back in submission order. Per-op failures (oversized
    /// I/O, missing records) are reported in that op's slot and do not
    /// abort the rest of the batch.
    pub fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        let mut results: Vec<Option<ClientOpResult>> = (0..ops.len()).map(|_| None).collect();
        let mut target_ops = Vec::with_capacity(ops.len());
        // Engine-op index -> (client-op slot, fetch read-back length).
        let mut pending: Vec<(usize, Option<u64>)> = Vec::with_capacity(ops.len());

        for (i, op) in ops.into_iter().enumerate() {
            self.ops += 1;
            match op {
                ClientOp::Update {
                    oid,
                    dkey,
                    akey,
                    kind,
                    data,
                } => {
                    if data.len() as u64 > self.jobs[job].buf_len {
                        results[i] = Some(ClientOpResult::Update(Err(DaosError::Transport(
                            "staging buffer too small".into(),
                        ))));
                        continue;
                    }
                    let epoch = match engine.next_epoch(&self.cont) {
                        Ok(e) => e,
                        Err(e) => {
                            results[i] = Some(ClientOpResult::Update(Err(e)));
                            continue;
                        }
                    };
                    match self.stage_update(fabric, now, job, data) {
                        Ok((at, payload)) => {
                            target_ops.push(TargetOp::Update {
                                now: at,
                                oid,
                                dkey,
                                akey,
                                kind,
                                epoch,
                                data: payload,
                            });
                            pending.push((i, None));
                        }
                        Err(e) => results[i] = Some(ClientOpResult::Update(Err(e))),
                    }
                }
                ClientOp::Fetch {
                    oid,
                    dkey,
                    akey,
                    kind,
                    epoch,
                    len,
                } => {
                    if len > self.jobs[job].buf_len {
                        results[i] = Some(ClientOpResult::Fetch(Err(DaosError::Transport(
                            "staging buffer too small".into(),
                        ))));
                        continue;
                    }
                    match self.stage_fetch(fabric, now, job) {
                        Ok(req_at) => {
                            target_ops.push(TargetOp::Fetch {
                                now: req_at,
                                oid,
                                dkey,
                                akey,
                                kind,
                                epoch,
                                len,
                            });
                            pending.push((i, Some(len)));
                        }
                        Err(e) => results[i] = Some(ClientOpResult::Fetch(Err(e))),
                    }
                }
            }
        }

        match engine.execute_batch(&self.cont, target_ops) {
            Ok(engine_results) => {
                for (&(slot, fetch_len), res) in pending.iter().zip(engine_results) {
                    results[slot] = Some(match res {
                        TargetOpResult::Update(Ok(persisted)) => {
                            ClientOpResult::Update(self.finish_update(fabric, job, persisted))
                        }
                        TargetOpResult::Update(Err(e)) => ClientOpResult::Update(Err(e)),
                        TargetOpResult::Fetch(Ok((data, ready))) => {
                            let len = fetch_len.expect("fetch pending entries carry a length");
                            ClientOpResult::Fetch(self.finish_fetch(fabric, job, data, ready, len))
                        }
                        TargetOpResult::Fetch(Err(e)) => ClientOpResult::Fetch(Err(e)),
                    });
                }
            }
            Err(e) => {
                // Whole-batch failure (container vanished between phases).
                for &(slot, fetch_len) in &pending {
                    results[slot] = Some(match fetch_len {
                        None => ClientOpResult::Update(Err(e.clone())),
                        Some(_) => ClientOpResult::Fetch(Err(e.clone())),
                    });
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every submitted op produced a result"))
            .collect()
    }
}

/// The object-I/O interface the DFS layer drives, leaving the namespace
/// code placement-agnostic: implemented directly by [`DaosClient`] (the
/// host-resident baseline) and by the DPU-offloaded client in `ros2-dpu`
/// (which wraps the same data-plane core with the host handoff, tenant QoS
/// admission, scoped-rkey refresh, and DPU-side checksumming).
///
/// Method signatures mirror the [`DaosClient`] inherent API exactly, so the
/// host path through a `&mut dyn ObjectClient` executes the identical code
/// it always has.
pub trait ObjectClient {
    /// Issues an OBJ_UPDATE from `job`; returns the client-visible commit
    /// instant.
    #[allow(clippy::too_many_arguments)]
    fn update(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError>;

    /// Issues an OBJ_FETCH from `job` reading `len` bytes at `epoch`.
    #[allow(clippy::too_many_arguments)]
    fn fetch(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError>;

    /// Submits a batch of independent ops from `job` as one fan-out;
    /// results come back in submission order.
    fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult>;

    /// Total data-plane operations issued.
    fn ops(&self) -> u64;
}

impl ObjectClient for DaosClient {
    fn update(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        DaosClient::update(self, fabric, engine, now, job, oid, dkey, akey, kind, data)
    }

    fn fetch(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        DaosClient::fetch(
            self, fabric, engine, now, job, oid, dkey, akey, kind, epoch, len,
        )
    }

    fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        engine: &mut DaosEngine,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        DaosClient::execute_batch(self, fabric, engine, now, job, ops)
    }

    fn ops(&self) -> u64 {
        DaosClient::ops(self)
    }
}

/// One client-side I/O in a [`DaosClient::execute_batch`] fan-out.
#[derive(Clone, Debug)]
pub enum ClientOp {
    /// An object update carrying its payload.
    Update {
        /// Object.
        oid: ObjectId,
        /// Distribution key.
        dkey: DKey,
        /// Attribute key.
        akey: AKey,
        /// Single value or array extent.
        kind: ValueKind,
        /// Payload.
        data: Bytes,
    },
    /// An object fetch of `len` bytes at `epoch`.
    Fetch {
        /// Object.
        oid: ObjectId,
        /// Distribution key.
        dkey: DKey,
        /// Attribute key.
        akey: AKey,
        /// Single value or array extent.
        kind: ValueKind,
        /// Read epoch.
        epoch: Epoch,
        /// Bytes to read.
        len: u64,
    },
}

/// The per-op outcome of a [`DaosClient::execute_batch`], in submission
/// order. Structurally mirrors [`TargetOpResult`] but is deliberately a
/// distinct type: these instants are client-visible completions (after the
/// response push/SEND), not the engine-side instants the inner type
/// carries, and the layers are free to diverge.
#[derive(Clone, Debug)]
pub enum ClientOpResult {
    /// Outcome of a [`ClientOp::Update`]: the client-visible commit
    /// instant.
    Update(Result<SimTime, DaosError>),
    /// Outcome of a [`ClientOp::Fetch`]: the data and the client-visible
    /// completion instant.
    Fetch(Result<(Bytes, SimTime), DaosError>),
}

impl ClientOpResult {
    /// Unwraps an update result (panics on a fetch result).
    pub fn into_update(self) -> Result<SimTime, DaosError> {
        match self {
            ClientOpResult::Update(r) => r,
            ClientOpResult::Fetch(_) => panic!("expected update result"),
        }
    }
    /// Unwraps a fetch result (panics on an update result).
    pub fn into_fetch(self) -> Result<(Bytes, SimTime), DaosError> {
        match self {
            ClientOpResult::Fetch(r) => r,
            ClientOpResult::Update(_) => panic!("expected fetch result"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ObjClass;
    use ros2_fabric::NodeSpec;
    use ros2_hw::{gbps, CpuComplement, DpuTcpRxModel, NicModel, NvmeModel};
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_spdk::BdevLayer;

    fn world(transport: Transport, client_is_dpu: bool) -> (Fabric, DaosEngine, DaosClient) {
        let client_spec = if client_is_dpu {
            NodeSpec {
                name: "dpu".into(),
                cpu: CpuComplement {
                    class: CoreClass::DpuArm,
                    cores: 16,
                },
                nic: NicModel::connectx7(),
                port_rate: gbps(100),
                mem_budget: 30 << 30,
                dpu_tcp_rx: Some(DpuTcpRxModel::bluefield3()),
            }
        } else {
            NodeSpec {
                name: "host".into(),
                cpu: CpuComplement {
                    class: CoreClass::HostX86,
                    cores: 48,
                },
                nic: NicModel::connectx6(),
                port_rate: gbps(100),
                mem_budget: 64 << 30,
                dpu_tcp_rx: None,
            }
        };
        let server_spec = NodeSpec {
            name: "storage".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 64,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 64 << 30,
            dpu_tcp_rx: None,
        };
        let mut fabric = Fabric::new(transport, vec![client_spec, server_spec], 5);
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        let mut engine = DaosEngine::new(
            "pool0",
            bdevs,
            256 << 20,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        engine.cont_create("cont0").unwrap();
        let client = DaosClient::connect(
            &mut fabric,
            NodeId(0),
            NodeId(1),
            "tenant",
            "cont0",
            2,
            4 << 20,
            MemoryDomain::HostDram,
            DaosCostModel::default_model(),
        )
        .unwrap();
        (fabric, engine, client)
    }

    fn do_round_trip(transport: Transport) {
        let (mut fabric, mut engine, mut client) = world(transport, false);
        let oid = ObjectId::new(ObjClass::Sx, 1);
        let data = Bytes::from(vec![0x3C; 1 << 20]);
        let done = client
            .update(
                &mut fabric,
                &mut engine,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                data.clone(),
            )
            .unwrap();
        let (back, _) = client
            .fetch(
                &mut fabric,
                &mut engine,
                done,
                1,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                1 << 20,
            )
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(client.ops(), 2);
    }

    #[test]
    fn tcp_round_trip() {
        do_round_trip(Transport::Tcp);
    }

    #[test]
    fn rdma_round_trip() {
        do_round_trip(Transport::Rdma);
    }

    #[test]
    fn rdma_fetch_is_faster_from_dpu_than_tcp_fetch() {
        // The headline §4.4 comparison at the op level.
        let run = |transport| {
            let (mut fabric, mut engine, mut client) = world(transport, true);
            let oid = ObjectId::new(ObjClass::Sx, 1);
            let data = Bytes::from(vec![1u8; 1 << 20]);
            let done = client
                .update(
                    &mut fabric,
                    &mut engine,
                    SimTime::ZERO,
                    0,
                    oid,
                    DKey::from_u64(0),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    data,
                )
                .unwrap();
            let start = done;
            let (_, at) = client
                .fetch(
                    &mut fabric,
                    &mut engine,
                    start,
                    0,
                    oid,
                    DKey::from_u64(0),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    Epoch::LATEST,
                    1 << 20,
                )
                .unwrap();
            at.saturating_since(start)
        };
        let tcp = run(Transport::Tcp);
        let rdma = run(Transport::Rdma);
        assert!(rdma < tcp, "DPU rdma {rdma} !< DPU tcp {tcp}");
    }

    #[test]
    fn dpu_client_cpu_is_slower_but_functional() {
        let (mut fabric, mut engine, mut client) = world(Transport::Rdma, true);
        assert_eq!(client.jobs(), 2);
        let oid = ObjectId::new(ObjClass::S1, 3);
        let done = client
            .update(
                &mut fabric,
                &mut engine,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Bytes::from_static(b"metadata"),
            )
            .unwrap();
        let (back, _) = client
            .fetch(
                &mut fabric,
                &mut engine,
                done,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Epoch::LATEST,
                8,
            )
            .unwrap();
        assert_eq!(&back[..], b"metadata");
    }

    #[test]
    fn oversized_io_rejected_before_wire() {
        let (mut fabric, mut engine, mut client) = world(Transport::Rdma, false);
        let oid = ObjectId::new(ObjClass::S1, 3);
        let err = client
            .update(
                &mut fabric,
                &mut engine,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Bytes::from(vec![0u8; 8 << 20]),
            )
            .unwrap_err();
        assert!(matches!(err, DaosError::Transport(_)));
    }

    #[test]
    fn checksum_error_propagates_to_client() {
        let (mut fabric, mut engine, mut client) = world(Transport::Rdma, false);
        let oid = ObjectId::new(ObjClass::Sx, 1);
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        let done = client
            .update(
                &mut fabric,
                &mut engine,
                SimTime::ZERO,
                0,
                oid,
                d.clone(),
                a.clone(),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![5u8; 64 << 10]),
            )
            .unwrap();
        assert!(engine.corrupt_newest_extent(oid, &d, &a));
        let err = client
            .fetch(
                &mut fabric,
                &mut engine,
                done,
                0,
                oid,
                d,
                a,
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                64 << 10,
            )
            .unwrap_err();
        assert_eq!(err, DaosError::ChecksumMismatch);
    }
}
