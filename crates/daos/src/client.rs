//! The DAOS client (libdaos analogue) — the component ROS2 relocates from
//! the host CPU to the BlueField-3 (§3.2).
//!
//! The client is placement-agnostic: it runs on whichever fabric node it is
//! constructed for, and every CPU cost it pays is scaled to that node's
//! core class. Each job (FIO thread) owns one channel *per cluster engine*
//! — a sub-channel of the node's pooled per-engine connection, so QP state
//! stays O(engines) — plus a serialized client core and a registered
//! staging buffer:
//!
//! * **RDMA**: updates announce staged data and the *server* pulls with
//!   RDMA READ; fetches are *pushed* by the server with RDMA WRITE into the
//!   job's buffer. The client CPU never touches payload bytes.
//! * **TCP**: payloads travel inline in the RPC messages, paying per-byte
//!   CPU on both ends (and the DPU receive-path penalty when the client is
//!   the SmartNIC).
//!
//! Routing lives here (client-side, so the DPU-offloaded client inherits
//! it without host involvement): each op resolves its replica set from the
//! cluster's pool map — updates fan out to every healthy replica (commit =
//! the last replica's ack), fetches go to the leader and fail over to a
//! surviving replica while an engine is down. With one engine and RF = 1
//! the route is always slot 0 and every phase runs the exact pre-cluster
//! sequence — the pinned host-placement path.

use bytes::{Bytes, BytesMut};
use ros2_buf::zero_bytes;
use ros2_fabric::{ConnId, Dir, Fabric, FabricError};
use ros2_hw::{CoreClass, Transport};
use ros2_sim::{ResourceStats, ServerPool, SimDuration, SimTime};
use ros2_verbs::{AccessFlags, Expiry, MemAddr, MemoryDomain, MrId, NodeId, PdId, RKey};

use crate::cluster::{EngineCluster, MapSnapshot};
use crate::engine::{TargetOp, TargetOpResult, ValueKind};
use crate::pipeline::{RetryPolicy, RetryStats};
use crate::types::{AKey, DKey, DaosCostModel, DaosError, Epoch, ObjectId};

/// RPC descriptor size on the wire (OBJ_UPDATE/OBJ_FETCH header).
const RPC_DESC: usize = 128;
/// Completion message size.
const RPC_DONE: usize = 16;

/// The zeroed OBJ_UPDATE/OBJ_FETCH descriptor: a refcounted slice of the
/// process-wide zero pool, so issuing an RPC never heap-allocates the
/// header (the seed built a fresh `Vec` per RPC on every path).
fn rpc_desc() -> Bytes {
    zero_bytes(RPC_DESC)
}

/// The zeroed completion message (same shared pool).
fn rpc_done() -> Bytes {
    zero_bytes(RPC_DONE)
}

fn map_fabric(e: FabricError) -> DaosError {
    DaosError::Transport(format!("{e:?}"))
}

struct ClientJob {
    /// One connection per cluster engine slot (index-aligned with the pool
    /// map).
    conns: Vec<ConnId>,
    core: ServerPool,
    buf: MemAddr,
    buf_len: u64,
    rkey: Option<RKey>,
    /// The MR handle behind `rkey` (RDMA only), kept so the registration
    /// can be replaced when a scoped rkey nears expiry.
    mr: Option<MrId>,
}

/// Provenance of one completed fetch, surfaced by
/// [`DaosClient::fetch_with_meta`]: which engine served the read, whether
/// the route was degraded (a replica is down and unrebuilt), and the map
/// revision / container commit-epoch horizon observed at completion.
/// A read cache fills only from `degraded == false` completions and
/// stamps entries with `{map_version, commit_epoch}`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FetchMeta {
    /// Engine slot that served the fetch.
    pub eng: usize,
    /// Whether the replica set had lost a member to an unrebuilt kill.
    pub degraded: bool,
    /// Pool-map revision the route resolved under.
    pub map_version: u64,
    /// The container's committed-epoch high-water mark at completion.
    pub commit_epoch: Epoch,
}

/// A connected DAOS client bound to one container.
pub struct DaosClient {
    node: NodeId,
    servers: Vec<NodeId>,
    cont: String,
    pd: PdId,
    jobs: Vec<ClientJob>,
    model: DaosCostModel,
    class: CoreClass,
    transport: Transport,
    ops: u64,
    /// When set, [`Self::execute_pipelined`] (and any [`OpRing`] driven
    /// against this client) drains each op to completion before the next
    /// is submitted, on the exact legacy serial cost path — the
    /// equivalence baseline.
    ///
    /// [`OpRing`]: crate::pipeline::OpRing
    force_serial_pipeline: bool,
    /// The client's cached pool-map snapshot — the *only* routing source
    /// for the pipelined ring, so membership changes genuinely race
    /// in-flight ops. `None` until first use (bootstrapped from the
    /// cluster, modeling the `PoolConnect` handshake's map download).
    map_cache: Option<MapSnapshot>,
    /// An asynchronously *delivered* RAS map push that has not arrived
    /// yet: `(delivery instant, snapshot)`. Applied by
    /// [`Self::poll_map`] once the clock passes the instant — the
    /// delivery delay is a fault-injectable parameter, not zero.
    pending_map: Option<(SimTime, MapSnapshot)>,
    /// Recovery-ladder counters for the pipelined ring.
    pub(crate) retry: RetryStats,
    /// Deadlines / backoff / budget for the ring's recovery ladder.
    retry_policy: RetryPolicy,
    /// The instant the first re-staged leg completed successfully —
    /// time-to-first-successful-retry, the headline chaos metric.
    first_retry_ok: Option<SimTime>,
}

impl DaosClient {
    /// Connects `jobs` client jobs from `node` to the engine on `server`,
    /// staging through `buf_len`-byte buffers in `domain` (DPU DRAM for the
    /// prototype; [`MemoryDomain::GpuHbm`] for the GPUDirect extension).
    /// Staging MRs are registered with [`Expiry::Never`]; the DPU tenant
    /// manager's scoped-rkey discipline uses [`Self::connect_scoped`].
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        fabric: &mut Fabric,
        node: NodeId,
        server: NodeId,
        tenant: &str,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
    ) -> Result<Self, DaosError> {
        Self::connect_scoped(
            fabric,
            node,
            server,
            tenant,
            cont,
            jobs,
            buf_len,
            domain,
            model,
            Expiry::Never,
        )
    }

    /// [`Self::connect`] against every engine of a cluster: each job opens
    /// one connection per storage node (slot-aligned with the pool map) so
    /// the client can route per-object without reconnecting.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_multi(
        fabric: &mut Fabric,
        node: NodeId,
        servers: &[NodeId],
        tenant: &str,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
    ) -> Result<Self, DaosError> {
        Self::connect_scoped_multi(
            fabric,
            node,
            servers,
            tenant,
            cont,
            jobs,
            buf_len,
            domain,
            model,
            Expiry::Never,
        )
    }

    /// [`Self::connect`] with every staging MR registered under `expiry`
    /// from the outset — no window where an unscoped rkey exists.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_scoped(
        fabric: &mut Fabric,
        node: NodeId,
        server: NodeId,
        tenant: &str,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
        expiry: Expiry,
    ) -> Result<Self, DaosError> {
        Self::connect_scoped_multi(
            fabric,
            node,
            &[server],
            tenant,
            cont,
            jobs,
            buf_len,
            domain,
            model,
            expiry,
        )
    }

    /// The fully general constructor: scoped staging MRs, N storage nodes.
    ///
    /// Connection state is pooled per `(client, engine)`: one real
    /// connection (QP pair) is opened per storage node and every job gets
    /// its own *sub-channel* of it ([`Fabric::open_subchannel`]), so RC
    /// connection state on the NIC stays O(engines) per client node
    /// instead of O(jobs × engines). Job 0 uses the root connections
    /// directly, which keeps single-job configs on the exact historical
    /// fabric-call sequence; later jobs' sub-channels carry their own
    /// serialized per-socket stages, so their timing is identical to the
    /// dedicated connections they replace.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_scoped_multi(
        fabric: &mut Fabric,
        node: NodeId,
        servers: &[NodeId],
        tenant: &str,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
        expiry: Expiry,
    ) -> Result<Self, DaosError> {
        if servers.is_empty() {
            return Err(DaosError::Transport("no storage nodes".into()));
        }
        let class = fabric.node(node).class();
        let transport = fabric.transport();
        let pd = fabric.rdma_mut(node).alloc_pd(tenant);
        let server_pds: Vec<PdId> = servers
            .iter()
            .map(|&s| fabric.rdma_mut(s).alloc_pd(format!("daos-engine:{tenant}")))
            .collect();
        let mut out_jobs = Vec::with_capacity(jobs);
        let mut root_conns: Vec<ConnId> = Vec::new();
        for j in 0..jobs {
            let conns = if j == 0 {
                root_conns = servers
                    .iter()
                    .zip(&server_pds)
                    .map(|(&server, &server_pd)| {
                        fabric
                            .connect(node, server, pd, server_pd)
                            .map_err(map_fabric)
                    })
                    .collect::<Result<Vec<ConnId>, DaosError>>()?;
                root_conns.clone()
            } else {
                root_conns
                    .iter()
                    .map(|&root| fabric.open_subchannel(root).map_err(map_fabric))
                    .collect::<Result<Vec<ConnId>, DaosError>>()?
            };
            let buf = fabric
                .rdma_mut(node)
                .alloc_buffer(buf_len, domain)
                .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
            let (mr, rkey) = match transport {
                Transport::Rdma => {
                    let (mr, rkey, _) = fabric
                        .rdma_mut(node)
                        .reg_mr(pd, buf, buf_len, AccessFlags::remote_rw(), expiry)
                        .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
                    (Some(mr), Some(rkey))
                }
                Transport::Tcp => (None, None),
            };
            out_jobs.push(ClientJob {
                conns,
                core: ServerPool::new(1),
                buf,
                buf_len,
                rkey,
                mr,
            });
        }
        Ok(DaosClient {
            node,
            servers: servers.to_vec(),
            cont: cont.into(),
            pd,
            jobs: out_jobs,
            model,
            class,
            transport,
            ops: 0,
            force_serial_pipeline: false,
            map_cache: None,
            pending_map: None,
            retry: RetryStats::default(),
            retry_policy: RetryPolicy::default(),
            first_retry_ok: None,
        })
    }

    /// Forces [`Self::execute_pipelined`] onto the serial drain: each op
    /// runs start-to-finish on the exact [`Self::update`]/[`Self::fetch`]
    /// cost path before the next is submitted. The pipelined ring must be
    /// functionally bit-identical to this mode (same results, same
    /// deterministic counters) — asserted by `tests/pipeline_equivalence`,
    /// the same discipline as the engine's `set_force_serial_batch`.
    pub fn set_force_serial_pipeline(&mut self, on: bool) {
        self.force_serial_pipeline = on;
    }

    /// Whether the forced-serial pipeline drain is active.
    pub fn force_serial_pipeline(&self) -> bool {
        self.force_serial_pipeline
    }

    /// Installs a map snapshot into the cache if it is newer than what the
    /// client holds (out-of-order deliveries are ignored). A pending
    /// delayed delivery superseded by this snapshot is dropped.
    pub fn sync_map(&mut self, snap: MapSnapshot) {
        let newer = self
            .map_cache
            .as_ref()
            .is_none_or(|c| snap.version() > c.version());
        if newer {
            if let Some((_, p)) = &self.pending_map {
                if p.version() <= snap.version() {
                    self.pending_map = None;
                }
            }
            self.map_cache = Some(snap);
        }
    }

    /// Schedules an asynchronous RAS map delivery: `snap` becomes visible
    /// to the client only once the clock reaches `at` (see
    /// [`Self::poll_map`]). If a delivery is already pending the newer
    /// snapshot wins — RAS streams are cumulative, the last revision
    /// subsumes the rest.
    pub fn deliver_map(&mut self, at: SimTime, snap: MapSnapshot) {
        match &self.pending_map {
            Some((_, p)) if p.version() >= snap.version() => {}
            _ => self.pending_map = Some((at, snap)),
        }
    }

    /// Applies any due delayed delivery and bootstraps the cache on first
    /// use (the `PoolConnect` handshake downloads the then-current map).
    /// Called by the ring at every submission instant.
    pub(crate) fn poll_map(&mut self, now: SimTime, cluster: &EngineCluster) {
        if let Some((at, _)) = &self.pending_map {
            if now >= *at {
                let (_, snap) = self.pending_map.take().expect("pending delivery");
                self.sync_map(snap);
            }
        }
        if self.map_cache.is_none() {
            self.map_cache = Some(cluster.snapshot_map());
        }
    }

    /// The cached snapshot. Panics if [`Self::poll_map`] has never run —
    /// the ring always polls before routing.
    pub(crate) fn cached_map(&self) -> &MapSnapshot {
        self.map_cache.as_ref().expect("map cache bootstrapped")
    }

    /// The submission-instant routing view a read-cache probe needs:
    /// applies any due delayed RAS delivery (bootstrapping the cached map
    /// on first use, exactly as a ring submission would), then resolves
    /// `oid` against the **cached** snapshot. Returns the leader slot (if
    /// any healthy replica exists), whether the route is degraded, and
    /// the cached map revision. Pure with respect to cluster accounting —
    /// no degraded-fetch counter moves until an actual fetch routes.
    pub fn probe_route(
        &mut self,
        now: SimTime,
        cluster: &EngineCluster,
        oid: &ObjectId,
    ) -> (Option<usize>, bool, u64) {
        self.poll_map(now, cluster);
        let snap = self.cached_map();
        let (set, degraded) = snap.route(oid);
        (set.leader(), degraded, snap.version())
    }

    /// The cached map revision, if a snapshot has been installed.
    pub fn cache_version(&self) -> Option<u64> {
        self.map_cache.as_ref().map(|c| c.version())
    }

    /// The recovery ladder's reactive refresh — the `MapQuery` control
    /// round-trip. Always returns the authoritative current state and
    /// cancels any pending delayed delivery (it can only be older).
    pub(crate) fn refresh_map(&mut self, cluster: &EngineCluster) {
        self.retry.map_refreshes += 1;
        self.pending_map = None;
        self.map_cache = Some(cluster.snapshot_map());
    }

    /// Recovery-ladder counters accumulated by the pipelined ring.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry
    }

    /// Replaces the ring's recovery-ladder policy (deadline, backoff
    /// bounds, retry budget, refresh RTT).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The active recovery-ladder policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// The instant the first re-staged leg completed successfully, if any
    /// retry has succeeded — time-to-first-successful-retry.
    pub fn first_successful_retry(&self) -> Option<SimTime> {
        self.first_retry_ok
    }

    /// Records a successful retry completion (the ring reports the
    /// earliest one).
    pub(crate) fn note_retry_success(&mut self, at: SimTime) {
        self.first_retry_ok = Some(match self.first_retry_ok {
            Some(t) => t.min(at),
            None => at,
        });
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The first storage-server node this client targets.
    pub fn server(&self) -> NodeId {
        self.servers[0]
    }

    /// Every storage node, slot-aligned with the cluster's pool map.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The client's protection domain (its tenant boundary).
    pub fn pd(&self) -> PdId {
        self.pd
    }

    /// Number of jobs.
    pub fn jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Operations issued.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The container this client is bound to.
    pub fn container(&self) -> &str {
        &self.cont
    }

    /// Resets per-job core timing to t=0.
    pub fn reset_timing(&mut self) {
        for j in &mut self.jobs {
            j.core.reset_timing();
        }
    }

    /// Aggregate booking / fast-path counters over the per-job client
    /// cores.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for j in &self.jobs {
            total.merge(j.core.stats());
        }
        total
    }

    /// Replaces `job`'s staging registration with one that expires at
    /// `expiry` — the scoped-rkey discipline the DPU tenant manager issues.
    /// A no-op on TCP transports (no registered memory on the wire path).
    ///
    /// The old MR is deregistered first, so a stolen copy of the previous
    /// rkey dies with the swap; in-flight one-sided ops that land after the
    /// swap fail with `InvalidRkey`/`ExpiredRkey` at the NIC, exactly like
    /// hardware.
    pub fn set_mr_expiry(
        &mut self,
        fabric: &mut Fabric,
        job: usize,
        expiry: Expiry,
    ) -> Result<(), DaosError> {
        if self.transport != Transport::Rdma {
            return Ok(());
        }
        let (buf, buf_len) = (self.jobs[job].buf, self.jobs[job].buf_len);
        if let Some(mr) = self.jobs[job].mr.take() {
            fabric
                .rdma_mut(self.node)
                .dereg_mr(mr)
                .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
        }
        let (mr, rkey, _) = fabric
            .rdma_mut(self.node)
            .reg_mr(self.pd, buf, buf_len, AccessFlags::remote_rw(), expiry)
            .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
        self.jobs[job].mr = Some(mr);
        self.jobs[job].rkey = Some(rkey);
        Ok(())
    }

    /// A client must hold one connection per cluster slot to route; a
    /// mismatch (client connected to a subset of the pool) is a
    /// misconfiguration surfaced as a typed error, not an index panic.
    pub(crate) fn check_cluster(&self, cluster: &EngineCluster) -> Result<(), DaosError> {
        let conns = self.jobs.first().map_or(0, |j| j.conns.len());
        if conns < cluster.len() {
            return Err(DaosError::Transport(format!(
                "client connected to {conns} engines but the pool has {}",
                cluster.len()
            )));
        }
        Ok(())
    }

    fn client_cpu(&mut self, now: SimTime, job: usize) -> SimTime {
        let mut cost = self.class.scale(self.model.client_per_op);
        if self.class == CoreClass::DpuArm {
            cost = cost.mul_f64(self.model.dpu_client_overhead);
        }
        self.jobs[job].core.submit(now, cost).finish
    }

    /// The pipelined client-CPU booking: only the submission fraction of
    /// `client_per_op` occupies the job core (returned instant); the
    /// completion fraction — EQ poll / CQ reap, amortized across in-flight
    /// ops by batched reaping — is returned as a duration the ring charges
    /// as latency at retire. On DPU ARM cores the `dpu_client_overhead`
    /// penalty models exactly that synchronous poll path, so it rides on
    /// the completion portion and stops binding throughput once the ring
    /// overlaps it.
    pub(crate) fn client_cpu_split(&mut self, now: SimTime, job: usize) -> (SimTime, SimDuration) {
        let base = self.class.scale(self.model.client_per_op);
        let frac = self.model.client_completion_frac;
        let submit = base.mul_f64(1.0 - frac);
        let mut completion = base.mul_f64(frac);
        if self.class == CoreClass::DpuArm {
            completion += base.mul_f64(self.model.dpu_client_overhead - 1.0);
        }
        (self.jobs[job].core.submit(now, submit).finish, completion)
    }

    /// Staging-buffer capacity of `job`.
    pub(crate) fn job_buf_len(&self, job: usize) -> u64 {
        self.jobs[job].buf_len
    }

    /// Counts `n` data-plane ops (the ring submits account here so
    /// [`Self::ops`] agrees with the serial drain).
    pub(crate) fn bump_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Phase A of an update: client CPU, payload staging, descriptor send
    /// and (RDMA) the pull by the engine in cluster slot `eng`. Returns
    /// the instant the data is resident server-side plus the server's
    /// payload handle.
    fn stage_update(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        job: usize,
        eng: usize,
        data: Bytes,
    ) -> Result<(SimTime, Bytes), DaosError> {
        let t_cpu = self.client_cpu(now, job);
        self.stage_update_from(fabric, t_cpu, job, eng, data)
    }

    /// [`Self::stage_update`] with the client-CPU grant already booked:
    /// stages the payload and runs the descriptor/pull exchange starting
    /// at `t_cpu`. Shared by the serial path and the pipelined ring (which
    /// books the split CPU cost instead).
    pub(crate) fn stage_update_from(
        &mut self,
        fabric: &mut Fabric,
        t_cpu: SimTime,
        job: usize,
        eng: usize,
        data: Bytes,
    ) -> Result<(SimTime, Bytes), DaosError> {
        let len = data.len() as u64;
        let conn = self.jobs[job].conns[eng];
        match self.transport {
            Transport::Rdma => {
                // Stage locally (zero-copy: the registered buffer adopts
                // the caller's handle); descriptor announces it; server
                // pulls.
                fabric
                    .rdma_mut(self.node)
                    .write_local_bytes(self.jobs[job].buf, &data)
                    .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
                let desc = fabric
                    .send(t_cpu, conn, Dir::AtoB, rpc_desc())
                    .map_err(map_fabric)?;
                let pull = fabric
                    .rdma_read(
                        desc.at,
                        conn,
                        Dir::BtoA,
                        self.jobs[job].rkey.expect("rdma job has rkey"),
                        self.jobs[job].buf,
                        len,
                    )
                    .map_err(map_fabric)?;
                Ok((pull.at, pull.data.expect("pull returns data")))
            }
            Transport::Tcp => {
                // Descriptor + inline payload in one stream write.
                let mut msg = BytesMut::with_capacity(RPC_DESC + data.len());
                msg.extend_from_slice(&[0u8; RPC_DESC]);
                msg.extend_from_slice(&data);
                let d = fabric
                    .send(t_cpu, conn, Dir::AtoB, msg.freeze())
                    .map_err(map_fabric)?;
                Ok((d.at, d.data.expect("tcp carries data").slice(RPC_DESC..)))
            }
        }
    }

    /// Phase C of an update: engine `eng`'s completion SEND at
    /// `persisted`.
    pub(crate) fn finish_update(
        &mut self,
        fabric: &mut Fabric,
        job: usize,
        eng: usize,
        persisted: SimTime,
    ) -> Result<SimTime, DaosError> {
        let done = fabric
            .send(persisted, self.jobs[job].conns[eng], Dir::BtoA, rpc_done())
            .map_err(map_fabric)?;
        Ok(done.at)
    }

    /// Phase A of a fetch: client CPU plus the descriptor send to engine
    /// `eng`. Returns the instant the request reaches the server.
    fn stage_fetch(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        job: usize,
        eng: usize,
    ) -> Result<SimTime, DaosError> {
        let t_cpu = self.client_cpu(now, job);
        self.stage_fetch_from(fabric, t_cpu, job, eng)
    }

    /// [`Self::stage_fetch`] with the client-CPU grant already booked.
    pub(crate) fn stage_fetch_from(
        &mut self,
        fabric: &mut Fabric,
        t_cpu: SimTime,
        job: usize,
        eng: usize,
    ) -> Result<SimTime, DaosError> {
        let conn = self.jobs[job].conns[eng];
        let req = fabric
            .send(t_cpu, conn, Dir::AtoB, rpc_desc())
            .map_err(map_fabric)?;
        Ok(req.at)
    }

    /// Phase C of a fetch: (RDMA) engine `eng`'s push into the job's
    /// registered buffer plus the completion SEND, or (TCP) the inline
    /// response.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_fetch(
        &mut self,
        fabric: &mut Fabric,
        job: usize,
        eng: usize,
        data: Bytes,
        ready: SimTime,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        let conn = self.jobs[job].conns[eng];
        match self.transport {
            Transport::Rdma => {
                let push = fabric
                    .rdma_write(
                        ready,
                        conn,
                        Dir::BtoA,
                        self.jobs[job].rkey.expect("rdma job has rkey"),
                        self.jobs[job].buf,
                        data,
                    )
                    .map_err(map_fabric)?;
                let done = fabric
                    .send(push.at, conn, Dir::BtoA, rpc_done())
                    .map_err(map_fabric)?;
                let landed = fabric
                    .rdma_mut(self.node)
                    .read_local(self.jobs[job].buf, len as usize)
                    .map_err(|e| DaosError::Transport(format!("{e:?}")))?;
                Ok((landed, done.at))
            }
            Transport::Tcp => {
                let d = fabric
                    .send(ready, conn, Dir::BtoA, data)
                    .map_err(map_fabric)?;
                Ok((d.data.expect("tcp carries data"), d.at))
            }
        }
    }

    /// Issues an OBJ_UPDATE from `job`, fanned out to every healthy
    /// replica of `oid` (the commit instant is the last replica's ack, so
    /// a committed update is readable from any replica). Returns the
    /// commit instant.
    ///
    /// Identical to a one-op [`Self::execute_batch`] — both run the same
    /// stage/execute/finish phases (asserted by the batch equivalence
    /// suite) — without the batch bookkeeping.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        self.ops += 1;
        self.check_cluster(cluster)?;
        if data.len() as u64 > self.jobs[job].buf_len {
            return Err(DaosError::Transport("staging buffer too small".into()));
        }
        let set = cluster.route_update(&oid);
        if set.is_empty() {
            return Err(DaosError::Transport("no healthy replica".into()));
        }
        let epoch = cluster.next_epoch(&self.cont)?;
        let mut done: Option<SimTime> = None;
        for eng in set.iter() {
            let (data_at_server, payload) =
                self.stage_update(fabric, now, job, eng, data.clone())?;
            let persisted = cluster.engine_mut(eng).update(
                data_at_server,
                &self.cont,
                oid,
                dkey.clone(),
                akey.clone(),
                kind,
                epoch,
                payload,
            )?;
            let acked = self.finish_update(fabric, job, eng, persisted)?;
            done = Some(done.map_or(acked, |d| d.max(acked)));
        }
        Ok(done.expect("non-empty replica set"))
    }

    /// Issues an OBJ_FETCH from `job` reading `len` bytes at `epoch`,
    /// routed to `oid`'s replica leader — or, while the leader's engine is
    /// down, to the first surviving replica (a degraded read).
    #[allow(clippy::too_many_arguments)]
    pub fn fetch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        self.fetch_with_meta(fabric, cluster, now, job, oid, dkey, akey, kind, epoch, len)
            .map(|(data, at, _)| (data, at))
    }

    /// [`Self::fetch`] plus the completion's provenance ([`FetchMeta`]):
    /// which engine served it, whether the route was degraded, and the
    /// map revision / commit-epoch horizon stamped on the reply. Callers
    /// that maintain a read cache (the DPU lane) need exactly this to
    /// decide whether the completion is safe to fill from. Booking and
    /// accounting are identical to [`Self::fetch`].
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_with_meta(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime, FetchMeta), DaosError> {
        self.ops += 1;
        self.check_cluster(cluster)?;
        if len > self.jobs[job].buf_len {
            return Err(DaosError::Transport("staging buffer too small".into()));
        }
        let (set, degraded) = cluster.route_fetch_meta(&oid);
        let eng = set
            .leader()
            .ok_or_else(|| DaosError::Transport("no healthy replica".into()))?;
        let req_at = self.stage_fetch(fabric, now, job, eng)?;
        let (data, ready) = cluster
            .engine_mut(eng)
            .fetch(req_at, &self.cont, oid, &dkey, &akey, kind, epoch, len)?;
        let meta = FetchMeta {
            eng,
            degraded,
            map_version: cluster.map().version(),
            commit_epoch: cluster.container_epoch(&self.cont),
        };
        self.finish_fetch(fabric, job, eng, data, ready, len)
            .map(|(data, at)| (data, at, meta))
    }

    /// Submits a whole queue's worth of independent ops from `job` as one
    /// fan-out: every descriptor/staging exchange runs first (in
    /// submission order, updates staged once per replica), each involved
    /// engine executes its slice of the batch across its shards in one
    /// [`crate::DaosEngine::execute_batch`] call, and completions drain
    /// back — one engine round-trip per engine instead of one per op. A
    /// replicated update's slot resolves to the last replica's ack (or the
    /// first error).
    ///
    /// Results come back in submission order. Per-op failures (oversized
    /// I/O, missing records) are reported in that op's slot and do not
    /// abort the rest of the batch.
    pub fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        if let Err(e) = self.check_cluster(cluster) {
            self.ops += ops.len() as u64;
            return whole_batch_error(&ops, e);
        }
        let mut results: Vec<Option<ClientOpResult>> = (0..ops.len()).map(|_| None).collect();
        // Per engine slot: staged target ops plus (client-op slot, fetch
        // read-back length), submission order preserved within a slot.
        let mut buckets: Vec<EngineBucket> = (0..cluster.len())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();

        for (i, op) in ops.into_iter().enumerate() {
            self.ops += 1;
            match op {
                ClientOp::Update {
                    oid,
                    dkey,
                    akey,
                    kind,
                    data,
                } => {
                    if data.len() as u64 > self.jobs[job].buf_len {
                        results[i] = Some(ClientOpResult::Update(Err(DaosError::Transport(
                            "staging buffer too small".into(),
                        ))));
                        continue;
                    }
                    let set = cluster.route_update(&oid);
                    if set.is_empty() {
                        results[i] = Some(ClientOpResult::Update(Err(DaosError::Transport(
                            "no healthy replica".into(),
                        ))));
                        continue;
                    }
                    let epoch = match cluster.next_epoch(&self.cont) {
                        Ok(e) => e,
                        Err(e) => {
                            results[i] = Some(ClientOpResult::Update(Err(e)));
                            continue;
                        }
                    };
                    for eng in set.iter() {
                        match self.stage_update(fabric, now, job, eng, data.clone()) {
                            Ok((at, payload)) => {
                                buckets[eng].0.push(TargetOp::Update {
                                    now: at,
                                    oid,
                                    dkey: dkey.clone(),
                                    akey: akey.clone(),
                                    kind,
                                    epoch,
                                    data: payload,
                                });
                                buckets[eng].1.push((i, None));
                            }
                            Err(e) => {
                                merge_slot(&mut results[i], ClientOpResult::Update(Err(e)));
                                break;
                            }
                        }
                    }
                }
                ClientOp::Fetch {
                    oid,
                    dkey,
                    akey,
                    kind,
                    epoch,
                    len,
                } => {
                    if len > self.jobs[job].buf_len {
                        results[i] = Some(ClientOpResult::Fetch(Err(DaosError::Transport(
                            "staging buffer too small".into(),
                        ))));
                        continue;
                    }
                    let Some(eng) = cluster.route_fetch(&oid).leader() else {
                        results[i] = Some(ClientOpResult::Fetch(Err(DaosError::Transport(
                            "no healthy replica".into(),
                        ))));
                        continue;
                    };
                    match self.stage_fetch(fabric, now, job, eng) {
                        Ok(req_at) => {
                            buckets[eng].0.push(TargetOp::Fetch {
                                now: req_at,
                                oid,
                                dkey,
                                akey,
                                kind,
                                epoch,
                                len,
                            });
                            buckets[eng].1.push((i, Some(len)));
                        }
                        Err(e) => results[i] = Some(ClientOpResult::Fetch(Err(e))),
                    }
                }
            }
        }

        for (eng, (target_ops, pending)) in buckets.into_iter().enumerate() {
            if pending.is_empty() {
                continue;
            }
            match cluster
                .engine_mut(eng)
                .execute_batch(&self.cont, target_ops)
            {
                Ok(engine_results) => {
                    for (&(slot, fetch_len), res) in pending.iter().zip(engine_results) {
                        let r = match res {
                            TargetOpResult::Update(Ok(persisted)) => ClientOpResult::Update(
                                self.finish_update(fabric, job, eng, persisted),
                            ),
                            TargetOpResult::Update(Err(e)) => ClientOpResult::Update(Err(e)),
                            TargetOpResult::Fetch(Ok((data, ready))) => {
                                let len = fetch_len.expect("fetch pending entries carry a length");
                                ClientOpResult::Fetch(
                                    self.finish_fetch(fabric, job, eng, data, ready, len),
                                )
                            }
                            TargetOpResult::Fetch(Err(e)) => ClientOpResult::Fetch(Err(e)),
                        };
                        merge_slot(&mut results[slot], r);
                    }
                }
                Err(e) => {
                    // Whole-batch failure (container vanished between
                    // phases).
                    for &(slot, fetch_len) in &pending {
                        let r = match fetch_len {
                            None => ClientOpResult::Update(Err(e.clone())),
                            Some(_) => ClientOpResult::Fetch(Err(e.clone())),
                        };
                        merge_slot(&mut results[slot], r);
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every submitted op produced a result"))
            .collect()
    }

    /// Runs `ops` through the submission/completion pipeline: every op is
    /// submitted into an [`OpRing`] (epoch allocated, route resolved,
    /// staging legs booked) before any completion is reaped, engine legs
    /// execute as the ring drains, and completions retire in completion
    /// order — results still come back in submission order for callers
    /// that stitch stripes. Under
    /// [`Self::set_force_serial_pipeline`] each op instead drains fully on
    /// the legacy serial cost path before the next submits, bit-identical
    /// to a [`Self::update`]/[`Self::fetch`] loop.
    ///
    /// [`OpRing`]: crate::pipeline::OpRing
    pub fn execute_pipelined(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        let mut ring = crate::pipeline::OpRing::new(job, ops.len().max(1));
        for op in ops {
            ring.submit(self, fabric, cluster, now, op);
        }
        ring.drain(self, fabric, cluster)
    }
}

/// One engine's slice of a batch fan-out: its staged target ops plus
/// (client-op slot, fetch read-back length) bookkeeping.
type EngineBucket = (Vec<TargetOp>, Vec<(usize, Option<u64>)>);

/// Maps a whole-batch precondition failure onto every op in the batch
/// (shared by the host client and the DPU-offloaded client's preamble).
pub fn whole_batch_error(ops: &[ClientOp], e: DaosError) -> Vec<ClientOpResult> {
    ops.iter()
        .map(|op| match op {
            ClientOp::Update { .. } => ClientOpResult::Update(Err(e.clone())),
            ClientOp::Fetch { .. } => ClientOpResult::Fetch(Err(e.clone())),
        })
        .collect()
}

/// Folds a replica's outcome into its client-op slot: a fetch is routed to
/// exactly one engine, so the first result stands; a replicated update
/// commits at the *last* replica's ack, and any replica's error surfaces.
/// When several replicas fail with different errors, *which* error is
/// reported is unspecified (the batch path merges in engine-slot order,
/// the serial path stops at the first replica-set member) — the Ok/Err
/// outcome itself is identical on both paths.
fn merge_slot(slot: &mut Option<ClientOpResult>, new: ClientOpResult) {
    *slot = Some(match (slot.take(), new) {
        (None, r) => r,
        (Some(ClientOpResult::Update(prev)), ClientOpResult::Update(next)) => {
            ClientOpResult::Update(match (prev, next) {
                (Ok(a), Ok(b)) => Ok(a.max(b)),
                (Err(e), _) => Err(e),
                (_, Err(e)) => Err(e),
            })
        }
        (Some(prev), _) => prev,
    });
}

/// The object-I/O interface the DFS layer drives, leaving the namespace
/// code placement-agnostic: implemented directly by [`DaosClient`] (the
/// host-resident baseline) and by the DPU-offloaded client in `ros2-dpu`
/// (which wraps the same data-plane core with the host handoff, tenant QoS
/// admission, scoped-rkey refresh, and DPU-side checksumming).
///
/// Method signatures mirror the [`DaosClient`] inherent API exactly, so the
/// host path through a `&mut dyn ObjectClient` executes the identical code
/// it always has.
pub trait ObjectClient {
    /// Issues an OBJ_UPDATE from `job`; returns the client-visible commit
    /// instant.
    #[allow(clippy::too_many_arguments)]
    fn update(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError>;

    /// Issues an OBJ_FETCH from `job` reading `len` bytes at `epoch`.
    #[allow(clippy::too_many_arguments)]
    fn fetch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError>;

    /// Submits a batch of independent ops from `job` as one fan-out;
    /// results come back in submission order.
    fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult>;

    /// Submits `ops` through the submission/completion pipeline (all in
    /// flight at once, completions retired in completion order); results
    /// come back in submission order.
    fn execute_pipelined(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult>;

    /// Total data-plane operations issued.
    fn ops(&self) -> u64;
}

impl ObjectClient for DaosClient {
    fn update(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        DaosClient::update(self, fabric, cluster, now, job, oid, dkey, akey, kind, data)
    }

    fn fetch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        DaosClient::fetch(
            self, fabric, cluster, now, job, oid, dkey, akey, kind, epoch, len,
        )
    }

    fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        DaosClient::execute_batch(self, fabric, cluster, now, job, ops)
    }

    fn execute_pipelined(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        DaosClient::execute_pipelined(self, fabric, cluster, now, job, ops)
    }

    fn ops(&self) -> u64 {
        DaosClient::ops(self)
    }
}

/// One client-side I/O in a [`DaosClient::execute_batch`] fan-out.
#[derive(Clone, Debug)]
pub enum ClientOp {
    /// An object update carrying its payload.
    Update {
        /// Object.
        oid: ObjectId,
        /// Distribution key.
        dkey: DKey,
        /// Attribute key.
        akey: AKey,
        /// Single value or array extent.
        kind: ValueKind,
        /// Payload.
        data: Bytes,
    },
    /// An object fetch of `len` bytes at `epoch`.
    Fetch {
        /// Object.
        oid: ObjectId,
        /// Distribution key.
        dkey: DKey,
        /// Attribute key.
        akey: AKey,
        /// Single value or array extent.
        kind: ValueKind,
        /// Read epoch.
        epoch: Epoch,
        /// Bytes to read.
        len: u64,
    },
}

/// The per-op outcome of a [`DaosClient::execute_batch`], in submission
/// order. Structurally mirrors [`TargetOpResult`] but is deliberately a
/// distinct type: these instants are client-visible completions (after the
/// response push/SEND), not the engine-side instants the inner type
/// carries, and the layers are free to diverge.
#[derive(Clone, Debug)]
pub enum ClientOpResult {
    /// Outcome of a [`ClientOp::Update`]: the client-visible commit
    /// instant.
    Update(Result<SimTime, DaosError>),
    /// Outcome of a [`ClientOp::Fetch`]: the data and the client-visible
    /// completion instant.
    Fetch(Result<(Bytes, SimTime), DaosError>),
}

impl ClientOpResult {
    /// Unwraps an update result (panics on a fetch result).
    pub fn into_update(self) -> Result<SimTime, DaosError> {
        match self {
            ClientOpResult::Update(r) => r,
            ClientOpResult::Fetch(_) => panic!("expected update result"),
        }
    }
    /// Unwraps a fetch result (panics on an update result).
    pub fn into_fetch(self) -> Result<(Bytes, SimTime), DaosError> {
        match self {
            ClientOpResult::Fetch(r) => r,
            ClientOpResult::Update(_) => panic!("expected fetch result"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DaosEngine;
    use crate::types::ObjClass;
    use ros2_fabric::NodeSpec;
    use ros2_hw::{gbps, CpuComplement, DpuTcpRxModel, NicModel, NvmeModel};
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_spdk::BdevLayer;

    fn world(transport: Transport, client_is_dpu: bool) -> (Fabric, EngineCluster, DaosClient) {
        let client_spec = if client_is_dpu {
            NodeSpec {
                name: "dpu".into(),
                cpu: CpuComplement {
                    class: CoreClass::DpuArm,
                    cores: 16,
                },
                nic: NicModel::connectx7(),
                port_rate: gbps(100),
                mem_budget: 30 << 30,
                dpu_tcp_rx: Some(DpuTcpRxModel::bluefield3()),
            }
        } else {
            NodeSpec {
                name: "host".into(),
                cpu: CpuComplement {
                    class: CoreClass::HostX86,
                    cores: 48,
                },
                nic: NicModel::connectx6(),
                port_rate: gbps(100),
                mem_budget: 64 << 30,
                dpu_tcp_rx: None,
            }
        };
        let server_spec = NodeSpec {
            name: "storage".into(),
            cpu: CpuComplement {
                class: CoreClass::HostX86,
                cores: 64,
            },
            nic: NicModel::connectx6(),
            port_rate: gbps(100),
            mem_budget: 64 << 30,
            dpu_tcp_rx: None,
        };
        let mut fabric = Fabric::new(transport, vec![client_spec, server_spec], 5);
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        let mut engine = DaosEngine::new(
            "pool0",
            bdevs,
            256 << 20,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        engine.cont_create("cont0").unwrap();
        let client = DaosClient::connect(
            &mut fabric,
            NodeId(0),
            NodeId(1),
            "tenant",
            "cont0",
            2,
            4 << 20,
            MemoryDomain::HostDram,
            DaosCostModel::default_model(),
        )
        .unwrap();
        (fabric, EngineCluster::single(engine), client)
    }

    fn do_round_trip(transport: Transport) {
        let (mut fabric, mut cluster, mut client) = world(transport, false);
        let oid = ObjectId::new(ObjClass::Sx, 1);
        let data = Bytes::from(vec![0x3C; 1 << 20]);
        let done = client
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                data.clone(),
            )
            .unwrap();
        let (back, _) = client
            .fetch(
                &mut fabric,
                &mut cluster,
                done,
                1,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                1 << 20,
            )
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(client.ops(), 2);
    }

    #[test]
    fn tcp_round_trip() {
        do_round_trip(Transport::Tcp);
    }

    #[test]
    fn rdma_round_trip() {
        do_round_trip(Transport::Rdma);
    }

    #[test]
    fn rdma_fetch_is_faster_from_dpu_than_tcp_fetch() {
        // The headline §4.4 comparison at the op level.
        let run = |transport| {
            let (mut fabric, mut cluster, mut client) = world(transport, true);
            let oid = ObjectId::new(ObjClass::Sx, 1);
            let data = Bytes::from(vec![1u8; 1 << 20]);
            let done = client
                .update(
                    &mut fabric,
                    &mut cluster,
                    SimTime::ZERO,
                    0,
                    oid,
                    DKey::from_u64(0),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    data,
                )
                .unwrap();
            let start = done;
            let (_, at) = client
                .fetch(
                    &mut fabric,
                    &mut cluster,
                    start,
                    0,
                    oid,
                    DKey::from_u64(0),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    Epoch::LATEST,
                    1 << 20,
                )
                .unwrap();
            at.saturating_since(start)
        };
        let tcp = run(Transport::Tcp);
        let rdma = run(Transport::Rdma);
        assert!(rdma < tcp, "DPU rdma {rdma} !< DPU tcp {tcp}");
    }

    #[test]
    fn dpu_client_cpu_is_slower_but_functional() {
        let (mut fabric, mut cluster, mut client) = world(Transport::Rdma, true);
        assert_eq!(client.jobs(), 2);
        let oid = ObjectId::new(ObjClass::S1, 3);
        let done = client
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Bytes::from_static(b"metadata"),
            )
            .unwrap();
        let (back, _) = client
            .fetch(
                &mut fabric,
                &mut cluster,
                done,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Epoch::LATEST,
                8,
            )
            .unwrap();
        assert_eq!(&back[..], b"metadata");
    }

    #[test]
    fn oversized_io_rejected_before_wire() {
        let (mut fabric, mut cluster, mut client) = world(Transport::Rdma, false);
        let oid = ObjectId::new(ObjClass::S1, 3);
        let err = client
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Bytes::from(vec![0u8; 8 << 20]),
            )
            .unwrap_err();
        assert!(matches!(err, DaosError::Transport(_)));
    }

    #[test]
    fn checksum_error_propagates_to_client() {
        let (mut fabric, mut cluster, mut client) = world(Transport::Rdma, false);
        let oid = ObjectId::new(ObjClass::Sx, 1);
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        let done = client
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                d.clone(),
                a.clone(),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![5u8; 64 << 10]),
            )
            .unwrap();
        assert!(cluster.engine_mut(0).corrupt_newest_extent(oid, &d, &a));
        let err = client
            .fetch(
                &mut fabric,
                &mut cluster,
                done,
                0,
                oid,
                d,
                a,
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                64 << 10,
            )
            .unwrap_err();
        assert_eq!(err, DaosError::ChecksumMismatch);
    }
}
