//! VOS — the Versioned Object Store of one DAOS target.
//!
//! Each target owns a slice of one NVMe device plus an SCM (pmem) pool and
//! keeps a DRAM index of epoch-tagged records:
//!
//! * **single values** (DFS inode entries, superblocks) — whole-value
//!   updates, latest-wins at a given epoch;
//! * **array values** (DFS file chunks) — extent records resolved by
//!   overlaying later epochs over earlier ones, with sparse gaps reading
//!   as zero (POSIX holes).
//!
//! Media selection follows DAOS policy: records at or below the SCM
//! threshold persist in pmem; larger records land on NVMe extents. Every
//! record carries a CRC32C computed at update and verified at fetch —
//! the end-to-end checksum path of §2.4. Verification *combines* the
//! media store's cached per-chunk CRCs against the recorded ones instead
//! of rescanning payload bytes, and reads contained in one record return
//! the store's zero-copy slice.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use ros2_buf::{zero_bytes, DataPlaneStats};
use ros2_hw::LBA_SIZE;
use ros2_sim::SimTime;
use ros2_spdk::ShardBdev;

use crate::checksum::{crc32c_combine, crc32c_zeros, Checksum};
use crate::types::{AKey, DKey, DaosError, Epoch, ObjectId};

/// The object index key: one packed `(dkey, akey)` pair. Built from
/// borrowed keys without heap allocation — inline keys copy on the stack,
/// heap keys bump a refcount — so the lookup path never allocates (the
/// seed cloned two freshly heap-allocated `Bytes` per probe).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyPair {
    /// Distribution key.
    pub dkey: DKey,
    /// Attribute key.
    pub akey: AKey,
}

impl KeyPair {
    /// Packs borrowed keys into an index key (allocation-free).
    pub fn from_refs(dkey: &DKey, akey: &AKey) -> Self {
        KeyPair {
            dkey: dkey.clone(),
            akey: akey.clone(),
        }
    }
}

/// Where a record's bytes live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Location {
    /// In the target's SCM pool.
    Scm(ros2_pmem::PmemOid),
    /// On the target's NVMe slice.
    Nvme {
        /// Starting LBA (absolute on the device).
        slba: u64,
        /// Blocks.
        nlb: u32,
    },
}

#[derive(Clone, Debug)]
struct SvRecord {
    epoch: Epoch,
    len: u64,
    location: Location,
    checksum: Checksum,
}

/// Checksum granularity for array extents (DAOS `cs_chunksize` analogue).
/// Per-chunk checksums let a 4 KiB read verify one chunk instead of
/// re-reading a whole 1 MiB extent — essential for the paper's small-I/O
/// numbers.
pub const CSUM_CHUNK: u64 = 4096;

#[derive(Clone, Debug)]
struct ExtentRecord {
    epoch: Epoch,
    offset: u64,
    len: u64,
    /// Stored (possibly LBA-padded) length on media.
    stored_len: u64,
    location: Location,
    /// One CRC32C per CSUM_CHUNK of the *stored* representation.
    /// `Arc`-shared so record clones on the fetch path are O(1), not a
    /// deep copy of the checksum table.
    checksums: Arc<[Checksum]>,
}

/// Per-chunk CRC32C table of a stored payload. Payloads that are slices of
/// the shared zero pool (hole materialization, zero-fill staging, the
/// throughput sweeps' synthetic writes) are known all-zero without reading
/// them: their chunk CRCs are closed-form zero-run CRCs, so nothing is
/// scanned and `crc_bytes_scanned` counts only real hashing work.
fn chunk_checksums(stored: &Bytes, dp: &mut DataPlaneStats) -> Arc<[Checksum]> {
    if ros2_buf::is_shared_zeros(stored) {
        let len = stored.len() as u64;
        let full = Checksum(crc32c_zeros(CSUM_CHUNK));
        let tail = len % CSUM_CHUNK;
        let n_full = (len / CSUM_CHUNK) as usize;
        let mut table = Vec::with_capacity(n_full + usize::from(tail > 0));
        table.resize(n_full, full);
        if tail > 0 {
            table.push(Checksum(crc32c_zeros(tail)));
        }
        return table.into();
    }
    dp.crc_bytes_scanned += stored.len() as u64;
    stored
        .chunks(CSUM_CHUNK as usize)
        .map(Checksum::of)
        .collect()
}

/// CRC32C of stored chunks `[c0, c1)` by combining recorded per-chunk
/// checksums — no payload bytes touched. `None` if the record's table does
/// not cover the window (treated as a mismatch by callers).
fn combine_recorded(
    checksums: &[Checksum],
    c0: u64,
    c1: u64,
    stored_len: u64,
    dp: &mut DataPlaneStats,
) -> Option<u32> {
    let mut acc = 0u32;
    for i in c0..c1 {
        let cs = checksums.get(i as usize)?;
        let clen = CSUM_CHUNK.min(stored_len - i * CSUM_CHUNK);
        acc = crc32c_combine(acc, cs.0, clen);
        dp.crc_combines += 1;
    }
    Some(acc)
}

#[derive(Clone, Debug, Default)]
struct ValueStore {
    sv: Vec<SvRecord>,
    extents: Vec<ExtentRecord>,
}

/// One record read back by [`VosTarget::export_records`] for
/// re-replication: everything the destination's update path needs to
/// reconstruct the version history bit-for-bit.
#[derive(Clone, Debug)]
pub struct RecordDump {
    /// Distribution key.
    pub dkey: DKey,
    /// Attribute key.
    pub akey: AKey,
    /// The record's commit epoch (preserved, so replicas resolve the same
    /// version overlay).
    pub epoch: Epoch,
    /// `None` for a single value; `Some(offset)` for an array extent.
    pub array_offset: Option<u64>,
    /// The record's payload bytes.
    pub data: Bytes,
}

/// Outcome of one object's scrub pass on one target: every record's
/// media-side CRC cross-checked against its recorded checksums.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubCheck {
    /// Records cross-checked (single values + array extents).
    pub records: u64,
    /// Checksum chunks compared (combine-only on the clean path).
    pub chunks: u64,
    /// Stored bytes those chunks cover — the volume verified without
    /// being rescanned when the caches are warm.
    pub bytes: u64,
    /// Records whose media CRC disagreed with the recorded checksums —
    /// bit-rot on this replica.
    pub bad: u64,
}

impl ScrubCheck {
    /// Folds another check into this one.
    pub fn merge(&mut self, other: ScrubCheck) {
        self.records += other.records;
        self.chunks += other.chunks;
        self.bytes += other.bytes;
        self.bad += other.bad;
    }
}

/// Aggregate VOS statistics for one target.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VosStats {
    /// Single-value updates.
    pub sv_updates: u64,
    /// Array-extent updates.
    pub array_updates: u64,
    /// Fetches of either kind.
    pub fetches: u64,
    /// Records placed in SCM.
    pub scm_records: u64,
    /// Records placed on NVMe.
    pub nvme_records: u64,
    /// Checksum verification failures detected.
    pub checksum_failures: u64,
    /// Extents reclaimed by aggregation.
    pub aggregated_extents: u64,
}

impl VosStats {
    /// Folds another counter set into this one (exhaustive by
    /// destructuring, so a new field cannot be silently dropped).
    pub fn merge(&mut self, other: &VosStats) {
        let VosStats {
            sv_updates,
            array_updates,
            fetches,
            scm_records,
            nvme_records,
            checksum_failures,
            aggregated_extents,
        } = other;
        self.sv_updates += sv_updates;
        self.array_updates += array_updates;
        self.fetches += fetches;
        self.scm_records += scm_records;
        self.nvme_records += nvme_records;
        self.checksum_failures += checksum_failures;
        self.aggregated_extents += aggregated_extents;
    }
}

/// One target's versioned object store.
#[derive(Debug)]
pub struct VosTarget {
    /// Which bdev this target owns a slice of.
    pub dev: usize,
    scm: ros2_pmem::PmemPool,
    scm_threshold: u64,
    nvme_next: u64,
    nvme_limit: u64,
    free_extents: Vec<(u64, u32)>,
    objects: HashMap<ObjectId, BTreeMap<KeyPair, ValueStore>>,
    stats: VosStats,
    /// VOS-level data-plane counters (payload checksum scans, recorded-CRC
    /// combines, overlay stitch copies). Media-store counters live in the
    /// SCM pool and the bdev backing and are merged by
    /// [`Self::data_plane_stats`] / the engine.
    dp: DataPlaneStats,
    /// Reused buffer for the visible-extent set of a fetch (cleared per
    /// call; record clones are O(1) — the checksum tables are Arc-shared).
    visible_scratch: Vec<ExtentRecord>,
}

impl VosTarget {
    /// Creates a target over `[lba_base, lba_base+lba_span)` of device
    /// `dev`, with an SCM pool of `scm_bytes`.
    pub fn new(
        dev: usize,
        lba_base: u64,
        lba_span: u64,
        scm_bytes: u64,
        scm_threshold: u64,
    ) -> Self {
        VosTarget {
            dev,
            scm: ros2_pmem::PmemPool::new(scm_bytes, ros2_pmem::ScmModel::optane_class()),
            scm_threshold,
            nvme_next: lba_base,
            nvme_limit: lba_base + lba_span,
            free_extents: Vec::new(),
            objects: HashMap::new(),
            stats: VosStats::default(),
            dp: DataPlaneStats::default(),
            visible_scratch: Vec::new(),
        }
    }

    /// Target statistics.
    pub fn stats(&self) -> &VosStats {
        &self.stats
    }

    /// Data-plane counters: this target's own (checksum scans/combines,
    /// stitch copies) merged with its SCM pool's store counters.
    pub fn data_plane_stats(&self) -> DataPlaneStats {
        let mut total = self.dp;
        total.merge(self.scm.data_plane_stats());
        total
    }

    /// The SCM pool (for utilization reports).
    pub fn scm(&self) -> &ros2_pmem::PmemPool {
        &self.scm
    }

    fn alloc_nvme(&mut self, nlb: u32) -> Result<u64, DaosError> {
        if let Some(pos) = self.free_extents.iter().position(|&(_, n)| n >= nlb) {
            let (slba, n) = self.free_extents.swap_remove(pos);
            if n > nlb {
                self.free_extents.push((slba + nlb as u64, n - nlb));
            }
            return Ok(slba);
        }
        if self.nvme_next + nlb as u64 > self.nvme_limit {
            return Err(DaosError::NvmeFull);
        }
        let slba = self.nvme_next;
        self.nvme_next += nlb as u64;
        Ok(slba)
    }

    /// Persists `data`, choosing media by size. Returns the location, the
    /// stored (possibly padded) bytes, and the media completion time.
    fn place(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        data: &Bytes,
    ) -> Result<(Location, Bytes, SimTime), DaosError> {
        if data.len() as u64 <= self.scm_threshold {
            let oid = self
                .scm
                .alloc(data.len().max(1) as u64)
                .map_err(|_| DaosError::ScmFull)?;
            self.scm
                .write_bytes(oid, 0, data)
                .map_err(|e| DaosError::Media(format!("{e:?}")))?;
            let done = self.scm.timed_write(now, data.len() as u64);
            self.stats.scm_records += 1;
            Ok((Location::Scm(oid), data.clone(), done))
        } else {
            let nlb = (data.len() as u64).div_ceil(LBA_SIZE) as u32;
            let slba = self.alloc_nvme(nlb)?;
            // Pad the tail block so the device write is LBA-aligned.
            let padded = if (data.len() as u64).is_multiple_of(LBA_SIZE) {
                data.clone()
            } else {
                let mut b = BytesMut::with_capacity((nlb as usize) * LBA_SIZE as usize);
                b.extend_from_slice(data);
                b.resize((nlb as usize) * LBA_SIZE as usize, 0);
                b.freeze()
            };
            let done = media
                .write(now, slba, padded.clone())
                .map_err(|e| DaosError::Media(format!("{e:?}")))?;
            self.stats.nvme_records += 1;
            Ok((Location::Nvme { slba, nlb }, padded, done.at))
        }
    }

    /// Hands update-time chunk CRCs down to the media store that just
    /// persisted the record, so the store's own chunk-CRC cache starts
    /// seeded and the first fetch-verify combines instead of rescanning.
    /// The record's chunk grid is extent-relative on both media, so the
    /// tables line up exactly.
    fn seed_media_crcs(&mut self, media: &mut ShardBdev<'_>, loc: &Location, crcs: &[Checksum]) {
        let it = crcs.iter().map(|c| c.0);
        match loc {
            Location::Scm(oid) => self.scm.seed_crcs(*oid, 0, it),
            Location::Nvme { slba, .. } => media.seed_crc_cache(slba * LBA_SIZE, it),
        }
    }

    /// The media-side CRC32C of a record's stored bytes `[at, at+len)` —
    /// answered from the backing stores' chunk-CRC caches, so repeat
    /// verifies never rescan clean payloads.
    fn media_crc(
        &mut self,
        media: &mut ShardBdev<'_>,
        loc: &Location,
        at: u64,
        len: u64,
    ) -> Result<u32, DaosError> {
        match loc {
            Location::Scm(oid) => self
                .scm
                .crc_of_range(*oid, at, len)
                .map_err(|e| DaosError::Media(format!("{e:?}"))),
            Location::Nvme { slba, .. } => Ok(media.crc_of_range(slba * LBA_SIZE + at, len)),
        }
    }

    /// Reads `[at, at+len)` of an extent's *stored* bytes, loading only the
    /// checksum chunks that cover the range. Verification compares the
    /// media store's (cached) window CRC against the combine of the
    /// recorded per-chunk checksums — clean data is never rescanned, and
    /// the returned bytes are a zero-copy slice of the store's extent.
    #[allow(clippy::too_many_arguments)]
    fn load_range(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        rec_location: &Location,
        rec_stored_len: u64,
        checksums: &[Checksum],
        at: u64,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        // Chunk-align the window.
        let c0 = at / CSUM_CHUNK;
        let c1 = (at + len).div_ceil(CSUM_CHUNK);
        let win_lo = c0 * CSUM_CHUNK;
        let win_hi = (c1 * CSUM_CHUNK).min(rec_stored_len);
        let (stored, done) = match rec_location {
            Location::Scm(oid) => {
                let data = self
                    .scm
                    .read(*oid, win_lo, (win_hi - win_lo) as usize)
                    .map_err(|e| DaosError::Media(format!("{e:?}")))?;
                (data, self.scm.timed_read(now, win_hi - win_lo))
            }
            Location::Nvme { slba, .. } => {
                // CSUM_CHUNK == LBA_SIZE, so chunk windows are LBA-aligned.
                let lba0 = slba + win_lo / LBA_SIZE;
                let nlb = ((win_hi - win_lo).div_ceil(LBA_SIZE)) as u32;
                let c = media
                    .read(now, lba0, nlb)
                    .map_err(|e| DaosError::Media(format!("{e:?}")))?;
                let data = c.data.expect("bdev read returns data");
                (data.slice(0..(win_hi - win_lo) as usize), c.at)
            }
        };
        // Verify the covered window: recorded chunk CRCs combined vs the
        // media store's cached CRC of the same range.
        let expected = combine_recorded(checksums, c0, c1, rec_stored_len, &mut self.dp);
        let actual = self.media_crc(media, rec_location, win_lo, win_hi - win_lo)?;
        if expected != Some(actual) {
            self.stats.checksum_failures += 1;
            return Err(DaosError::ChecksumMismatch);
        }
        let rel_lo = (at - win_lo) as usize;
        Ok((stored.slice(rel_lo..rel_lo + len as usize), done))
    }

    /// Reads a record's bytes back from its location (no verification —
    /// callers compare the media CRC against the recorded checksum).
    fn load(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        loc: &Location,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        match loc {
            Location::Scm(oid) => {
                let data = self
                    .scm
                    .read(*oid, 0, len as usize)
                    .map_err(|e| DaosError::Media(format!("{e:?}")))?;
                Ok((data, self.scm.timed_read(now, len)))
            }
            Location::Nvme { slba, nlb } => {
                let c = media
                    .read(now, *slba, *nlb)
                    .map_err(|e| DaosError::Media(format!("{e:?}")))?;
                let data = c.data.expect("bdev read returns data");
                Ok((data.slice(0..len as usize), c.at))
            }
        }
    }

    /// Updates a single value.
    #[allow(clippy::too_many_arguments)]
    pub fn update_single(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        epoch: Epoch,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        let len = data.len() as u64;
        let checksum = if ros2_buf::is_shared_zeros(&data) {
            Checksum(crc32c_zeros(len))
        } else {
            self.dp.crc_bytes_scanned += len;
            Checksum::of(&data)
        };
        let (location, _stored, done) = self.place(now, media, &data)?;
        // A whole value at or below one chunk *is* its chunk-0 CRC — but
        // only for SCM placement, where the stored bytes are exactly the
        // payload. NVMe placement pads to the LBA (reachable when
        // `scm_threshold < CSUM_CHUNK`), so the whole-value CRC would not
        // describe the stored extent; those records keep the lazy cache.
        // (Larger single values would need a chunk table the metadata path
        // deliberately does not compute.)
        if len > 0 && len <= CSUM_CHUNK && matches!(location, Location::Scm(_)) {
            self.seed_media_crcs(media, &location, std::slice::from_ref(&checksum));
        }
        let store = self
            .objects
            .entry(oid)
            .or_default()
            .entry(KeyPair { dkey, akey })
            .or_default();
        store.sv.push(SvRecord {
            epoch,
            len,
            location,
            checksum,
        });
        self.stats.sv_updates += 1;
        Ok(done)
    }

    /// Fetches the latest single value at or below `epoch`.
    pub fn fetch_single(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        oid: ObjectId,
        dkey: &DKey,
        akey: &AKey,
        epoch: Epoch,
    ) -> Result<(Bytes, SimTime), DaosError> {
        self.stats.fetches += 1;
        let store = self
            .objects
            .get(&oid)
            .and_then(|o| o.get(&KeyPair::from_refs(dkey, akey)))
            .ok_or(DaosError::NotFound)?;
        let rec = store
            .sv
            .iter()
            .filter(|r| r.epoch <= epoch)
            .max_by_key(|r| r.epoch)
            .ok_or(DaosError::NotFound)?
            .clone();
        let (data, done) = self.load(now, media, &rec.location, rec.len)?;
        // Verify against the media store's cached CRC of the stored bytes
        // — no rescan of the returned payload.
        let actual = self.media_crc(media, &rec.location, 0, rec.len)?;
        if actual != rec.checksum.0 {
            self.stats.checksum_failures += 1;
            return Err(DaosError::ChecksumMismatch);
        }
        Ok((data, done))
    }

    /// Writes an array extent at `offset`.
    #[allow(clippy::too_many_arguments)]
    pub fn update_array(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        epoch: Epoch,
        offset: u64,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        let len = data.len() as u64;
        let (location, stored, done) = self.place(now, media, &data)?;
        let checksums = chunk_checksums(&stored, &mut self.dp);
        // The chunk table just computed covers exactly the stored extent;
        // seed the media store's CRC cache so fetch-verify never rescans.
        if !checksums.is_empty() {
            self.seed_media_crcs(media, &location, &checksums);
        }
        let store = self
            .objects
            .entry(oid)
            .or_default()
            .entry(KeyPair { dkey, akey })
            .or_default();
        store.extents.push(ExtentRecord {
            epoch,
            offset,
            len,
            stored_len: stored.len() as u64,
            location,
            checksums,
        });
        self.stats.array_updates += 1;
        Ok(done)
    }

    /// Reads `[offset, offset+len)` of an array value at `epoch`, resolving
    /// extent overlays; unwritten gaps read as zero.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_array(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        oid: ObjectId,
        dkey: &DKey,
        akey: &AKey,
        epoch: Epoch,
        offset: u64,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        self.stats.fetches += 1;
        // Collect visible extents that intersect the range, in epoch order
        // (ties resolved by insertion order, which Vec preserves), into the
        // reused scratch buffer — the steady-state fetch path performs no
        // heap allocation. Record clones are cheap: the checksum tables are
        // Arc-shared.
        let mut visible = std::mem::take(&mut self.visible_scratch);
        visible.clear();
        if let Some(store) = self
            .objects
            .get(&oid)
            .and_then(|o| o.get(&KeyPair::from_refs(dkey, akey)))
        {
            visible.extend(
                store
                    .extents
                    .iter()
                    .filter(|e| {
                        e.epoch <= epoch && e.offset < offset + len && e.offset + e.len > offset
                    })
                    .cloned(),
            );
        }
        let result = self.fetch_array_visible(now, media, &visible, offset, len);
        visible.clear();
        self.visible_scratch = visible;
        result
    }

    /// The overlay resolution of [`Self::fetch_array`] over an
    /// already-collected visible set.
    fn fetch_array_visible(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        visible: &[ExtentRecord],
        offset: u64,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        if visible.is_empty() {
            // Never-written range: a hole (refcounted shared zeros).
            self.dp.bytes_zero_copy += len;
            return Ok((zero_bytes(len as usize), now));
        }
        // Zero-copy fast path: exactly one record covers the whole range —
        // hand back the store's slice without materializing a fresh buffer.
        if visible.len() == 1 {
            let rec = &visible[0];
            if rec.offset <= offset && rec.offset + rec.len >= offset + len {
                return self.load_range(
                    now,
                    media,
                    &rec.location,
                    rec.stored_len,
                    &rec.checksums,
                    offset - rec.offset,
                    len,
                );
            }
        }
        // Genuinely fragmented: stitch the overlay into a fresh buffer.
        let mut out = BytesMut::zeroed(len as usize);
        let mut latest = now;
        for rec in visible {
            // Only the intersecting chunk window is read and verified.
            let from = rec.offset.max(offset);
            let to = (rec.offset + rec.len).min(offset + len);
            let (data, done) = self.load_range(
                now,
                media,
                &rec.location,
                rec.stored_len,
                &rec.checksums,
                from - rec.offset,
                to - from,
            )?;
            latest = latest.max(done);
            let dst = (from - offset) as usize..(to - offset) as usize;
            out[dst].copy_from_slice(&data);
        }
        self.dp.bytes_copied += len;
        Ok((out.freeze(), latest))
    }

    /// Lists the dkeys of an object (directory enumeration path).
    pub fn list_dkeys(&self, oid: ObjectId) -> Vec<DKey> {
        let mut keys: Vec<DKey> = self
            .objects
            .get(&oid)
            .map(|o| o.keys().map(|k| k.dkey.clone()).collect())
            .unwrap_or_default();
        keys.dedup();
        keys
    }

    /// Removes a `(dkey, akey)` entry (punch), freeing NVMe extents.
    pub fn punch(&mut self, oid: ObjectId, dkey: &DKey, akey: &AKey) -> Result<(), DaosError> {
        let obj = self.objects.get_mut(&oid).ok_or(DaosError::NotFound)?;
        let store = obj
            .remove(&KeyPair::from_refs(dkey, akey))
            .ok_or(DaosError::NotFound)?;
        for rec in store.extents {
            if let Location::Nvme { slba, nlb } = rec.location {
                self.free_extents.push((slba, nlb));
            } else if let Location::Scm(oid) = rec.location {
                self.scm.free(oid);
            }
        }
        for rec in store.sv {
            if let Location::Nvme { slba, nlb } = rec.location {
                self.free_extents.push((slba, nlb));
            } else if let Location::Scm(oid) = rec.location {
                self.scm.free(oid);
            }
        }
        Ok(())
    }

    /// Removes an entire object.
    pub fn punch_object(&mut self, oid: ObjectId) {
        if let Some(obj) = self.objects.remove(&oid) {
            for (_, store) in obj {
                for rec in store.extents {
                    if let Location::Nvme { slba, nlb } = rec.location {
                        self.free_extents.push((slba, nlb));
                    } else if let Location::Scm(o) = rec.location {
                        self.scm.free(o);
                    }
                }
                for rec in store.sv {
                    if let Location::Nvme { slba, nlb } = rec.location {
                        self.free_extents.push((slba, nlb));
                    } else if let Location::Scm(o) = rec.location {
                        self.scm.free(o);
                    }
                }
            }
        }
    }

    /// Epoch aggregation: reclaims records superseded at or below
    /// `boundary`. Single values keep only the newest visible record;
    /// extents fully covered by one newer extent (≤ boundary) are dropped.
    pub fn aggregate(&mut self, boundary: Epoch) {
        let mut reclaimed_nvme: Vec<(u64, u32)> = Vec::new();
        let mut reclaimed_scm: Vec<ros2_pmem::PmemOid> = Vec::new();
        let mut count = 0u64;
        for obj in self.objects.values_mut() {
            for store in obj.values_mut() {
                // Single values: keep the newest <= boundary plus anything
                // newer than the boundary.
                if let Some(keep) = store
                    .sv
                    .iter()
                    .filter(|r| r.epoch <= boundary)
                    .map(|r| r.epoch)
                    .max()
                {
                    store.sv.retain(|r| {
                        let dead = r.epoch < keep;
                        if dead {
                            match &r.location {
                                Location::Nvme { slba, nlb } => reclaimed_nvme.push((*slba, *nlb)),
                                Location::Scm(o) => reclaimed_scm.push(*o),
                            }
                            count += 1;
                        }
                        !dead
                    });
                }
                // Extents: drop any fully shadowed by a single newer one.
                // Two passes over indices instead of cloning the record
                // list (the seed deep-copied every record, checksum tables
                // included, per store per aggregation).
                let dead: Vec<bool> = store
                    .extents
                    .iter()
                    .map(|r| {
                        r.epoch <= boundary
                            && store.extents.iter().any(|later| {
                                later.epoch <= boundary
                                    && later.epoch > r.epoch
                                    && later.offset <= r.offset
                                    && later.offset + later.len >= r.offset + r.len
                            })
                    })
                    .collect();
                let mut idx = 0usize;
                store.extents.retain(|r| {
                    let shadowed = dead[idx];
                    idx += 1;
                    if shadowed {
                        match &r.location {
                            Location::Nvme { slba, nlb } => reclaimed_nvme.push((*slba, *nlb)),
                            Location::Scm(o) => reclaimed_scm.push(*o),
                        }
                        count += 1;
                    }
                    !shadowed
                });
            }
        }
        self.free_extents.extend(reclaimed_nvme);
        for o in reclaimed_scm {
            self.scm.free(o);
        }
        self.stats.aggregated_extents += count;
    }

    /// The object ids this target holds records for (rebuild enumeration).
    pub fn list_objects(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Reads back every record of `oid` — single values and array extents,
    /// with their epochs — for re-replication. Media read time is charged
    /// (the rebuild source really streams its extents); checksums are
    /// *not* verified here — the importer recomputes them through the
    /// normal update path, and post-rebuild fetch-verify is the
    /// end-to-end check.
    pub fn export_records(
        &mut self,
        now: SimTime,
        media: &mut ShardBdev<'_>,
        oid: ObjectId,
    ) -> Result<(Vec<RecordDump>, SimTime), DaosError> {
        let Some(obj) = self.objects.get(&oid) else {
            return Ok((Vec::new(), now));
        };
        // Snapshot the index slice first (record clones are O(1): the
        // checksum tables are Arc-shared) so the media loads below can
        // borrow `self` mutably.
        let entries: Vec<(KeyPair, Vec<SvRecord>, Vec<ExtentRecord>)> = obj
            .iter()
            .map(|(k, v)| (k.clone(), v.sv.clone(), v.extents.clone()))
            .collect();
        let mut out = Vec::new();
        let mut t_done = now;
        for (kp, svs, exts) in entries {
            for r in svs {
                let (data, t) = self.load(now, media, &r.location, r.len)?;
                t_done = t_done.max(t);
                out.push(RecordDump {
                    dkey: kp.dkey.clone(),
                    akey: kp.akey.clone(),
                    epoch: r.epoch,
                    array_offset: None,
                    data,
                });
            }
            for r in exts {
                let (data, t) = self.load(now, media, &r.location, r.len)?;
                t_done = t_done.max(t);
                out.push(RecordDump {
                    dkey: kp.dkey.clone(),
                    akey: kp.akey.clone(),
                    epoch: r.epoch,
                    array_offset: Some(r.offset),
                    data,
                });
            }
        }
        Ok((out, t_done))
    }

    /// Scrub-verifies every record of `oid`: the media store's (cached)
    /// CRC over each record's full stored range against the combine of its
    /// recorded checksums. Bit-rot rewrites media bytes behind the index's
    /// back, invalidating the store's chunk-CRC cache for the touched
    /// chunks, so the comparison catches it — while a fully clean pass
    /// answers from caches and scans ~zero payload bytes.
    pub fn scrub_object(&mut self, media: &mut ShardBdev<'_>, oid: ObjectId) -> ScrubCheck {
        enum Expect {
            Whole(u32),
            Chunks(Arc<[Checksum]>),
        }
        let Some(obj) = self.objects.get(&oid) else {
            return ScrubCheck::default();
        };
        let recs: Vec<(Location, u64, Expect)> = obj
            .values()
            .flat_map(|s| {
                s.sv.iter()
                    .map(|r| (r.location.clone(), r.len, Expect::Whole(r.checksum.0)))
                    .chain(s.extents.iter().map(|r| {
                        (
                            r.location.clone(),
                            r.stored_len,
                            Expect::Chunks(r.checksums.clone()),
                        )
                    }))
            })
            .collect();
        let mut check = ScrubCheck::default();
        for (loc, len, expect) in recs {
            check.records += 1;
            check.bytes += len;
            let expected = match &expect {
                // Single values carry one whole-value CRC.
                Expect::Whole(c) => {
                    check.chunks += 1;
                    Some(*c)
                }
                Expect::Chunks(cs) => {
                    let n = len.div_ceil(CSUM_CHUNK);
                    check.chunks += n;
                    combine_recorded(cs, 0, n, len, &mut self.dp)
                }
            };
            let actual = self.media_crc(media, &loc, 0, len).ok();
            if expected.is_none() || expected != actual {
                check.bad += 1;
                self.stats.checksum_failures += 1;
            }
        }
        check
    }

    /// An order-insensitive fingerprint of `oid`'s logical record set:
    /// an FNV fold over the sorted `(dkey, akey, epoch, kind, len,
    /// recorded CRCs)` descriptors. Replicas holding the same version
    /// history — the state coordinated aggregation converges them to —
    /// fingerprint identically without touching any payload bytes;
    /// divergent record sets (a missed import, an unaggregated replica)
    /// do not.
    pub fn object_fingerprint(&self, oid: ObjectId) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        // (dkey, akey, epoch, extent offset or None for an SV, len,
        // folded recorded CRCs) — one row per record.
        type Desc<'a> = (&'a DKey, &'a AKey, Epoch, Option<u64>, u64, u64);
        let Some(obj) = self.objects.get(&oid) else {
            return OFFSET;
        };
        let mut descs: Vec<Desc<'_>> = Vec::new();
        for (kp, store) in obj {
            for r in &store.sv {
                descs.push((
                    &kp.dkey,
                    &kp.akey,
                    r.epoch,
                    None,
                    r.len,
                    r.checksum.0 as u64,
                ));
            }
            for r in &store.extents {
                let crc_fold = r
                    .checksums
                    .iter()
                    .fold(OFFSET, |h, c| (h ^ c.0 as u64).wrapping_mul(PRIME));
                descs.push((&kp.dkey, &kp.akey, r.epoch, Some(r.offset), r.len, crc_fold));
            }
        }
        descs.sort();
        let mut h = OFFSET;
        let fold_bytes = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h = (*h ^ b as u64).wrapping_mul(PRIME);
            }
        };
        for (dkey, akey, epoch, offset, len, crc) in descs {
            fold_bytes(&mut h, dkey.as_bytes());
            fold_bytes(&mut h, akey.as_bytes());
            fold_bytes(&mut h, &epoch.0.to_le_bytes());
            fold_bytes(&mut h, &offset.map_or(u64::MAX, |o| o).to_le_bytes());
            fold_bytes(&mut h, &[u8::from(offset.is_some())]);
            fold_bytes(&mut h, &len.to_le_bytes());
            fold_bytes(&mut h, &crc.to_le_bytes());
        }
        h
    }

    /// The `(dkey, akey)` owning this target's newest extent of `oid`, if
    /// any — the deterministic victim for scheduled bit-rot injection
    /// (max epoch; key order breaks ties).
    pub fn newest_extent_key(&self, oid: ObjectId) -> Option<(DKey, AKey, Epoch)> {
        let obj = self.objects.get(&oid)?;
        let mut best: Option<(DKey, AKey, Epoch)> = None;
        for (kp, store) in obj {
            if let Some(e) = store.extents.iter().map(|r| r.epoch).max() {
                if best.as_ref().is_none_or(|(_, _, b)| e > *b) {
                    best = Some((kp.dkey.clone(), kp.akey.clone(), e));
                }
            }
        }
        best
    }

    /// Test hook: corrupts the newest extent's stored bytes so the next
    /// fetch detects a checksum mismatch.
    pub fn corrupt_newest_extent(
        &mut self,
        media: &mut ShardBdev<'_>,
        oid: ObjectId,
        dkey: &DKey,
        akey: &AKey,
    ) -> bool {
        let Some(location) = self
            .objects
            .get(&oid)
            .and_then(|o| o.get(&KeyPair::from_refs(dkey, akey)))
            .and_then(|s| s.extents.last())
            .map(|rec| rec.location.clone())
        else {
            return false;
        };
        match location {
            Location::Nvme { slba, .. } => {
                let backing = media.device_mut().backing_mut();
                let mut byte = backing.read(slba * LBA_SIZE, 1).to_vec();
                byte[0] ^= 0xFF;
                backing.write(slba * LBA_SIZE, &byte);
                true
            }
            Location::Scm(o) => {
                let cur = self.scm.read(o, 0, 1).unwrap();
                self.scm.write(o, 0, &[cur[0] ^ 0xFF]).unwrap();
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ObjClass;
    use ros2_hw::NvmeModel;
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_spdk::BdevLayer;

    fn fixture() -> (VosTarget, BdevLayer) {
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        let vos = VosTarget::new(0, 0, 1 << 20, 64 << 20, 4096);
        (vos, bdevs)
    }

    fn oid() -> ObjectId {
        ObjectId::new(ObjClass::S1, 1)
    }

    #[test]
    fn single_value_round_trip_scm() {
        let (mut vos, mut bd) = fixture();
        let data = Bytes::from_static(b"inode-entry");
        vos.update_single(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            DKey::from_str("d"),
            AKey::from_str("a"),
            Epoch(1),
            data.clone(),
        )
        .unwrap();
        let (back, _) = vos
            .fetch_single(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                &DKey::from_str("d"),
                &AKey::from_str("a"),
                Epoch::LATEST,
            )
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(vos.stats().scm_records, 1); // 11 B <= threshold
    }

    #[test]
    fn large_values_go_to_nvme() {
        let (mut vos, mut bd) = fixture();
        let data = Bytes::from(vec![7u8; 1 << 20]);
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            DKey::from_u64(0),
            AKey::from_str("data"),
            Epoch(1),
            0,
            data.clone(),
        )
        .unwrap();
        assert_eq!(vos.stats().nvme_records, 1);
        let (back, _) = vos
            .fetch_array(
                SimTime::from_secs(1),
                &mut bd.shard(0),
                oid(),
                &DKey::from_u64(0),
                &AKey::from_str("data"),
                Epoch::LATEST,
                0,
                1 << 20,
            )
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn epoch_versioning_reads_the_past() {
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_str("d");
        let a = AKey::from_str("a");
        vos.update_single(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(10),
            Bytes::from_static(b"v1"),
        )
        .unwrap();
        vos.update_single(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(20),
            Bytes::from_static(b"v2"),
        )
        .unwrap();
        let (at15, _) = vos
            .fetch_single(SimTime::ZERO, &mut bd.shard(0), oid(), &d, &a, Epoch(15))
            .unwrap();
        assert_eq!(&at15[..], b"v1");
        let (latest, _) = vos
            .fetch_single(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                &d,
                &a,
                Epoch::LATEST,
            )
            .unwrap();
        assert_eq!(&latest[..], b"v2");
        // Before the first write: NotFound.
        assert_eq!(
            vos.fetch_single(SimTime::ZERO, &mut bd.shard(0), oid(), &d, &a, Epoch(5))
                .unwrap_err(),
            DaosError::NotFound
        );
    }

    #[test]
    fn extent_overlay_resolves_latest() {
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            0,
            Bytes::from(vec![1u8; 100]),
        )
        .unwrap();
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(2),
            50,
            Bytes::from(vec![2u8; 100]),
        )
        .unwrap();
        let (out, _) = vos
            .fetch_array(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                &d,
                &a,
                Epoch::LATEST,
                0,
                200,
            )
            .unwrap();
        assert!(out[..50].iter().all(|&b| b == 1));
        assert!(out[50..150].iter().all(|&b| b == 2));
        assert!(out[150..].iter().all(|&b| b == 0), "hole reads zero");
        // At epoch 1 the second write is invisible.
        let (old, _) = vos
            .fetch_array(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                &d,
                &a,
                Epoch(1),
                0,
                200,
            )
            .unwrap();
        assert!(old[..100].iter().all(|&b| b == 1));
        assert!(old[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn corruption_is_detected() {
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            0,
            Bytes::from(vec![9u8; 8192]),
        )
        .unwrap();
        assert!(vos.corrupt_newest_extent(&mut bd.shard(0), oid(), &d, &a));
        let err = vos
            .fetch_array(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                &d,
                &a,
                Epoch::LATEST,
                0,
                8192,
            )
            .unwrap_err();
        assert_eq!(err, DaosError::ChecksumMismatch);
        assert_eq!(vos.stats().checksum_failures, 1);
    }

    #[test]
    fn punch_frees_extents_for_reuse() {
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            0,
            Bytes::from(vec![1u8; 64 << 10]),
        )
        .unwrap();
        let frontier_before = vos.nvme_next;
        vos.punch(oid(), &d, &a).unwrap();
        // A same-size rewrite reuses the freed extent.
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(2),
            0,
            Bytes::from(vec![2u8; 64 << 10]),
        )
        .unwrap();
        assert_eq!(vos.nvme_next, frontier_before, "extent was recycled");
    }

    #[test]
    fn aggregation_reclaims_shadowed_records() {
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        for e in 1..=5u64 {
            vos.update_array(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                d.clone(),
                a.clone(),
                Epoch(e),
                0,
                Bytes::from(vec![e as u8; 32 << 10]),
            )
            .unwrap();
        }
        vos.aggregate(Epoch(5));
        assert_eq!(vos.stats().aggregated_extents, 4);
        // Content unchanged after aggregation.
        let (out, _) = vos
            .fetch_array(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                &d,
                &a,
                Epoch::LATEST,
                0,
                32 << 10,
            )
            .unwrap();
        assert!(out.iter().all(|&b| b == 5));
    }

    #[test]
    fn nvme_exhaustion_reported() {
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        let mut bd = bdevs;
        // A tiny 8-block slice.
        let mut vos = VosTarget::new(0, 0, 8, 64 << 20, 4096);
        let d = DKey::from_u64(0);
        let a = AKey::from_str("x");
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            0,
            Bytes::from(vec![0u8; 8 * 4096]),
        )
        .unwrap();
        let err = vos
            .update_array(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                d,
                a,
                Epoch(2),
                0,
                Bytes::from(vec![0u8; 8192]),
            )
            .unwrap_err();
        assert_eq!(err, DaosError::NvmeFull);
    }

    #[test]
    fn repeat_fetches_never_rescan_clean_payloads() {
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        let data = Bytes::from(vec![0x42u8; 256 << 10]);
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            0,
            data.clone(),
        )
        .unwrap();
        let fetch = |vos: &mut VosTarget, bd: &mut BdevLayer| {
            let (out, _) = vos
                .fetch_array(
                    SimTime::ZERO,
                    &mut bd.shard(0),
                    oid(),
                    &d,
                    &a,
                    Epoch::LATEST,
                    0,
                    256 << 10,
                )
                .unwrap();
            assert_eq!(out, data);
        };
        fetch(&mut vos, &mut bd);
        let after_first = {
            let mut s = vos.data_plane_stats();
            s.merge(bd.data_plane_stats());
            s
        };
        for _ in 0..4 {
            fetch(&mut vos, &mut bd);
        }
        let after_more = {
            let mut s = vos.data_plane_stats();
            s.merge(bd.data_plane_stats());
            s
        };
        assert_eq!(
            after_more.crc_bytes_scanned, after_first.crc_bytes_scanned,
            "verify must combine cached CRCs, not rescan"
        );
        assert!(after_more.crc_combines > after_first.crc_combines);
        assert_eq!(
            after_more.bytes_copied, after_first.bytes_copied,
            "single-record fetches must stay zero-copy"
        );
    }

    #[test]
    fn update_seeds_media_crc_caches() {
        // The very first fetch-verify must combine the CRCs handed down at
        // update time — zero additional payload bytes scanned, on both the
        // NVMe and the SCM tier.
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            0,
            Bytes::from(vec![0x42u8; 256 << 10]), // NVMe-bound
        )
        .unwrap();
        vos.update_single(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            DKey::from_str("meta"),
            AKey::from_str("v"),
            Epoch(1),
            Bytes::from_static(b"inode"), // SCM-bound
        )
        .unwrap();
        let merged = |vos: &VosTarget, bd: &BdevLayer| {
            let mut s = vos.data_plane_stats();
            s.merge(bd.data_plane_stats());
            s
        };
        let after_update = merged(&vos, &bd);
        assert!(
            after_update.crc_cache_seeded > 64,
            "update must seed media chunk CRCs (seeded {})",
            after_update.crc_cache_seeded
        );
        vos.fetch_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            &d,
            &a,
            Epoch::LATEST,
            0,
            256 << 10,
        )
        .unwrap();
        vos.fetch_single(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            &DKey::from_str("meta"),
            &AKey::from_str("v"),
            Epoch::LATEST,
        )
        .unwrap();
        let after_fetch = merged(&vos, &bd);
        assert_eq!(
            after_fetch.crc_bytes_scanned, after_update.crc_bytes_scanned,
            "first fetch-verify must run entirely off seeded CRC caches"
        );
        assert!(after_fetch.crc_combines > after_update.crc_combines);
    }

    #[test]
    fn nvme_bound_single_values_skip_seeding_and_still_verify() {
        // With scm_threshold below the checksum chunk, a small single value
        // lands on NVMe and gets LBA-padded: its whole-value CRC does not
        // describe the stored extent, so it must NOT seed the media cache
        // (a poisoned seed would panic debug builds and corrupt release
        // verifies) — and the fetch must still verify via the lazy cache.
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        let mut bd = bdevs;
        let mut vos = VosTarget::new(0, 0, 1 << 20, 64 << 20, 1024);
        let d = DKey::from_str("k");
        let a = AKey::from_str("v");
        let data = Bytes::from(vec![0x3Cu8; 2000]); // > threshold, < chunk
        vos.update_single(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            data.clone(),
        )
        .unwrap();
        assert_eq!(vos.stats().nvme_records, 1);
        let seeded =
            vos.data_plane_stats().crc_cache_seeded + bd.data_plane_stats().crc_cache_seeded;
        assert_eq!(seeded, 0, "padded NVMe single values must not seed");
        let (back, _) = vos
            .fetch_single(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                &d,
                &a,
                Epoch::LATEST,
            )
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn whole_range_fetch_is_zero_copy() {
        let (mut vos, mut bd) = fixture();
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        vos.update_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            d.clone(),
            a.clone(),
            Epoch(1),
            0,
            Bytes::from(vec![7u8; 1 << 20]),
        )
        .unwrap();
        let copied_before =
            vos.data_plane_stats().bytes_copied + bd.data_plane_stats().bytes_copied;
        vos.fetch_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            &d,
            &a,
            Epoch::LATEST,
            0,
            1 << 20,
        )
        .unwrap();
        // Interior sub-range too: still one covering record.
        vos.fetch_array(
            SimTime::ZERO,
            &mut bd.shard(0),
            oid(),
            &d,
            &a,
            Epoch::LATEST,
            8192,
            64 << 10,
        )
        .unwrap();
        let copied_after = vos.data_plane_stats().bytes_copied + bd.data_plane_stats().bytes_copied;
        assert_eq!(copied_before, copied_after, "no memcpy on covered reads");
    }

    #[test]
    fn list_dkeys_enumerates() {
        let (mut vos, mut bd) = fixture();
        for i in 0..4u64 {
            vos.update_single(
                SimTime::ZERO,
                &mut bd.shard(0),
                oid(),
                DKey::from_u64(i),
                AKey::from_str("e"),
                Epoch(1),
                Bytes::from_static(b"x"),
            )
            .unwrap();
        }
        assert_eq!(vos.list_dkeys(oid()).len(), 4);
        assert!(vos.list_dkeys(ObjectId::new(ObjClass::S1, 99)).is_empty());
    }
}
