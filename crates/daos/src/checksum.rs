//! CRC32C (Castagnoli) — DAOS's default end-to-end checksum.
//!
//! Software table-driven implementation (the timing model charges the
//! hardware-assisted rate; see [`ros2_hw::checksum_cost`]). Checksums are
//! computed on update, stored with the record, and verified on fetch —
//! corrupted media is *detected*, which the failure-injection tests
//! exercise.

/// The CRC32C polynomial (reflected).
const POLY: u32 = 0x82F6_3B78;

/// 8-entry-per-byte lookup table, built at first use.
fn table() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            t[0][i as usize] = crc;
        }
        for i in 0..256 {
            for slice in 1..8 {
                let prev = t[slice - 1][i];
                t[slice][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continues a CRC32C from a previous value (for chunked computation).
pub fn crc32c_append(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !state;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A stored checksum alongside its verification helper.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Checksum(pub u32);

impl Checksum {
    /// Computes the checksum of `data`.
    pub fn of(data: &[u8]) -> Self {
        Checksum(crc32c(data))
    }
    /// Verifies `data` against this checksum.
    pub fn verify(&self, data: &[u8]) -> bool {
        crc32c(data) == self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn chunked_equals_whole() {
        let data: Vec<u8> = (0..10_000).map(|i| (i * 7 % 251) as u8).collect();
        let whole = crc32c(&data);
        let mut st = 0u32;
        for chunk in data.chunks(97) {
            st = crc32c_append(st, chunk);
        }
        assert_eq!(st, whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0x5Au8; 4096];
        let cs = Checksum::of(&data);
        assert!(cs.verify(&data));
        data[1234] ^= 0x01;
        assert!(!cs.verify(&data));
    }

    #[test]
    fn distinct_inputs_distinct_crcs() {
        // Not a strength proof — a regression canary for table construction.
        let a = crc32c(b"object-data-a");
        let b = crc32c(b"object-data-b");
        assert_ne!(a, b);
    }
}
