//! CRC32C (Castagnoli) — DAOS's default end-to-end checksum.
//!
//! The arithmetic lives in [`ros2_buf::crc`]: an SSE4.2 hardware path with
//! runtime detection, a slicing-by-16 software fallback, and a GF(2)
//! combinator — all bit-identical to the original table-driven
//! implementation (proven in `crates/buf/tests/crc_equivalence.rs`). The
//! timing model still charges the hardware-assisted rate
//! ([`ros2_hw::checksum_cost`]). Checksums are computed on update, stored
//! with the record, and *derived* on fetch by combining the store's cached
//! per-chunk CRCs — corrupted media is detected without rescanning clean
//! payloads, which the failure-injection tests exercise.

pub use ros2_buf::{crc32c, crc32c_append, crc32c_combine, crc32c_zeros};

/// A stored checksum alongside its verification helper.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Checksum(pub u32);

impl Checksum {
    /// Computes the checksum of `data`.
    pub fn of(data: &[u8]) -> Self {
        Checksum(crc32c(data))
    }
    /// Verifies `data` against this checksum.
    pub fn verify(&self, data: &[u8]) -> bool {
        crc32c(data) == self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn chunked_equals_whole() {
        let data: Vec<u8> = (0..10_000).map(|i| (i * 7 % 251) as u8).collect();
        let whole = crc32c(&data);
        let mut st = 0u32;
        for chunk in data.chunks(97) {
            st = crc32c_append(st, chunk);
        }
        assert_eq!(st, whole);
    }

    #[test]
    fn combine_equals_whole() {
        let data: Vec<u8> = (0..10_000).map(|i| (i * 13 % 251) as u8).collect();
        let whole = crc32c(&data);
        let mut acc = 0u32;
        for chunk in data.chunks(4096) {
            acc = crc32c_combine(acc, crc32c(chunk), chunk.len() as u64);
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0x5Au8; 4096];
        let cs = Checksum::of(&data);
        assert!(cs.verify(&data));
        data[1234] ^= 0x01;
        assert!(!cs.verify(&data));
    }

    #[test]
    fn distinct_inputs_distinct_crcs() {
        // Not a strength proof — a regression canary for the CRC paths.
        let a = crc32c(b"object-data-a");
        let b = crc32c(b"object-data-b");
        assert_ne!(a, b);
    }
}
