//! # ros2-daos — the DAOS-like object storage engine and client
//!
//! A functional reproduction of the DAOS stack the paper builds on (§2.4,
//! §3.3): a transactional, epoch-versioned object model with a dkey/akey
//! key–array layout, end-to-end CRC32C checksums, SCM + NVMe media tiering
//! (PMDK- and SPDK-style, both in user space), per-target xstreams, and a
//! placement layer that stripes file-data objects across all targets.
//!
//! The [`DaosClient`] is the piece ROS2 offloads to the BlueField-3: it is
//! placement-agnostic and pays its CPU costs on whichever fabric node hosts
//! it, while the [`DaosEngine`] stays unmodified on the storage server —
//! exactly the paper's architecture.

#![warn(missing_docs)]

pub mod checksum;
pub mod client;
pub mod cluster;
pub mod conn_pool;
pub mod engine;
pub mod pipeline;
pub mod types;
pub mod vos;

pub use checksum::{crc32c, crc32c_append, Checksum};
pub use client::{
    whole_batch_error, ClientOp, ClientOpResult, DaosClient, FetchMeta, ObjectClient,
};
pub use cluster::{
    BgService, EngineCluster, EngineHealth, MapSnapshot, PoolMap, PoolMember, RebuildStats,
    ReplicaSet, ScrubOutcome, ScrubStats, ServiceScheduler, MAX_RF,
};
pub use conn_pool::{ConnPool, ConnPoolStats};
pub use engine::{ContainerMeta, DaosEngine, TargetOp, TargetOpResult, ValueKind};
pub use pipeline::{OpRing, RetryPolicy, RetryStats};
pub use types::{
    placement_hash, AKey, DKey, DaosCostModel, DaosError, Epoch, KeyBytes, ObjClass, ObjectId,
    INLINE_KEY,
};
pub use vos::{KeyPair, Location, RecordDump, ScrubCheck, VosStats, VosTarget};
