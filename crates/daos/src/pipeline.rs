//! The client op pipeline: an explicit submission/completion ring.
//!
//! The serial client ([`DaosClient::update`] / [`DaosClient::fetch`]) runs
//! each op's phases synchronously, so a job core is occupied for the whole
//! `client_per_op` cost per op and nothing overlaps the completion path.
//! The [`OpRing`] splits every op into the two halves real RDMA clients
//! have:
//!
//! * **submission** — epoch allocation, route resolution, the client-CPU
//!   submission fraction, payload staging and the descriptor exchange, one
//!   *leg* per replica. All of this happens at [`OpRing::submit`] time, so
//!   up to `depth` ops can be in flight before any completion is reaped.
//! * **completion** — engine execution of each staged leg, the response
//!   push/SEND, and the client-CPU completion fraction (EQ poll / CQ reap)
//!   charged as retire latency. Completions are reaped out of order and
//!   retire in completion order; results are still reported in submission
//!   order so strided callers can stitch.
//!
//! **Resource gating.** The ring never holds more than `depth` ops: a
//! submit into a full ring first retires the earliest-completing in-flight
//! op (its staging slot frees at retire). Within those bounds, contention
//! is entirely emergent from the virtual-time bookings the legs make — the
//! job core serializes submission fractions, each channel's serialized
//! stage orders descriptors, and engine xstreams queue leg execution.
//!
//! **Determinism.** Epochs are allocated at *submission*, in submission
//! order, from the cluster-wide counter — never at leg execution — so the
//! version an update commits at is independent of how deep the ring runs
//! or in which order completions are reaped. That is the invariant that
//! makes a forced-serial drain ([`DaosClient::set_force_serial_pipeline`])
//! bit-identical to the historical path and lets
//! `tests/pipeline_equivalence.rs` hold QD-N runs to it.
//!
//! **Failover: the recovery ladder.** Routing is resolved from the
//! *client's cached* pool-map snapshot (see
//! [`crate::cluster::MapSnapshot`]), not the live map, and every staged
//! leg carries the cache's `map_version` stamp — so a membership change
//! genuinely races in-flight ops. A leg that goes wrong at execution
//! climbs a bounded ladder:
//!
//! 1. **detect** — a dead or black-holed connection is only discovered by
//!    per-leg deadline expiry ([`RetryPolicy::leg_deadline`], counted in
//!    [`RetryStats::timeouts`]); a stale-stamped leg that reaches a live
//!    engine is rejected immediately with [`DaosError::StaleMap`]
//!    (counted in [`RetryStats::fenced`]); a slow engine
//!    (`EngineCluster::set_stall`) completes late — past the deadline it
//!    is *counted* as a timeout but the reply is still accepted.
//! 2. **refresh** — the client pulls the authoritative map (`MapQuery`,
//!    [`RetryPolicy::refresh_rtt`]) and re-resolves the route from the
//!    fresh snapshot.
//! 3. **re-stage** — the leg re-stages with exponential backoff
//!    ([`RetryPolicy::backoff`]) under a bounded budget
//!    ([`RetryPolicy::budget`]); fetches prefer a different surviving
//!    replica (a degraded read), update legs whose engine left the
//!    refreshed placement are dropped (the survivors carry the commit —
//!    exactly what the post-kill route would have produced).
//! 4. **exhaust** — a leg that burns its whole budget fails cleanly with
//!    a typed error ([`RetryStats::exhausted`]); nothing ever hangs.

use bytes::Bytes;
use ros2_fabric::Fabric;
use ros2_sim::{SimDuration, SimTime};

use crate::client::{ClientOp, ClientOpResult, DaosClient};
use crate::cluster::EngineCluster;
use crate::engine::ValueKind;
use crate::types::{AKey, DKey, DaosError, Epoch, ObjectId};

/// Deadlines, backoff bounds and the retry budget for the ring's
/// recovery ladder. Every parameter is virtual-time, so a chaos schedule
/// replays bit-identically.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long a leg waits for any reply before its connection is
    /// declared dead (the timeout rung of the ladder).
    pub leg_deadline: SimDuration,
    /// First-retry backoff; attempt `n` waits `base << (n-1)`, capped.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff wait.
    pub backoff_cap: SimDuration,
    /// Maximum re-stages per leg before the op fails cleanly.
    pub budget: u32,
    /// Cost of the reactive `MapQuery` refresh round-trip, charged on the
    /// failure path only (healthy ops never pay it).
    pub refresh_rtt: SimDuration,
}

impl Default for RetryPolicy {
    /// 1 ms leg deadline (≫ any healthy op latency in the calibrated
    /// models), 20 µs base backoff doubling to a 1 ms cap, 3 retries,
    /// and the gRPC-class 150 µs control RTT for the map refresh.
    fn default() -> Self {
        RetryPolicy {
            leg_deadline: SimDuration::from_millis(1),
            backoff_base: SimDuration::from_micros(20),
            backoff_cap: SimDuration::from_millis(1),
            budget: 3,
            refresh_rtt: SimDuration::from_micros(150),
        }
    }
}

impl RetryPolicy {
    /// The exponential backoff before retry `attempt` (1-based):
    /// `base * 2^(attempt-1)`, saturating, capped at `backoff_cap`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(63);
        let ns = self
            .backoff_base
            .as_nanos()
            .checked_shl(shift)
            .unwrap_or(u64::MAX);
        SimDuration::from_nanos(ns).min(self.backoff_cap)
    }
}

/// Recovery-ladder counters, reported alongside `ResourceStats` wherever
/// clients report (host stacks, DPU lanes, fio worlds) so host-vs-DPU
/// retry behavior is A/B-comparable.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Leg deadlines that expired (dead/black-holed conns, plus slow
    /// engines whose reply landed past the deadline).
    pub timeouts: u64,
    /// `ErrStaleMap` fence replies observed.
    pub fenced: u64,
    /// Legs re-staged by the ladder.
    pub retries: u64,
    /// Exponential-backoff waits taken before re-staging.
    pub backoff_waits: u64,
    /// Reactive `MapQuery` refreshes issued by the ladder.
    pub map_refreshes: u64,
    /// Ops that burned their whole retry budget and failed cleanly.
    pub exhausted: u64,
}

impl RetryStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: RetryStats) {
        self.timeouts += other.timeouts;
        self.fenced += other.fenced;
        self.retries += other.retries;
        self.backoff_waits += other.backoff_waits;
        self.map_refreshes += other.map_refreshes;
        self.exhausted += other.exhausted;
    }
}

/// One staged replica leg of an in-flight update.
struct UpdateLeg {
    /// Engine slot the leg was staged to.
    eng: usize,
    /// Instant the payload is resident server-side.
    staged: SimTime,
    /// The server-side payload handle the leg's pull produced.
    payload: Bytes,
}

/// The phase-specific body of an in-flight op.
enum Body {
    /// An update with its per-replica staged legs.
    Update {
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        /// The cached `map_version` stamped into every leg's descriptor.
        stamp: u64,
        legs: Vec<UpdateLeg>,
    },
    /// A fetch staged to its leader engine.
    Fetch {
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
        /// Leader the descriptor went to.
        eng: usize,
        /// Instant the request reached the server.
        req_at: SimTime,
        /// The cached `map_version` stamped into the descriptor.
        stamp: u64,
        /// Whether the submission-time route was non-degraded (leader
        /// path) — a retry or failover clears the fill eligibility.
        clean: bool,
    },
}

/// An op that has been submitted (staged) but not yet executed.
struct Inflight {
    /// Submission-order slot in the results vector.
    slot: usize,
    /// Instant the op was submitted (orders error retires).
    submitted: SimTime,
    /// Client-CPU completion fraction charged as latency at retire.
    completion: SimDuration,
    body: Body,
}

/// An executed op waiting to retire in completion order.
struct Executed {
    /// Client-visible completion instant (sort key; ties break on slot).
    done: SimTime,
    slot: usize,
    result: ClientOpResult,
}

/// A submission/completion ring over one client job. See the module docs
/// for the phase/state model; drive it with [`OpRing::submit`] +
/// [`OpRing::drain`], or through the one-call wrapper
/// [`DaosClient::execute_pipelined`].
pub struct OpRing {
    job: usize,
    depth: usize,
    /// Staged, not yet executed, in submission order.
    inflight: Vec<Inflight>,
    /// Executed, not yet retired.
    executed: Vec<Executed>,
    /// Final results, indexed by submission slot.
    results: Vec<Option<ClientOpResult>>,
    /// Slots in the order they retired (the completion-order contract).
    retire_log: Vec<usize>,
    /// Fetch legs re-armed onto a surviving replica after a kill.
    leg_rearms: u64,
    /// Per-slot leader-path provenance: true iff the slot is a fetch that
    /// completed on its first attempt over a non-degraded route — the only
    /// completions a read cache may fill from.
    fill_ok: Vec<bool>,
}

impl OpRing {
    /// An empty ring for `job` admitting up to `depth` in-flight ops.
    pub fn new(job: usize, depth: usize) -> Self {
        OpRing {
            job,
            depth: depth.max(1),
            inflight: Vec::new(),
            executed: Vec::new(),
            results: Vec::new(),
            retire_log: Vec::new(),
            leg_rearms: 0,
            fill_ok: Vec::new(),
        }
    }

    /// Configured queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Ops submitted but not yet retired (staged or awaiting retire).
    pub fn in_flight(&self) -> usize {
        self.inflight.len() + self.executed.len()
    }

    /// Slots in retire order — completion-ordered, ties in submission
    /// order. Complete only after [`Self::drain`].
    pub fn retire_log(&self) -> &[usize] {
        &self.retire_log
    }

    /// Fetch legs that re-armed onto a survivor after an engine kill.
    pub fn leg_rearms(&self) -> u64 {
        self.leg_rearms
    }

    /// Per-slot leader-path provenance, aligned with the drained results:
    /// `true` iff that slot is a fetch that completed successfully on its
    /// **first** attempt over a **non-degraded** route. Anything touched
    /// by the retry ladder, a failover replica, or a degraded route reads
    /// correct bytes but is not a safe read-cache fill (the leader may
    /// have moved). Complete only after [`Self::drain`].
    pub fn fill_ok(&self) -> &[bool] {
        &self.fill_ok
    }

    /// Submits one op: allocates its epoch, resolves its route and books
    /// its staging legs. If the ring is full, the earliest-completing
    /// in-flight op retires first to free a slot. Submission-time failures
    /// (oversized I/O, no healthy replica) occupy their slot as immediate
    /// error retires. Under the client's forced-serial mode the op instead
    /// runs start-to-finish on the legacy serial cost path.
    pub fn submit(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        op: ClientOp,
    ) {
        let slot = self.results.len();
        self.results.push(None);
        self.fill_ok.push(false);

        if client.force_serial_pipeline() {
            // The equivalence baseline: today's path, bit for bit.
            let result = match op {
                ClientOp::Update {
                    oid,
                    dkey,
                    akey,
                    kind,
                    data,
                } => ClientOpResult::Update(
                    client.update(fabric, cluster, now, self.job, oid, dkey, akey, kind, data),
                ),
                ClientOp::Fetch {
                    oid,
                    dkey,
                    akey,
                    kind,
                    epoch,
                    len,
                } => {
                    let r = client.fetch_with_meta(
                        fabric, cluster, now, self.job, oid, dkey, akey, kind, epoch, len,
                    );
                    if let Ok((_, _, meta)) = &r {
                        self.fill_ok[slot] = !meta.degraded;
                    }
                    ClientOpResult::Fetch(r.map(|(data, at, _)| (data, at)))
                }
            };
            self.results[slot] = Some(result);
            self.retire_log.push(slot);
            return;
        }

        while self.in_flight() >= self.depth {
            self.complete_one(client, fabric, cluster);
        }

        client.bump_ops(1);
        if let Err(e) = client.check_cluster(cluster) {
            self.retire_error(slot, now, &op, e);
            return;
        }
        // Apply any due delayed RAS delivery, then route from the cached
        // snapshot — the live map is never consulted here, so a
        // membership change after this instant genuinely races the op.
        client.poll_map(now, cluster);
        let stamp = client.cached_map().version();
        match op {
            ClientOp::Update {
                oid,
                dkey,
                akey,
                kind,
                data,
            } => {
                if data.len() as u64 > client.job_buf_len(self.job) {
                    let e = DaosError::Transport("staging buffer too small".into());
                    self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                    self.retire_log.push(slot);
                    return;
                }
                let set = client.cached_map().route_update(&oid);
                if set.is_empty() {
                    let e = DaosError::Transport("no healthy replica".into());
                    self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                    self.retire_log.push(slot);
                    return;
                }
                let epoch = match cluster.next_epoch(client.container()) {
                    Ok(e) => e,
                    Err(e) => {
                        self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                        self.retire_log.push(slot);
                        return;
                    }
                };
                let mut legs = Vec::with_capacity(set.len());
                let mut completion = SimDuration::ZERO;
                for eng in set.iter() {
                    let (t_cpu, comp) = client.client_cpu_split(now, self.job);
                    completion = comp;
                    match client.stage_update_from(fabric, t_cpu, self.job, eng, data.clone()) {
                        Ok((staged, payload)) => legs.push(UpdateLeg {
                            eng,
                            staged,
                            payload,
                        }),
                        Err(e) => {
                            self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                            self.retire_log.push(slot);
                            return;
                        }
                    }
                }
                self.inflight.push(Inflight {
                    slot,
                    submitted: now,
                    completion,
                    body: Body::Update {
                        oid,
                        dkey,
                        akey,
                        kind,
                        epoch,
                        stamp,
                        legs,
                    },
                });
            }
            ClientOp::Fetch {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                len,
            } => {
                if len > client.job_buf_len(self.job) {
                    let e = DaosError::Transport("staging buffer too small".into());
                    self.results[slot] = Some(ClientOpResult::Fetch(Err(e)));
                    self.retire_log.push(slot);
                    return;
                }
                let (set, degraded) = cluster.route_fetch_snapshot_meta(client.cached_map(), &oid);
                let Some(eng) = set.leader() else {
                    let e = DaosError::Transport("no healthy replica".into());
                    self.results[slot] = Some(ClientOpResult::Fetch(Err(e)));
                    self.retire_log.push(slot);
                    return;
                };
                let (t_cpu, completion) = client.client_cpu_split(now, self.job);
                match client.stage_fetch_from(fabric, t_cpu, self.job, eng) {
                    Ok(req_at) => self.inflight.push(Inflight {
                        slot,
                        submitted: now,
                        completion,
                        body: Body::Fetch {
                            oid,
                            dkey,
                            akey,
                            kind,
                            epoch,
                            len,
                            eng,
                            req_at,
                            stamp,
                            clean: !degraded,
                        },
                    }),
                    Err(e) => {
                        self.results[slot] = Some(ClientOpResult::Fetch(Err(e)));
                        self.retire_log.push(slot);
                    }
                }
            }
        }
    }

    /// Records a submission-time cluster error in the op's own slot.
    fn retire_error(&mut self, slot: usize, _now: SimTime, op: &ClientOp, e: DaosError) {
        self.results[slot] = Some(match op {
            ClientOp::Update { .. } => ClientOpResult::Update(Err(e)),
            ClientOp::Fetch { .. } => ClientOpResult::Fetch(Err(e)),
        });
        self.retire_log.push(slot);
    }

    /// Executes every staged op's engine/finish legs (in submission order,
    /// which is what keeps the drain deterministic) and queues them for
    /// completion-order retirement.
    fn poll(&mut self, client: &mut DaosClient, fabric: &mut Fabric, cluster: &mut EngineCluster) {
        let staged = std::mem::take(&mut self.inflight);
        for op in staged {
            let executed = self.execute_op(client, fabric, cluster, op);
            self.executed.push(executed);
        }
    }

    /// Retires exactly one op — the earliest-completing one — executing
    /// staged legs first if nothing is awaiting retirement.
    fn complete_one(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
    ) {
        if self.executed.is_empty() {
            self.poll(client, fabric, cluster);
        }
        if let Some(best) = self
            .executed
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.done, e.slot))
            .map(|(i, _)| i)
        {
            let e = self.executed.remove(best);
            self.results[e.slot] = Some(e.result);
            self.retire_log.push(e.slot);
        }
    }

    /// Executes one op's engine and finish legs, climbing the recovery
    /// ladder (timeout / fence → refresh → re-stage with backoff) for any
    /// leg that goes wrong.
    fn execute_op(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        op: Inflight,
    ) -> Executed {
        let job = self.job;
        match op.body {
            Body::Update {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                stamp,
                legs,
            } => {
                let mut done: Option<SimTime> = None;
                let mut err: Option<DaosError> = None;
                for leg in legs {
                    match self.run_update_leg(
                        client, fabric, cluster, leg, stamp, oid, &dkey, &akey, kind, epoch,
                    ) {
                        Ok(Some(acked)) => done = Some(done.map_or(acked, |d| d.max(acked))),
                        // The replica left the placement (kill or fence):
                        // its leg drops and the survivors carry the commit.
                        Ok(None) => {}
                        Err(e) => err = err.or(Some(e)),
                    }
                }
                let result = ClientOpResult::Update(match (err, done) {
                    (Some(e), _) => Err(e),
                    (None, Some(d)) => Ok(d + op.completion),
                    (None, None) => Err(DaosError::Transport("no healthy replica".into())),
                });
                Executed {
                    done: result_instant(&result, op.submitted),
                    slot: op.slot,
                    result,
                }
            }
            Body::Fetch {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                len,
                mut eng,
                mut req_at,
                mut stamp,
                clean,
            } => {
                let mut attempt: u32 = 0;
                let result = loop {
                    let policy = client.retry_policy();
                    // Classify the leg's fate at this engine.
                    let detect = if !cluster.is_reachable(eng) {
                        // Dead engine or black-holed conn: no reply ever
                        // comes; the client learns by deadline expiry.
                        client.retry.timeouts += 1;
                        req_at + policy.leg_deadline
                    } else {
                        match cluster.engine_mut(eng).fetch_versioned(
                            stamp,
                            req_at,
                            client.container(),
                            oid,
                            &dkey,
                            &akey,
                            kind,
                            epoch,
                            len,
                        ) {
                            Ok((data, ready)) => {
                                // A slow engine completes late; past the
                                // deadline that *counts* as a timeout but
                                // the reply still lands (no re-execution).
                                let stall = cluster.stall(eng);
                                if stall >= policy.leg_deadline {
                                    client.retry.timeouts += 1;
                                }
                                let r = client
                                    .finish_fetch(fabric, job, eng, data, ready + stall, len)
                                    .map(|(bytes, at)| (bytes, at + op.completion));
                                if attempt > 0 {
                                    if let Ok((_, at)) = &r {
                                        client.note_retry_success(*at);
                                    }
                                }
                                self.fill_ok[op.slot] = clean && attempt == 0 && r.is_ok();
                                break ClientOpResult::Fetch(r);
                            }
                            Err(DaosError::StaleMap { .. }) => {
                                // The fence reply is immediate — the
                                // engine rejected before doing any work.
                                client.retry.fenced += 1;
                                req_at
                            }
                            Err(e) => break ClientOpResult::Fetch(Err(e)),
                        }
                    };
                    // The retry rungs: budget, refresh, backoff, re-stage.
                    attempt += 1;
                    if attempt > policy.budget {
                        client.retry.exhausted += 1;
                        break ClientOpResult::Fetch(Err(DaosError::Transport(format!(
                            "retry budget exhausted after {attempt} attempts"
                        ))));
                    }
                    client.refresh_map(cluster);
                    client.retry.backoff_waits += 1;
                    let t_retry = detect + policy.refresh_rtt + policy.backoff(attempt);
                    let set = cluster.route_fetch_snapshot(client.cached_map(), &oid);
                    // Prefer a *different* replica than the one that just
                    // failed (a degraded read when the route is short).
                    let Some(next) = set.iter().find(|&s| s != eng).or_else(|| set.leader()) else {
                        break ClientOpResult::Fetch(Err(DaosError::Transport(
                            "no healthy replica".into(),
                        )));
                    };
                    stamp = client.cached_map().version();
                    let (t_cpu, _) = client.client_cpu_split(t_retry, job);
                    match client.stage_fetch_from(fabric, t_cpu, job, next) {
                        Ok(at) => {
                            client.retry.retries += 1;
                            self.leg_rearms += 1;
                            eng = next;
                            req_at = at;
                        }
                        Err(e) => break ClientOpResult::Fetch(Err(e)),
                    }
                };
                Executed {
                    done: result_instant(&result, op.submitted),
                    slot: op.slot,
                    result,
                }
            }
        }
    }

    /// Runs one update leg up the recovery ladder. `Ok(Some(acked))` is a
    /// replica ack; `Ok(None)` means the leg dropped because its engine
    /// left the placement (killed, or fenced off by a newer map) and the
    /// surviving legs carry the commit; `Err` is a real failure.
    #[allow(clippy::too_many_arguments)]
    fn run_update_leg(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        leg: UpdateLeg,
        mut stamp: u64,
        oid: ObjectId,
        dkey: &DKey,
        akey: &AKey,
        kind: ValueKind,
        epoch: Epoch,
    ) -> Result<Option<SimTime>, DaosError> {
        let job = self.job;
        let UpdateLeg {
            eng,
            mut staged,
            mut payload,
        } = leg;
        let mut attempt: u32 = 0;
        loop {
            let policy = client.retry_policy();
            let detect = if !cluster.is_up(eng) {
                // The replica died after staging: its staged bytes died
                // with it; the survivors carry the commit. (The post-kill
                // map never places the object here, so no retry.)
                return Ok(None);
            } else if cluster.blackholed(eng) {
                // Alive in the map but the conn eats traffic: deadline.
                client.retry.timeouts += 1;
                staged + policy.leg_deadline
            } else {
                match cluster.engine_mut(eng).update_versioned(
                    stamp,
                    staged,
                    client.container(),
                    oid,
                    dkey.clone(),
                    akey.clone(),
                    kind,
                    epoch,
                    payload.clone(),
                ) {
                    Ok(persisted) => {
                        let stall = cluster.stall(eng);
                        if stall >= policy.leg_deadline {
                            client.retry.timeouts += 1;
                        }
                        let acked = client.finish_update(fabric, job, eng, persisted + stall)?;
                        if attempt > 0 {
                            client.note_retry_success(acked);
                        }
                        return Ok(Some(acked));
                    }
                    Err(DaosError::StaleMap { .. }) => {
                        client.retry.fenced += 1;
                        staged
                    }
                    Err(e) => return Err(e),
                }
            };
            attempt += 1;
            if attempt > policy.budget {
                client.retry.exhausted += 1;
                return Err(DaosError::Transport(format!(
                    "retry budget exhausted after {attempt} attempts"
                )));
            }
            client.refresh_map(cluster);
            // If the refreshed map no longer places the object on this
            // replica, the write must NOT land here — drop the leg and
            // let the survivors carry the commit.
            if !client.cached_map().route_update(&oid).contains(eng) {
                return Ok(None);
            }
            client.retry.backoff_waits += 1;
            let t_retry = detect + policy.refresh_rtt + policy.backoff(attempt);
            stamp = client.cached_map().version();
            let (t_cpu, _) = client.client_cpu_split(t_retry, job);
            let data = std::mem::take(&mut payload);
            let (new_staged, new_payload) =
                client.stage_update_from(fabric, t_cpu, job, eng, data)?;
            client.retry.retries += 1;
            self.leg_rearms += 1;
            staged = new_staged;
            payload = new_payload;
        }
    }

    /// Executes everything still staged, retires everything in completion
    /// order, and returns the results in submission order.
    pub fn drain(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
    ) -> Vec<ClientOpResult> {
        self.poll(client, fabric, cluster);
        self.executed.sort_by_key(|e| (e.done, e.slot));
        for e in self.executed.drain(..) {
            self.results[e.slot] = Some(e.result);
            self.retire_log.push(e.slot);
        }
        std::mem::take(&mut self.results)
            .into_iter()
            .map(|r| r.expect("every submitted op retires"))
            .collect()
    }
}

/// The completion instant a result retires at (errors sort at their
/// submission instant — they consumed no completion-side resources).
fn result_instant(result: &ClientOpResult, fallback: SimTime) -> SimTime {
    match result {
        ClientOpResult::Update(Ok(at)) => *at,
        ClientOpResult::Fetch(Ok((_, at))) => *at,
        _ => fallback,
    }
}
