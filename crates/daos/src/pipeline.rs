//! The client op pipeline: an explicit submission/completion ring.
//!
//! The serial client ([`DaosClient::update`] / [`DaosClient::fetch`]) runs
//! each op's phases synchronously, so a job core is occupied for the whole
//! `client_per_op` cost per op and nothing overlaps the completion path.
//! The [`OpRing`] splits every op into the two halves real RDMA clients
//! have:
//!
//! * **submission** — epoch allocation, route resolution, the client-CPU
//!   submission fraction, payload staging and the descriptor exchange, one
//!   *leg* per replica. All of this happens at [`OpRing::submit`] time, so
//!   up to `depth` ops can be in flight before any completion is reaped.
//! * **completion** — engine execution of each staged leg, the response
//!   push/SEND, and the client-CPU completion fraction (EQ poll / CQ reap)
//!   charged as retire latency. Completions are reaped out of order and
//!   retire in completion order; results are still reported in submission
//!   order so strided callers can stitch.
//!
//! **Resource gating.** The ring never holds more than `depth` ops: a
//! submit into a full ring first retires the earliest-completing in-flight
//! op (its staging slot frees at retire). Within those bounds, contention
//! is entirely emergent from the virtual-time bookings the legs make — the
//! job core serializes submission fractions, each channel's serialized
//! stage orders descriptors, and engine xstreams queue leg execution.
//!
//! **Determinism.** Epochs are allocated at *submission*, in submission
//! order, from the cluster-wide counter — never at leg execution — so the
//! version an update commits at is independent of how deep the ring runs
//! or in which order completions are reaped. That is the invariant that
//! makes a forced-serial drain ([`DaosClient::set_force_serial_pipeline`])
//! bit-identical to the historical path and lets
//! `tests/pipeline_equivalence.rs` hold QD-N runs to it.
//!
//! **Failover.** A leg staged before an engine kill and executed after it
//! re-arms instead of failing the op: a fetch leg re-routes through the
//! current pool map (a degraded read) and re-stages its descriptor; a
//! replicated update simply drops the dead replica's leg and commits on
//! the survivors, exactly what the post-kill route would have produced.

use bytes::Bytes;
use ros2_fabric::Fabric;
use ros2_sim::{SimDuration, SimTime};

use crate::client::{ClientOp, ClientOpResult, DaosClient};
use crate::cluster::EngineCluster;
use crate::engine::ValueKind;
use crate::types::{AKey, DKey, DaosError, Epoch, ObjectId};

/// One staged replica leg of an in-flight update.
struct UpdateLeg {
    /// Engine slot the leg was staged to.
    eng: usize,
    /// Instant the payload is resident server-side.
    staged: SimTime,
    /// The server-side payload handle the leg's pull produced.
    payload: Bytes,
}

/// The phase-specific body of an in-flight op.
enum Body {
    /// An update with its per-replica staged legs.
    Update {
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        legs: Vec<UpdateLeg>,
    },
    /// A fetch staged to its leader engine.
    Fetch {
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
        /// Leader the descriptor went to.
        eng: usize,
        /// Instant the request reached the server.
        req_at: SimTime,
    },
}

/// An op that has been submitted (staged) but not yet executed.
struct Inflight {
    /// Submission-order slot in the results vector.
    slot: usize,
    /// Instant the op was submitted (orders error retires).
    submitted: SimTime,
    /// Client-CPU completion fraction charged as latency at retire.
    completion: SimDuration,
    body: Body,
}

/// An executed op waiting to retire in completion order.
struct Executed {
    /// Client-visible completion instant (sort key; ties break on slot).
    done: SimTime,
    slot: usize,
    result: ClientOpResult,
}

/// A submission/completion ring over one client job. See the module docs
/// for the phase/state model; drive it with [`OpRing::submit`] +
/// [`OpRing::drain`], or through the one-call wrapper
/// [`DaosClient::execute_pipelined`].
pub struct OpRing {
    job: usize,
    depth: usize,
    /// Staged, not yet executed, in submission order.
    inflight: Vec<Inflight>,
    /// Executed, not yet retired.
    executed: Vec<Executed>,
    /// Final results, indexed by submission slot.
    results: Vec<Option<ClientOpResult>>,
    /// Slots in the order they retired (the completion-order contract).
    retire_log: Vec<usize>,
    /// Fetch legs re-armed onto a surviving replica after a kill.
    leg_rearms: u64,
}

impl OpRing {
    /// An empty ring for `job` admitting up to `depth` in-flight ops.
    pub fn new(job: usize, depth: usize) -> Self {
        OpRing {
            job,
            depth: depth.max(1),
            inflight: Vec::new(),
            executed: Vec::new(),
            results: Vec::new(),
            retire_log: Vec::new(),
            leg_rearms: 0,
        }
    }

    /// Configured queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Ops submitted but not yet retired (staged or awaiting retire).
    pub fn in_flight(&self) -> usize {
        self.inflight.len() + self.executed.len()
    }

    /// Slots in retire order — completion-ordered, ties in submission
    /// order. Complete only after [`Self::drain`].
    pub fn retire_log(&self) -> &[usize] {
        &self.retire_log
    }

    /// Fetch legs that re-armed onto a survivor after an engine kill.
    pub fn leg_rearms(&self) -> u64 {
        self.leg_rearms
    }

    /// Submits one op: allocates its epoch, resolves its route and books
    /// its staging legs. If the ring is full, the earliest-completing
    /// in-flight op retires first to free a slot. Submission-time failures
    /// (oversized I/O, no healthy replica) occupy their slot as immediate
    /// error retires. Under the client's forced-serial mode the op instead
    /// runs start-to-finish on the legacy serial cost path.
    pub fn submit(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        op: ClientOp,
    ) {
        let slot = self.results.len();
        self.results.push(None);

        if client.force_serial_pipeline() {
            // The equivalence baseline: today's path, bit for bit.
            let result = match op {
                ClientOp::Update {
                    oid,
                    dkey,
                    akey,
                    kind,
                    data,
                } => ClientOpResult::Update(
                    client.update(fabric, cluster, now, self.job, oid, dkey, akey, kind, data),
                ),
                ClientOp::Fetch {
                    oid,
                    dkey,
                    akey,
                    kind,
                    epoch,
                    len,
                } => ClientOpResult::Fetch(client.fetch(
                    fabric, cluster, now, self.job, oid, dkey, akey, kind, epoch, len,
                )),
            };
            self.results[slot] = Some(result);
            self.retire_log.push(slot);
            return;
        }

        while self.in_flight() >= self.depth {
            self.complete_one(client, fabric, cluster);
        }

        client.bump_ops(1);
        if let Err(e) = client.check_cluster(cluster) {
            self.retire_error(slot, now, &op, e);
            return;
        }
        match op {
            ClientOp::Update {
                oid,
                dkey,
                akey,
                kind,
                data,
            } => {
                if data.len() as u64 > client.job_buf_len(self.job) {
                    let e = DaosError::Transport("staging buffer too small".into());
                    self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                    self.retire_log.push(slot);
                    return;
                }
                let set = cluster.route_update(&oid);
                if set.is_empty() {
                    let e = DaosError::Transport("no healthy replica".into());
                    self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                    self.retire_log.push(slot);
                    return;
                }
                let epoch = match cluster.next_epoch(client.container()) {
                    Ok(e) => e,
                    Err(e) => {
                        self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                        self.retire_log.push(slot);
                        return;
                    }
                };
                let mut legs = Vec::with_capacity(set.len());
                let mut completion = SimDuration::ZERO;
                for eng in set.iter() {
                    let (t_cpu, comp) = client.client_cpu_split(now, self.job);
                    completion = comp;
                    match client.stage_update_from(fabric, t_cpu, self.job, eng, data.clone()) {
                        Ok((staged, payload)) => legs.push(UpdateLeg {
                            eng,
                            staged,
                            payload,
                        }),
                        Err(e) => {
                            self.results[slot] = Some(ClientOpResult::Update(Err(e)));
                            self.retire_log.push(slot);
                            return;
                        }
                    }
                }
                self.inflight.push(Inflight {
                    slot,
                    submitted: now,
                    completion,
                    body: Body::Update {
                        oid,
                        dkey,
                        akey,
                        kind,
                        epoch,
                        legs,
                    },
                });
            }
            ClientOp::Fetch {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                len,
            } => {
                if len > client.job_buf_len(self.job) {
                    let e = DaosError::Transport("staging buffer too small".into());
                    self.results[slot] = Some(ClientOpResult::Fetch(Err(e)));
                    self.retire_log.push(slot);
                    return;
                }
                let Some(eng) = cluster.route_fetch(&oid).leader() else {
                    let e = DaosError::Transport("no healthy replica".into());
                    self.results[slot] = Some(ClientOpResult::Fetch(Err(e)));
                    self.retire_log.push(slot);
                    return;
                };
                let (t_cpu, completion) = client.client_cpu_split(now, self.job);
                match client.stage_fetch_from(fabric, t_cpu, self.job, eng) {
                    Ok(req_at) => self.inflight.push(Inflight {
                        slot,
                        submitted: now,
                        completion,
                        body: Body::Fetch {
                            oid,
                            dkey,
                            akey,
                            kind,
                            epoch,
                            len,
                            eng,
                            req_at,
                        },
                    }),
                    Err(e) => {
                        self.results[slot] = Some(ClientOpResult::Fetch(Err(e)));
                        self.retire_log.push(slot);
                    }
                }
            }
        }
    }

    /// Records a submission-time cluster error in the op's own slot.
    fn retire_error(&mut self, slot: usize, _now: SimTime, op: &ClientOp, e: DaosError) {
        self.results[slot] = Some(match op {
            ClientOp::Update { .. } => ClientOpResult::Update(Err(e)),
            ClientOp::Fetch { .. } => ClientOpResult::Fetch(Err(e)),
        });
        self.retire_log.push(slot);
    }

    /// Executes every staged op's engine/finish legs (in submission order,
    /// which is what keeps the drain deterministic) and queues them for
    /// completion-order retirement.
    fn poll(&mut self, client: &mut DaosClient, fabric: &mut Fabric, cluster: &mut EngineCluster) {
        let staged = std::mem::take(&mut self.inflight);
        for op in staged {
            let executed = self.execute_op(client, fabric, cluster, op);
            self.executed.push(executed);
        }
    }

    /// Retires exactly one op — the earliest-completing one — executing
    /// staged legs first if nothing is awaiting retirement.
    fn complete_one(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
    ) {
        if self.executed.is_empty() {
            self.poll(client, fabric, cluster);
        }
        if let Some(best) = self
            .executed
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.done, e.slot))
            .map(|(i, _)| i)
        {
            let e = self.executed.remove(best);
            self.results[e.slot] = Some(e.result);
            self.retire_log.push(e.slot);
        }
    }

    /// Executes one op's engine and finish legs, re-arming or dropping
    /// legs whose engine died since staging.
    fn execute_op(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        op: Inflight,
    ) -> Executed {
        let job = self.job;
        match op.body {
            Body::Update {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                legs,
            } => {
                let mut done: Option<SimTime> = None;
                let mut err: Option<DaosError> = None;
                for leg in legs {
                    if !cluster.is_up(leg.eng) {
                        // The replica died after staging: its staged bytes
                        // died with it; the survivors carry the commit.
                        continue;
                    }
                    let persisted = cluster.engine_mut(leg.eng).update(
                        leg.staged,
                        client.container(),
                        oid,
                        dkey.clone(),
                        akey.clone(),
                        kind,
                        epoch,
                        leg.payload,
                    );
                    match persisted.and_then(|p| client.finish_update(fabric, job, leg.eng, p)) {
                        Ok(acked) => done = Some(done.map_or(acked, |d| d.max(acked))),
                        Err(e) => err = err.or(Some(e)),
                    }
                }
                let result = ClientOpResult::Update(match (err, done) {
                    (Some(e), _) => Err(e),
                    (None, Some(d)) => Ok(d + op.completion),
                    (None, None) => Err(DaosError::Transport("no healthy replica".into())),
                });
                Executed {
                    done: result_instant(&result, op.submitted),
                    slot: op.slot,
                    result,
                }
            }
            Body::Fetch {
                oid,
                dkey,
                akey,
                kind,
                epoch,
                len,
                mut eng,
                mut req_at,
            } => {
                if !cluster.is_up(eng) {
                    // Leader died between staging and execution: re-arm the
                    // leg onto the current route (a degraded read) instead
                    // of failing the op.
                    match cluster.route_fetch(&oid).leader() {
                        Some(new_eng) => {
                            let (t_cpu, _) = client.client_cpu_split(op.submitted, job);
                            match client.stage_fetch_from(fabric, t_cpu, job, new_eng) {
                                Ok(at) => {
                                    self.leg_rearms += 1;
                                    eng = new_eng;
                                    req_at = at;
                                }
                                Err(e) => {
                                    let result = ClientOpResult::Fetch(Err(e));
                                    return Executed {
                                        done: op.submitted,
                                        slot: op.slot,
                                        result,
                                    };
                                }
                            }
                        }
                        None => {
                            let e = DaosError::Transport("no healthy replica".into());
                            return Executed {
                                done: op.submitted,
                                slot: op.slot,
                                result: ClientOpResult::Fetch(Err(e)),
                            };
                        }
                    }
                }
                let fetched = cluster.engine_mut(eng).fetch(
                    req_at,
                    client.container(),
                    oid,
                    &dkey,
                    &akey,
                    kind,
                    epoch,
                    len,
                );
                let result = ClientOpResult::Fetch(fetched.and_then(|(data, ready)| {
                    client
                        .finish_fetch(fabric, job, eng, data, ready, len)
                        .map(|(bytes, at)| (bytes, at + op.completion))
                }));
                Executed {
                    done: result_instant(&result, op.submitted),
                    slot: op.slot,
                    result,
                }
            }
        }
    }

    /// Executes everything still staged, retires everything in completion
    /// order, and returns the results in submission order.
    pub fn drain(
        &mut self,
        client: &mut DaosClient,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
    ) -> Vec<ClientOpResult> {
        self.poll(client, fabric, cluster);
        self.executed.sort_by_key(|e| (e.done, e.slot));
        for e in self.executed.drain(..) {
            self.results[e.slot] = Some(e.result);
            self.retire_log.push(e.slot);
        }
        std::mem::take(&mut self.results)
            .into_iter()
            .map(|r| r.expect("every submitted op retires"))
            .collect()
    }
}

/// The completion instant a result retires at (errors sort at their
/// submission instant — they consumed no completion-side resources).
fn result_instant(result: &ClientOpResult, fallback: SimTime) -> SimTime {
    match result {
        ClientOpResult::Update(Ok(at)) => *at,
        ClientOpResult::Fetch(Ok((_, at))) => *at,
        _ => fallback,
    }
}
