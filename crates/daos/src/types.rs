//! DAOS object-model types: object identifiers and classes, distribution
//! and attribute keys, epochs, and the engine cost model.

use bytes::Bytes;
use ros2_sim::SimDuration;

/// A 128-bit DAOS object identifier. The high word carries the object
/// class; the low word is caller-assigned (DFS stores inode numbers there).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Class and metadata bits.
    pub hi: u64,
    /// Caller-assigned identity.
    pub lo: u64,
}

impl ObjectId {
    /// Builds an id with the given class over a caller value.
    pub fn new(class: ObjClass, lo: u64) -> Self {
        let class_bits: u64 = match class {
            ObjClass::S1 => 1 << 56,
            ObjClass::Sx => 2 << 56,
        };
        ObjectId { hi: class_bits, lo }
    }

    /// The object class encoded in `hi`.
    pub fn class(&self) -> ObjClass {
        match self.hi >> 56 {
            2 => ObjClass::Sx,
            _ => ObjClass::S1,
        }
    }
}

/// Object placement classes (the subset DFS uses).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ObjClass {
    /// Single target: all dkeys on one target (metadata objects).
    S1,
    /// Striped across all targets by dkey (file-data objects) — this is
    /// what lets one file's chunks engage all four SSDs in Fig. 5.
    Sx,
}

/// A distribution key. Records under different dkeys may land on different
/// targets (for striped classes).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DKey(pub Bytes);

impl DKey {
    /// A dkey from a string.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        DKey(Bytes::copy_from_slice(s.as_bytes()))
    }
    /// A dkey from a u64 (DFS chunk indices).
    pub fn from_u64(v: u64) -> Self {
        DKey(Bytes::copy_from_slice(&v.to_le_bytes()))
    }
}

/// An attribute key within a dkey.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AKey(pub Bytes);

impl AKey {
    /// An akey from a string.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        AKey(Bytes::copy_from_slice(s.as_bytes()))
    }
}

/// A transactional epoch. Updates are tagged; fetches read the latest state
/// at or below their epoch (DAOS's versioned object model, §2.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The maximum epoch: reads see everything committed.
    pub const LATEST: Epoch = Epoch(u64::MAX);
}

/// FNV-1a over bytes — the placement hash (stable and documented; the real
/// system uses jump consistent hashing over the pool map).
pub fn placement_hash(oid: &ObjectId, dkey: Option<&DKey>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in oid.hi.to_le_bytes() {
        eat(b);
    }
    for b in oid.lo.to_le_bytes() {
        eat(b);
    }
    if let Some(dk) = dkey {
        for &b in dk.0.iter() {
            eat(b);
        }
    }
    h
}

/// The DAOS engine/client cost model (host-core calibrated; scaled by the
/// executing node's core class).
#[derive(Copy, Clone, Debug)]
pub struct DaosCostModel {
    /// Server-side RPC handling per I/O (CaRT/Mercury decode, dispatch).
    pub server_per_rpc: SimDuration,
    /// VOS index lookup/insert per I/O.
    pub vos_per_op: SimDuration,
    /// Service xstreams per target (DAOS binds targets to xstreams).
    pub xstreams_per_target: usize,
    /// Client-side cost per I/O on the issuing job's core. This is the
    /// full libdfs/libdaos path (RPC pack, EQ poll, completion): ~11 µs on
    /// a host core. On BlueField-3 ARM it scales to ~20 µs, which is the
    /// calibrated source of the paper's 20-40 % DPU small-I/O gap under
    /// RDMA (Fig. 5d).
    pub client_per_op: SimDuration,
    /// Values at or below this size are stored in SCM; larger ones go to
    /// NVMe (the DAOS media-selection policy).
    pub scm_threshold: u64,
    /// Extra multiplier on `client_per_op` when the client runs on DPU ARM
    /// cores, *on top of* the generic core-speed scaling. The libdaos/libdfs
    /// path is pointer-chasing and cache-miss heavy; the A78AE's smaller
    /// last-level cache and lack of DDIO hit it harder than streaming code.
    /// 1.35× lands the Fig. 5d result: DPU RDMA small-I/O trails the host
    /// by 20–40 % while still beating DPU TCP by ≥2×.
    pub dpu_client_overhead: f64,
}

impl DaosCostModel {
    /// Default calibration.
    pub fn default_model() -> Self {
        DaosCostModel {
            server_per_rpc: SimDuration::from_nanos(3_000),
            vos_per_op: SimDuration::from_nanos(2_000),
            xstreams_per_target: 4,
            client_per_op: SimDuration::from_nanos(11_000),
            scm_threshold: 4096,
            dpu_client_overhead: 1.35,
        }
    }
}

/// DAOS-layer errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DaosError {
    /// Unknown pool/container/object handle.
    NoSuchEntity,
    /// Fetch of a range that was never written.
    NotFound,
    /// Stored checksum did not match the data (media corruption detected).
    ChecksumMismatch,
    /// The SCM tier is out of space.
    ScmFull,
    /// The NVMe tier is out of space.
    NvmeFull,
    /// Underlying device error.
    Media(String),
    /// Fabric/transport error.
    Transport(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_class_round_trips() {
        assert_eq!(ObjectId::new(ObjClass::S1, 42).class(), ObjClass::S1);
        assert_eq!(ObjectId::new(ObjClass::Sx, 42).class(), ObjClass::Sx);
        assert_eq!(ObjectId::new(ObjClass::Sx, 42).lo, 42);
    }

    #[test]
    fn placement_hash_is_stable_and_dkey_sensitive() {
        let oid = ObjectId::new(ObjClass::Sx, 7);
        let a = placement_hash(&oid, Some(&DKey::from_u64(0)));
        let b = placement_hash(&oid, Some(&DKey::from_u64(1)));
        let a2 = placement_hash(&oid, Some(&DKey::from_u64(0)));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(placement_hash(&oid, None), a);
    }

    #[test]
    fn dkeys_spread_across_four_targets() {
        // The Fig. 5 four-SSD scaling requires chunk dkeys to hit all
        // targets with reasonable balance.
        let oid = ObjectId::new(ObjClass::Sx, 123);
        let mut counts = [0u32; 4];
        for chunk in 0..4000u64 {
            let t = (placement_hash(&oid, Some(&DKey::from_u64(chunk))) % 4) as usize;
            counts[t] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced {counts:?}");
        }
    }

    #[test]
    fn epoch_ordering() {
        assert!(Epoch(1) < Epoch(2));
        assert!(Epoch(u64::MAX - 1) < Epoch::LATEST);
    }

    #[test]
    fn cost_model_defaults_sane() {
        let m = DaosCostModel::default_model();
        assert!(m.client_per_op > m.server_per_rpc);
        assert_eq!(m.scm_threshold, 4096);
    }
}
