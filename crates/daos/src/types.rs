//! DAOS object-model types: object identifiers and classes, distribution
//! and attribute keys, epochs, and the engine cost model.

use bytes::Bytes;
use ros2_ctl::{WireError, WireReader, WireWriter};
use ros2_sim::SimDuration;

/// A 128-bit DAOS object identifier. The high word carries the object
/// class; the low word is caller-assigned (DFS stores inode numbers there).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Class and metadata bits.
    pub hi: u64,
    /// Caller-assigned identity.
    pub lo: u64,
}

impl ObjectId {
    /// Builds an id with the given class over a caller value.
    pub fn new(class: ObjClass, lo: u64) -> Self {
        let class_bits: u64 = match class {
            ObjClass::S1 => 1 << 56,
            ObjClass::Sx => 2 << 56,
        };
        ObjectId { hi: class_bits, lo }
    }

    /// The object class encoded in `hi`.
    pub fn class(&self) -> ObjClass {
        match self.hi >> 56 {
            2 => ObjClass::Sx,
            _ => ObjClass::S1,
        }
    }
}

/// Object placement classes (the subset DFS uses).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ObjClass {
    /// Single target: all dkeys on one target (metadata objects).
    S1,
    /// Striped across all targets by dkey (file-data objects) — this is
    /// what lets one file's chunks engage all four SSDs in Fig. 5.
    Sx,
}

/// Largest key stored inline (no heap). Covers every key the workspace
/// builds on the hot path: `from_u64` chunk indices (8 bytes), the `"."`
/// superblock dkey, and the `"data"` / `"entry"` / `"superblock"` akeys.
pub const INLINE_KEY: usize = 16;

/// Key byte storage: a small-key representation that keeps keys of up to
/// [`INLINE_KEY`] bytes on the stack (the metadata hot path constructs a
/// dkey per op — the seed heap-allocated every one), falling back to a
/// refcounted [`Bytes`] for longer keys (arbitrary file names).
///
/// Equality, ordering and hashing are over the key *bytes*, independent of
/// representation; construction normalizes (≤ 16 bytes is always inline),
/// so the representation is canonical too.
#[derive(Clone)]
pub enum KeyBytes {
    /// The key bytes held inline: `buf[..len]`.
    Inline {
        /// Number of meaningful bytes in `buf`.
        len: u8,
        /// Inline storage.
        buf: [u8; INLINE_KEY],
    },
    /// A key longer than [`INLINE_KEY`] bytes.
    Heap(Bytes),
}

impl KeyBytes {
    /// Builds a key from a slice (inline when it fits; one copy otherwise).
    pub fn from_slice(s: &[u8]) -> Self {
        if s.len() <= INLINE_KEY {
            let mut buf = [0u8; INLINE_KEY];
            buf[..s.len()].copy_from_slice(s);
            KeyBytes::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            KeyBytes::Heap(Bytes::copy_from_slice(s))
        }
    }

    /// Builds a key from an owned handle (inline when it fits — the handle
    /// is dropped — otherwise adopted without copying).
    pub fn from_bytes(b: Bytes) -> Self {
        if b.len() <= INLINE_KEY {
            KeyBytes::from_slice(&b)
        } else {
            KeyBytes::Heap(b)
        }
    }

    /// The key bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            KeyBytes::Inline { len, buf } => &buf[..*len as usize],
            KeyBytes::Heap(b) => b,
        }
    }

    /// Whether the key is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self, KeyBytes::Inline { .. })
    }
}

impl PartialEq for KeyBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for KeyBytes {}
impl PartialOrd for KeyBytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyBytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}
impl std::hash::Hash for KeyBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}
impl std::fmt::Debug for KeyBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02x?}", self.as_slice())
    }
}

/// A distribution key. Records under different dkeys may land on different
/// targets (for striped classes).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DKey(pub KeyBytes);

impl DKey {
    /// A dkey from a string.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        DKey(KeyBytes::from_slice(s.as_bytes()))
    }
    /// A dkey from a u64 (DFS chunk indices) — allocation-free.
    pub fn from_u64(v: u64) -> Self {
        DKey(KeyBytes::from_slice(&v.to_le_bytes()))
    }
    /// The key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }
    /// Appends this key's wire form (see [`WireWriter::key`]).
    pub fn encode(&self, w: &mut WireWriter) {
        w.key(self.as_bytes());
    }
    /// Reads a dkey from its wire form; short keys land inline.
    pub fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(DKey(KeyBytes::from_bytes(r.key()?)))
    }
}

/// An attribute key within a dkey.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AKey(pub KeyBytes);

impl AKey {
    /// An akey from a string.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        AKey(KeyBytes::from_slice(s.as_bytes()))
    }
    /// The key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }
    /// Appends this key's wire form (see [`WireWriter::key`]).
    pub fn encode(&self, w: &mut WireWriter) {
        w.key(self.as_bytes());
    }
    /// Reads an akey from its wire form; short keys land inline.
    pub fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(AKey(KeyBytes::from_bytes(r.key()?)))
    }
}

/// A transactional epoch. Updates are tagged; fetches read the latest state
/// at or below their epoch (DAOS's versioned object model, §2.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The maximum epoch: reads see everything committed.
    pub const LATEST: Epoch = Epoch(u64::MAX);
}

/// FNV-1a over bytes — the placement hash (stable and documented; the real
/// system uses jump consistent hashing over the pool map).
pub fn placement_hash(oid: &ObjectId, dkey: Option<&DKey>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in oid.hi.to_le_bytes() {
        eat(b);
    }
    for b in oid.lo.to_le_bytes() {
        eat(b);
    }
    if let Some(dk) = dkey {
        for &b in dk.as_bytes() {
            eat(b);
        }
    }
    h
}

/// The DAOS engine/client cost model (host-core calibrated; scaled by the
/// executing node's core class).
#[derive(Copy, Clone, Debug)]
pub struct DaosCostModel {
    /// Server-side RPC handling per I/O (CaRT/Mercury decode, dispatch).
    pub server_per_rpc: SimDuration,
    /// VOS index lookup/insert per I/O.
    pub vos_per_op: SimDuration,
    /// Service xstreams per target (DAOS binds targets to xstreams).
    pub xstreams_per_target: usize,
    /// Client-side cost per I/O on the issuing job's core. This is the
    /// full libdfs/libdaos path (RPC pack, EQ poll, completion): ~11 µs on
    /// a host core. On BlueField-3 ARM it scales to ~20 µs, which is the
    /// calibrated source of the paper's 20-40 % DPU small-I/O gap under
    /// RDMA (Fig. 5d).
    pub client_per_op: SimDuration,
    /// Values at or below this size are stored in SCM; larger ones go to
    /// NVMe (the DAOS media-selection policy).
    pub scm_threshold: u64,
    /// Extra multiplier on `client_per_op` when the client runs on DPU ARM
    /// cores, *on top of* the generic core-speed scaling. The libdaos/libdfs
    /// path is pointer-chasing and cache-miss heavy; the A78AE's smaller
    /// last-level cache and lack of DDIO hit it harder than streaming code.
    /// 1.35× lands the Fig. 5d result: DPU RDMA small-I/O trails the host
    /// by 20–40 % while still beating DPU TCP by ≥2×.
    pub dpu_client_overhead: f64,
    /// Client-side CRC32C cost in picoseconds per byte, calibrated for a
    /// host core (hardware `crc32` instructions stream at ~16 GB/s) and
    /// scaled by the executing core class. Charged only by the
    /// DPU-offloaded client (update checksum + fetch verify on the ARM
    /// cores): the host-placement control arm is pinned bit-identical to
    /// its pre-offload behaviour, whose CRC work lives engine-side — so
    /// the asymmetry is deliberate and conservative against the DPU.
    pub crc_ps_per_byte: u64,
    /// Fraction of `client_per_op` that is *completion-side* work (EQ
    /// poll, CQ reap, callback dispatch). The serial client pays the whole
    /// cost synchronously per op; the pipelined client ([`OpRing`]) books
    /// only the submission fraction `1 - client_completion_frac` on the
    /// job core and charges the completion fraction as retire latency —
    /// batched CQ reaping amortizes the core occupancy across in-flight
    /// ops, which is exactly how real libdaos EQ polling scales with QD.
    ///
    /// [`OpRing`]: crate::pipeline::OpRing
    pub client_completion_frac: f64,
}

impl DaosCostModel {
    /// Default calibration.
    pub fn default_model() -> Self {
        DaosCostModel {
            server_per_rpc: SimDuration::from_nanos(3_000),
            vos_per_op: SimDuration::from_nanos(2_000),
            xstreams_per_target: 4,
            client_per_op: SimDuration::from_nanos(11_000),
            scm_threshold: 4096,
            dpu_client_overhead: 1.35,
            crc_ps_per_byte: 62,
            client_completion_frac: 0.35,
        }
    }
}

/// DAOS-layer errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DaosError {
    /// Unknown pool/container/object handle.
    NoSuchEntity,
    /// Fetch of a range that was never written.
    NotFound,
    /// Stored checksum did not match the data (media corruption detected).
    ChecksumMismatch,
    /// The SCM tier is out of space.
    ScmFull,
    /// The NVMe tier is out of space.
    NvmeFull,
    /// Underlying device error.
    Media(String),
    /// Fabric/transport error.
    Transport(String),
    /// The request carried a stale pool-map revision — or was addressed to
    /// a slot the current map no longer places the object on — and the
    /// engine *fenced* it instead of serving a possibly-misrouted op.
    /// Carries the engine's current revision so the client can tell how
    /// far behind its cached map is before refreshing.
    StaleMap {
        /// The fencing engine's current pool-map revision.
        current: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_class_round_trips() {
        assert_eq!(ObjectId::new(ObjClass::S1, 42).class(), ObjClass::S1);
        assert_eq!(ObjectId::new(ObjClass::Sx, 42).class(), ObjClass::Sx);
        assert_eq!(ObjectId::new(ObjClass::Sx, 42).lo, 42);
    }

    #[test]
    fn placement_hash_is_stable_and_dkey_sensitive() {
        let oid = ObjectId::new(ObjClass::Sx, 7);
        let a = placement_hash(&oid, Some(&DKey::from_u64(0)));
        let b = placement_hash(&oid, Some(&DKey::from_u64(1)));
        let a2 = placement_hash(&oid, Some(&DKey::from_u64(0)));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(placement_hash(&oid, None), a);
    }

    #[test]
    fn dkeys_spread_across_four_targets() {
        // The Fig. 5 four-SSD scaling requires chunk dkeys to hit all
        // targets with reasonable balance.
        let oid = ObjectId::new(ObjClass::Sx, 123);
        let mut counts = [0u32; 4];
        for chunk in 0..4000u64 {
            let t = (placement_hash(&oid, Some(&DKey::from_u64(chunk))) % 4) as usize;
            counts[t] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced {counts:?}");
        }
    }

    #[test]
    fn small_keys_are_inline_and_content_equal() {
        assert!(DKey::from_u64(u64::MAX).0.is_inline());
        assert!(DKey::from_str(".").0.is_inline());
        assert!(AKey::from_str("superblock").0.is_inline());
        assert!(DKey::from_str("sixteen-bytes-ok").0.is_inline());
        let long = DKey::from_str("seventeen-bytes-x");
        assert!(!long.0.is_inline());
        // Equality/ordering are over bytes regardless of representation.
        let heap_form = DKey(KeyBytes::Heap(Bytes::copy_from_slice(b"abc")));
        assert_eq!(heap_form, DKey::from_str("abc"));
        assert!(DKey::from_str("a") < DKey::from_str("ab"));
        assert!(DKey::from_str("ab") < DKey::from_str("b"));
        assert_eq!(DKey::from_u64(7).as_bytes(), &7u64.to_le_bytes());
    }

    #[test]
    fn keys_wire_round_trip() {
        let keys = [
            DKey::from_u64(42),
            DKey::from_str("."),
            DKey::from_str("a-name-well-beyond-sixteen-bytes.bin"),
        ];
        let mut w = WireWriter::new();
        for k in &keys {
            k.encode(&mut w);
        }
        AKey::from_str("data").encode(&mut w);
        let mut r = WireReader::new(w.finish());
        for k in &keys {
            assert_eq!(&DKey::decode(&mut r).unwrap(), k);
        }
        let a = AKey::decode(&mut r).unwrap();
        assert_eq!(a, AKey::from_str("data"));
        assert!(a.0.is_inline(), "short decoded keys must land inline");
    }

    #[test]
    fn epoch_ordering() {
        assert!(Epoch(1) < Epoch(2));
        assert!(Epoch(u64::MAX - 1) < Epoch::LATEST);
    }

    #[test]
    fn cost_model_defaults_sane() {
        let m = DaosCostModel::default_model();
        assert!(m.client_per_op > m.server_per_rpc);
        assert_eq!(m.scm_threshold, 4096);
        assert!(m.client_completion_frac > 0.0 && m.client_completion_frac < 1.0);
    }
}
