//! The engine-side connection pool: bounded resident connection state for
//! multi-client (incast) deployments.
//!
//! One engine node serving hundreds of clients cannot hold an RC queue
//! pair and staging window resident per client forever — that is
//! O(clients × engines) memory pinned on the storage side, exactly the
//! scaling wall the r2pc `connection_pool`/`msg_waiter` structure exists
//! to avoid. This pool keeps the engine's resident per-client session
//! state bounded at **O(capacity)**:
//!
//! * a client's first request **handshakes** (connection setup charged at
//!   the configured control-plane cost) and becomes resident;
//! * a request from a resident client is a **hit** — no extra latency,
//!   the common case the hit-rate gate watches;
//! * admitting a non-resident client when the pool is full **evicts** the
//!   least-recently-used resident session. Eviction destroys only
//!   *session* state (QP, staging registration) — never acked data, which
//!   lives in the engines' VOS — so it is transparent to the client;
//! * an evicted client's next request **reconnects**: the same handshake
//!   cost again, counted separately so sweeps can tell cold connects from
//!   thrash.
//!
//! Determinism: LRU order is tracked by the shared
//! [`ros2_sim::DetLru`] — a monotonic use-tick where ties cannot occur
//! (ticks are unique), so eviction choice is a pure function of the
//! admission history. The resident set is a plain vector scanned
//! linearly — capacities are small by design, and iteration order is
//! deterministic, unlike a hash map's. The DPU read cache
//! (`ros2_dpu::ReadCache`) reuses the same tracker.

use ros2_sim::{DetLru, SimDuration, SimTime};
use ros2_verbs::NodeId;

/// Counters the pool accumulates; sampled by benches and property tests.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ConnPoolStats {
    /// Total admissions (hits + misses).
    pub admits: u64,
    /// Admissions that found the client resident.
    pub hits: u64,
    /// Admissions that had to (re)handshake.
    pub misses: u64,
    /// Residents displaced to make room (LRU choice).
    pub evictions: u64,
    /// Misses by clients that had been resident before — re-handshakes
    /// caused by eviction (or an explicit session kill), not first
    /// contact.
    pub reconnects: u64,
    /// High-water mark of resident sessions (≤ capacity always).
    pub resident_peak: u64,
}

impl ConnPoolStats {
    /// Fraction of admissions served from resident state.
    pub fn hit_rate(&self) -> f64 {
        if self.admits == 0 {
            return 1.0;
        }
        self.hits as f64 / self.admits as f64
    }
}

/// The LRU pool itself. See the module docs for semantics.
#[derive(Debug)]
pub struct ConnPool {
    capacity: usize,
    handshake: SimDuration,
    resident: DetLru<NodeId, ()>,
    /// Clients that have ever held a session — distinguishes first
    /// connects from reconnects after eviction.
    ever_connected: Vec<NodeId>,
    stats: ConnPoolStats,
}

impl ConnPool {
    /// Default connection-establishment cost: one control-plane
    /// request/response exchange plus QP transition work.
    pub const DEFAULT_HANDSHAKE: SimDuration = SimDuration::from_micros(20);

    /// A pool bounding resident sessions at `capacity`, charging
    /// `handshake` per (re)connect.
    pub fn new(capacity: usize, handshake: SimDuration) -> Self {
        assert!(capacity > 0, "a pool needs at least one slot");
        ConnPool {
            capacity,
            handshake,
            resident: DetLru::new(),
            ever_connected: Vec::new(),
            stats: ConnPoolStats::default(),
        }
    }

    /// The configured capacity (resident sessions never exceed it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident sessions.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }

    /// Whether `client` currently holds a resident session.
    pub fn is_resident(&self, client: NodeId) -> bool {
        self.resident.contains(&client)
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ConnPoolStats {
        self.stats
    }

    /// Admits one request from `client` at `now`: returns the instant the
    /// request may proceed — `now` on a hit, `now + handshake` when the
    /// client had to (re)connect. LRU-evicts a resident session if the
    /// pool is full.
    pub fn admit(&mut self, client: NodeId, now: SimTime) -> SimTime {
        self.resident.advance();
        self.stats.admits += 1;
        if self.resident.touch(&client).is_some() {
            self.stats.hits += 1;
            return now;
        }
        self.stats.misses += 1;
        if self.ever_connected.contains(&client) {
            self.stats.reconnects += 1;
        } else {
            self.ever_connected.push(client);
        }
        if self.resident.len() == self.capacity {
            self.resident.evict_lru().expect("full pool has a resident");
            self.stats.evictions += 1;
        }
        self.resident.insert(client, ());
        self.stats.resident_peak = self.stats.resident_peak.max(self.resident.len() as u64);
        now + self.handshake
    }

    /// Drops `client`'s resident session if it has one (a session kill —
    /// fault injection for the property suite). The client's next admit
    /// re-handshakes; acked data is untouched.
    pub fn kill_session(&mut self, client: NodeId) -> bool {
        self.resident.remove(&client).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HS: SimDuration = SimDuration::from_micros(20);

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn first_contact_pays_handshake_then_hits() {
        let mut p = ConnPool::new(2, HS);
        let t0 = SimTime::ZERO;
        assert_eq!(p.admit(n(0), t0), t0 + HS);
        assert_eq!(p.admit(n(0), t0 + HS), t0 + HS);
        let s = p.stats();
        assert_eq!((s.admits, s.hits, s.misses, s.reconnects), (2, 1, 1, 0));
    }

    #[test]
    fn lru_eviction_bounds_residency_and_reconnect_counts() {
        let mut p = ConnPool::new(2, HS);
        let t = SimTime::ZERO;
        p.admit(n(0), t);
        p.admit(n(1), t);
        // 2 is admitted by evicting the LRU (client 0).
        p.admit(n(2), t);
        assert_eq!(p.resident(), 2);
        assert!(!p.is_resident(n(0)));
        assert!(p.is_resident(n(1)) && p.is_resident(n(2)));
        // 0 returns: a reconnect, evicting the new LRU (client 1).
        assert_eq!(p.admit(n(0), t), t + HS);
        let s = p.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.reconnects, 1);
        assert_eq!(s.resident_peak, 2);
    }

    #[test]
    fn touch_order_drives_the_lru_choice() {
        let mut p = ConnPool::new(2, HS);
        let t = SimTime::ZERO;
        p.admit(n(0), t);
        p.admit(n(1), t);
        // Touch 0 so 1 becomes the LRU.
        p.admit(n(0), t);
        p.admit(n(2), t);
        assert!(p.is_resident(n(0)));
        assert!(!p.is_resident(n(1)));
    }

    #[test]
    fn killed_session_reconnects_without_eviction() {
        let mut p = ConnPool::new(4, HS);
        let t = SimTime::ZERO;
        p.admit(n(3), t);
        assert!(p.kill_session(n(3)));
        assert!(!p.kill_session(n(3)), "second kill finds nothing");
        assert_eq!(p.admit(n(3), t), t + HS);
        let s = p.stats();
        assert_eq!((s.reconnects, s.evictions), (1, 0));
    }

    #[test]
    fn hit_rate_is_total_over_admits() {
        let mut p = ConnPool::new(1, HS);
        let t = SimTime::ZERO;
        p.admit(n(0), t);
        p.admit(n(0), t);
        p.admit(n(0), t);
        p.admit(n(1), t);
        assert!((p.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
