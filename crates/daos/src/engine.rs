//! The DAOS I/O engine — the server-side process the paper leaves
//! *unmodified* on the storage node (§3.1) while the client moves to the
//! DPU.
//!
//! One engine serves a pool of targets (one per NVMe SSD, as DAOS binds
//! targets to devices), each with its own VOS, SCM slice and xstream set.
//! RPC handling, VOS indexing and checksum computation all charge CPU on
//! the target's xstreams; media time comes from the bdev/pmem models.

use std::collections::HashMap;

use bytes::Bytes;
use ros2_hw::{checksum_cost, CoreClass, LBA_SIZE};
use ros2_sim::{ResourceStats, ServerPool, SimTime};
use ros2_spdk::BdevLayer;

use crate::types::{
    placement_hash, AKey, DKey, DaosCostModel, DaosError, Epoch, ObjClass, ObjectId,
};
use crate::vos::{VosStats, VosTarget};

/// Update/fetch value kind.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// Whole-value single record.
    Single,
    /// Array extent at a byte offset.
    Array {
        /// Byte offset within the array value.
        offset: u64,
    },
}

/// A container's server-side state.
#[derive(Clone, Debug, Default)]
pub struct ContainerMeta {
    /// Monotonic epoch counter (committed epochs).
    pub epoch_counter: u64,
    /// Snapshots taken (epoch values).
    pub snapshots: Vec<u64>,
}

/// The storage-server engine.
pub struct DaosEngine {
    model: DaosCostModel,
    class: CoreClass,
    /// The pool label.
    pub pool_label: String,
    bdevs: BdevLayer,
    targets: Vec<VosTarget>,
    xstreams: Vec<ServerPool>,
    containers: HashMap<String, ContainerMeta>,
    rpcs: u64,
}

impl DaosEngine {
    /// Creates an engine over `bdevs`, one target per device, with
    /// `scm_bytes_per_target` of SCM each.
    pub fn new(
        pool_label: impl Into<String>,
        bdevs: BdevLayer,
        scm_bytes_per_target: u64,
        model: DaosCostModel,
        class: CoreClass,
    ) -> Self {
        let n = bdevs.count();
        let lba_span = bdevs.array().lba_count_per_device();
        let targets = (0..n)
            .map(|dev| VosTarget::new(dev, 0, lba_span, scm_bytes_per_target, model.scm_threshold))
            .collect();
        let xstreams = (0..n)
            .map(|_| ServerPool::new(model.xstreams_per_target))
            .collect();
        DaosEngine {
            model,
            class,
            pool_label: pool_label.into(),
            bdevs,
            targets,
            xstreams,
            containers: HashMap::new(),
            rpcs: 0,
        }
    }

    /// Number of targets (== SSDs).
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Creates a container.
    pub fn cont_create(&mut self, label: impl Into<String>) -> Result<(), DaosError> {
        self.containers
            .insert(label.into(), ContainerMeta::default());
        Ok(())
    }

    /// Whether a container exists (open handle check).
    pub fn cont_exists(&self, label: &str) -> bool {
        self.containers.contains_key(label)
    }

    /// Allocates the next commit epoch for a container.
    pub fn next_epoch(&mut self, cont: &str) -> Result<Epoch, DaosError> {
        let meta = self
            .containers
            .get_mut(cont)
            .ok_or(DaosError::NoSuchEntity)?;
        meta.epoch_counter += 1;
        Ok(Epoch(meta.epoch_counter))
    }

    /// Records a snapshot at the container's current epoch and returns it.
    pub fn snapshot(&mut self, cont: &str) -> Result<Epoch, DaosError> {
        let meta = self
            .containers
            .get_mut(cont)
            .ok_or(DaosError::NoSuchEntity)?;
        meta.snapshots.push(meta.epoch_counter);
        Ok(Epoch(meta.epoch_counter))
    }

    /// The target index serving `(oid, dkey)` under the object's class.
    pub fn target_of(&self, oid: ObjectId, dkey: Option<&DKey>) -> usize {
        let n = self.targets.len() as u64;
        let h = match oid.class() {
            ObjClass::S1 => placement_hash(&oid, None),
            ObjClass::Sx => placement_hash(&oid, dkey),
        };
        (h % n) as usize
    }

    /// Total RPCs processed.
    pub fn rpcs(&self) -> u64 {
        self.rpcs
    }

    /// Merged VOS stats across targets.
    pub fn vos_stats(&self) -> VosStats {
        let mut out = VosStats::default();
        for t in &self.targets {
            let s = t.stats();
            out.sv_updates += s.sv_updates;
            out.array_updates += s.array_updates;
            out.fetches += s.fetches;
            out.scm_records += s.scm_records;
            out.nvme_records += s.nvme_records;
            out.checksum_failures += s.checksum_failures;
            out.aggregated_extents += s.aggregated_extents;
        }
        out
    }

    fn xstream_grant(&mut self, now: SimTime, target: usize, bytes: u64) -> SimTime {
        let cpu = self.model.server_per_rpc + self.model.vos_per_op + checksum_cost(bytes);
        let cost = self.class.scale(cpu);
        self.xstreams[target].submit(now, cost).finish
    }

    /// Services an OBJ_UPDATE RPC arriving at `now` (data already present
    /// server-side). Returns the persisted-at instant.
    pub fn update(
        &mut self,
        now: SimTime,
        cont: &str,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        if !self.containers.contains_key(cont) {
            return Err(DaosError::NoSuchEntity);
        }
        self.rpcs += 1;
        let target = self.target_of(oid, Some(&dkey));
        let picked = self.xstream_grant(now, target, data.len() as u64);
        match kind {
            ValueKind::Single => self.targets[target].update_single(
                picked,
                &mut self.bdevs,
                oid,
                dkey,
                akey,
                epoch,
                data,
            ),
            ValueKind::Array { offset } => self.targets[target].update_array(
                picked,
                &mut self.bdevs,
                oid,
                dkey,
                akey,
                epoch,
                offset,
                data,
            ),
        }
    }

    /// Services an OBJ_FETCH RPC arriving at `now`. Returns the data and
    /// the instant it is ready to leave the server.
    pub fn fetch(
        &mut self,
        now: SimTime,
        cont: &str,
        oid: ObjectId,
        dkey: &DKey,
        akey: &AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        if !self.containers.contains_key(cont) {
            return Err(DaosError::NoSuchEntity);
        }
        self.rpcs += 1;
        let target = self.target_of(oid, Some(dkey));
        let picked = self.xstream_grant(now, target, len);
        match kind {
            ValueKind::Single => {
                self.targets[target].fetch_single(picked, &mut self.bdevs, oid, dkey, akey, epoch)
            }
            ValueKind::Array { offset } => self.targets[target].fetch_array(
                picked,
                &mut self.bdevs,
                oid,
                dkey,
                akey,
                epoch,
                offset,
                len,
            ),
        }
    }

    /// Lists dkeys of an object (enumerations go to the object's S1 target
    /// or all targets for striped objects).
    pub fn list_dkeys(&mut self, oid: ObjectId) -> Vec<DKey> {
        self.rpcs += 1;
        let mut keys = Vec::new();
        for t in &self.targets {
            keys.extend(t.list_dkeys(oid));
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Punches a `(dkey, akey)`.
    pub fn punch(&mut self, oid: ObjectId, dkey: &DKey, akey: &AKey) -> Result<(), DaosError> {
        self.rpcs += 1;
        let target = self.target_of(oid, Some(dkey));
        self.targets[target].punch(oid, dkey, akey)
    }

    /// Punches an entire object across targets.
    pub fn punch_object(&mut self, oid: ObjectId) {
        self.rpcs += 1;
        for t in &mut self.targets {
            t.punch_object(oid);
        }
    }

    /// Runs epoch aggregation on every target.
    pub fn aggregate(&mut self, boundary: Epoch) {
        for t in &mut self.targets {
            t.aggregate(boundary);
        }
    }

    /// Direct bdev access (tests, corruption injection).
    pub fn bdevs_mut(&mut self) -> &mut BdevLayer {
        &mut self.bdevs
    }

    /// Direct target access (tests).
    pub fn target_mut(&mut self, t: usize) -> &mut VosTarget {
        &mut self.targets[t]
    }

    /// Resets xstream and device timing to t=0; contents are untouched.
    pub fn reset_timing(&mut self) {
        for x in &mut self.xstreams {
            x.reset_timing();
        }
        self.bdevs.array_mut().reset_timing();
    }

    /// Aggregate booking / fast-path counters over the engine's xstream
    /// pools and the backing NVMe channel pools.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for x in &self.xstreams {
            total.merge(x.stats());
        }
        total.merge(self.bdevs.resource_stats());
        total
    }

    /// Aggregate data-plane (copy / zero-copy / CRC) counters over every
    /// target's VOS + SCM pool and the NVMe backing stores.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = ros2_buf::DataPlaneStats::default();
        for t in &self.targets {
            total.merge(t.data_plane_stats());
        }
        total.merge(self.bdevs.data_plane_stats());
        total
    }

    /// Total bytes of NVMe capacity in the pool.
    pub fn pool_capacity(&self) -> u64 {
        self.bdevs.array().capacity() / LBA_SIZE * LBA_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_hw::NvmeModel;
    use ros2_nvme::{DataMode, NvmeArray};

    fn engine(ssds: usize) -> DaosEngine {
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            ssds,
            DataMode::Stored,
        ));
        let mut e = DaosEngine::new(
            "pool0",
            bdevs,
            256 << 20,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        e.cont_create("cont0").unwrap();
        e
    }

    #[test]
    fn update_fetch_round_trip() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 1);
        let epoch = e.next_epoch("cont0").unwrap();
        let data = Bytes::from(vec![0xAA; 128 << 10]);
        let done = e
            .update(
                SimTime::ZERO,
                "cont0",
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                epoch,
                data.clone(),
            )
            .unwrap();
        let (back, at) = e
            .fetch(
                done,
                "cont0",
                oid,
                &DKey::from_u64(0),
                &AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                128 << 10,
            )
            .unwrap();
        assert_eq!(back, data);
        assert!(at > done);
        assert_eq!(e.rpcs(), 2);
    }

    #[test]
    fn striped_objects_engage_all_targets() {
        let mut e = engine(4);
        let oid = ObjectId::new(ObjClass::Sx, 9);
        let mut hit = [false; 4];
        for chunk in 0..64u64 {
            hit[e.target_of(oid, Some(&DKey::from_u64(chunk)))] = true;
        }
        assert!(hit.iter().all(|&h| h), "chunks must stripe: {hit:?}");
        // Single-target objects stay on one target regardless of dkey.
        let s1 = ObjectId::new(ObjClass::S1, 9);
        let t0 = e.target_of(s1, Some(&DKey::from_u64(0)));
        assert!((0..64u64).all(|c| e.target_of(s1, Some(&DKey::from_u64(c))) == t0));
    }

    #[test]
    fn unknown_container_rejected() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 1);
        let err = e
            .update(
                SimTime::ZERO,
                "nope",
                oid,
                DKey::from_u64(0),
                AKey::from_str("a"),
                ValueKind::Single,
                Epoch(1),
                Bytes::new(),
            )
            .unwrap_err();
        assert_eq!(err, DaosError::NoSuchEntity);
    }

    #[test]
    fn epochs_are_monotonic_per_container() {
        let mut e = engine(1);
        e.cont_create("other").unwrap();
        let a = e.next_epoch("cont0").unwrap();
        let b = e.next_epoch("cont0").unwrap();
        let c = e.next_epoch("other").unwrap();
        assert!(b > a);
        assert_eq!(c, Epoch(1), "containers have independent epochs");
    }

    #[test]
    fn snapshot_records_current_epoch() {
        let mut e = engine(1);
        e.next_epoch("cont0").unwrap();
        e.next_epoch("cont0").unwrap();
        let snap = e.snapshot("cont0").unwrap();
        assert_eq!(snap, Epoch(2));
    }

    #[test]
    fn xstreams_serialize_per_target() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 1);
        let epoch = e.next_epoch("cont0").unwrap();
        // Submit more concurrent updates than xstreams; completions spread.
        let mut times: Vec<SimTime> = (0..8u64)
            .map(|i| {
                e.update(
                    SimTime::ZERO,
                    "cont0",
                    oid,
                    DKey::from_u64(i),
                    AKey::from_str("a"),
                    ValueKind::Single,
                    epoch,
                    Bytes::from_static(b"tiny"),
                )
                .unwrap()
            })
            .collect();
        times.sort();
        assert!(times.last().unwrap() > times.first().unwrap());
    }

    #[test]
    fn corruption_detected_through_engine() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 7);
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        let epoch = e.next_epoch("cont0").unwrap();
        e.update(
            SimTime::ZERO,
            "cont0",
            oid,
            d.clone(),
            a.clone(),
            ValueKind::Array { offset: 0 },
            epoch,
            Bytes::from(vec![1u8; 64 << 10]),
        )
        .unwrap();
        let t = e.target_of(oid, Some(&d));
        // Split borrows: temporarily take the bdevs out.
        let mut bd = std::mem::replace(
            &mut e.bdevs,
            BdevLayer::new(NvmeArray::new(
                NvmeModel::enterprise_1600(),
                1,
                DataMode::Pattern,
            )),
        );
        assert!(e.targets[t].corrupt_newest_extent(&mut bd, oid, &d, &a));
        e.bdevs = bd;
        let err = e
            .fetch(
                SimTime::from_secs(1),
                "cont0",
                oid,
                &d,
                &a,
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                64 << 10,
            )
            .unwrap_err();
        assert_eq!(err, DaosError::ChecksumMismatch);
    }
}
