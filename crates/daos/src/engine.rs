//! The DAOS I/O engine — the server-side process the paper leaves
//! *unmodified* on the storage node (§3.1) while the client moves to the
//! DPU.
//!
//! One engine serves a pool of targets (one per NVMe SSD, as DAOS binds
//! targets to devices). Each target forms a self-contained **shard**: its
//! VOS index, its xstream pool and its slice of the bdev layer — no mutable
//! state is shared between shards, which is what lets
//! [`DaosEngine::execute_batch`] fan independent operations out across
//! shards in parallel while staying bit-identical to serial execution
//! (proven by `tests/shard_equivalence.rs`). RPC handling, VOS indexing and
//! checksum computation all charge CPU on the owning target's xstreams;
//! media time comes from the bdev/pmem models.

use std::collections::HashMap;

use bytes::Bytes;
use rayon::prelude::*;
use ros2_hw::{checksum_cost, CoreClass, LBA_SIZE};
use ros2_sim::{ResourceStats, ServerPool, SimTime};
use ros2_spdk::{BdevLayer, ShardBdev};

use crate::cluster::PoolMap;
use crate::types::{
    placement_hash, AKey, DKey, DaosCostModel, DaosError, Epoch, ObjClass, ObjectId,
};
use crate::vos::{VosStats, VosTarget};

/// Update/fetch value kind.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// Whole-value single record.
    Single,
    /// Array extent at a byte offset.
    Array {
        /// Byte offset within the array value.
        offset: u64,
    },
}

/// A container's server-side state.
#[derive(Clone, Debug, Default)]
pub struct ContainerMeta {
    /// Monotonic epoch counter (committed epochs).
    pub epoch_counter: u64,
    /// Snapshots taken (epoch values).
    pub snapshots: Vec<u64>,
}

/// One I/O destined for whichever shard owns its `(oid, dkey)` — the unit
/// of [`DaosEngine::execute_batch`]. Each op carries its own arrival
/// instant so a batch can represent a fan-out of concurrently submitted
/// RPCs.
#[derive(Clone, Debug)]
pub enum TargetOp {
    /// An OBJ_UPDATE (data already present server-side). The epoch is
    /// caller-allocated (see [`DaosEngine::next_epoch`]) so batch
    /// submission order — not shard execution order — fixes epoch values.
    Update {
        /// RPC arrival instant.
        now: SimTime,
        /// Object.
        oid: ObjectId,
        /// Distribution key (drives shard placement).
        dkey: DKey,
        /// Attribute key.
        akey: AKey,
        /// Single value or array extent.
        kind: ValueKind,
        /// Commit epoch.
        epoch: Epoch,
        /// Payload.
        data: Bytes,
    },
    /// An OBJ_FETCH of `len` bytes at `epoch`.
    Fetch {
        /// RPC arrival instant.
        now: SimTime,
        /// Object.
        oid: ObjectId,
        /// Distribution key (drives shard placement).
        dkey: DKey,
        /// Attribute key.
        akey: AKey,
        /// Single value or array extent.
        kind: ValueKind,
        /// Read epoch.
        epoch: Epoch,
        /// Bytes to read.
        len: u64,
    },
}

impl TargetOp {
    fn oid(&self) -> ObjectId {
        match self {
            TargetOp::Update { oid, .. } | TargetOp::Fetch { oid, .. } => *oid,
        }
    }
    fn dkey(&self) -> &DKey {
        match self {
            TargetOp::Update { dkey, .. } | TargetOp::Fetch { dkey, .. } => dkey,
        }
    }
}

/// The per-op outcome of a batch, in submission order.
#[derive(Clone, Debug)]
pub enum TargetOpResult {
    /// Outcome of a [`TargetOp::Update`]: the persisted-at instant.
    Update(Result<SimTime, DaosError>),
    /// Outcome of a [`TargetOp::Fetch`]: the data and its ready instant.
    Fetch(Result<(Bytes, SimTime), DaosError>),
}

impl TargetOpResult {
    /// Unwraps an update result (panics on a fetch result).
    pub fn into_update(self) -> Result<SimTime, DaosError> {
        match self {
            TargetOpResult::Update(r) => r,
            TargetOpResult::Fetch(_) => panic!("expected update result"),
        }
    }
    /// Unwraps a fetch result (panics on an update result).
    pub fn into_fetch(self) -> Result<(Bytes, SimTime), DaosError> {
        match self {
            TargetOpResult::Fetch(r) => r,
            TargetOpResult::Update(_) => panic!("expected fetch result"),
        }
    }
}

/// Executes one op against its shard's VOS/xstreams/bdev slice. This is
/// the single code path both the serial entry points and the batch fan-out
/// run, so batch-of-one is the serial op by construction.
fn exec_on_shard(
    model: &DaosCostModel,
    class: CoreClass,
    vos: &mut VosTarget,
    xstreams: &mut ServerPool,
    media: &mut ShardBdev<'_>,
    op: TargetOp,
) -> TargetOpResult {
    let grant = |xs: &mut ServerPool, now: SimTime, bytes: u64| {
        let cpu = model.server_per_rpc + model.vos_per_op + checksum_cost(bytes);
        xs.submit(now, class.scale(cpu)).finish
    };
    match op {
        TargetOp::Update {
            now,
            oid,
            dkey,
            akey,
            kind,
            epoch,
            data,
        } => {
            let picked = grant(xstreams, now, data.len() as u64);
            TargetOpResult::Update(match kind {
                ValueKind::Single => vos.update_single(picked, media, oid, dkey, akey, epoch, data),
                ValueKind::Array { offset } => {
                    vos.update_array(picked, media, oid, dkey, akey, epoch, offset, data)
                }
            })
        }
        TargetOp::Fetch {
            now,
            oid,
            dkey,
            akey,
            kind,
            epoch,
            len,
        } => {
            let picked = grant(xstreams, now, len);
            TargetOpResult::Fetch(match kind {
                ValueKind::Single => vos.fetch_single(picked, media, oid, &dkey, &akey, epoch),
                ValueKind::Array { offset } => {
                    vos.fetch_array(picked, media, oid, &dkey, &akey, epoch, offset, len)
                }
            })
        }
    }
}

/// The storage-server engine.
pub struct DaosEngine {
    model: DaosCostModel,
    class: CoreClass,
    /// The pool label.
    pub pool_label: String,
    bdevs: BdevLayer,
    targets: Vec<VosTarget>,
    xstreams: Vec<ServerPool>,
    containers: HashMap<String, ContainerMeta>,
    rpcs: u64,
    /// Validation hook: forces [`Self::execute_batch`] onto the serial
    /// shard walk so equivalence tests and A/B perf measurement can compare
    /// against the parallel fan-out.
    force_serial_batch: bool,
    /// The newest map revision the control plane has pushed to this
    /// engine (0 = never observed — fencing disabled, the pre-cluster
    /// direct-drive shape).
    map_version: u64,
    /// The pushed map itself plus this engine's slot and the pool RF —
    /// what the placement fence re-resolves routes against.
    map_view: Option<(PoolMap, usize, usize)>,
    /// Requests rejected with [`DaosError::StaleMap`] (stale stamp or
    /// misrouted update). Fenced requests are *not* counted in
    /// [`Self::rpcs`] — they never reach a target.
    fences: u64,
}

/// One shard's slice of a batch fan-out: its VOS target, xstream pool,
/// disjoint bdev view, and the (original index, op) list routed to it.
type ShardWork<'a> = (
    &'a mut VosTarget,
    &'a mut ServerPool,
    ShardBdev<'a>,
    Vec<(usize, TargetOp)>,
);

impl DaosEngine {
    /// Creates an engine over `bdevs`, one target per device, with
    /// `scm_bytes_per_target` of SCM each.
    pub fn new(
        pool_label: impl Into<String>,
        bdevs: BdevLayer,
        scm_bytes_per_target: u64,
        model: DaosCostModel,
        class: CoreClass,
    ) -> Self {
        let n = bdevs.count();
        let lba_span = bdevs.array().lba_count_per_device();
        let targets = (0..n)
            .map(|dev| VosTarget::new(dev, 0, lba_span, scm_bytes_per_target, model.scm_threshold))
            .collect();
        let xstreams = (0..n)
            .map(|_| ServerPool::new(model.xstreams_per_target))
            .collect();
        DaosEngine {
            model,
            class,
            pool_label: pool_label.into(),
            bdevs,
            targets,
            xstreams,
            containers: HashMap::new(),
            rpcs: 0,
            force_serial_batch: false,
            map_version: 0,
            map_view: None,
            fences: 0,
        }
    }

    /// Number of targets (== SSDs == shards).
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Forces batch execution onto the serial per-shard walk. The parallel
    /// fan-out must be observationally identical (shards share no mutable
    /// state), so this exists only for equivalence tests and A/B perf
    /// measurement.
    pub fn set_force_serial_batch(&mut self, on: bool) {
        self.force_serial_batch = on;
    }

    /// Creates a container.
    pub fn cont_create(&mut self, label: impl Into<String>) -> Result<(), DaosError> {
        self.containers
            .insert(label.into(), ContainerMeta::default());
        Ok(())
    }

    /// Whether a container exists (open handle check).
    pub fn cont_exists(&self, label: &str) -> bool {
        self.containers.contains_key(label)
    }

    /// Allocates the next commit epoch for a container.
    pub fn next_epoch(&mut self, cont: &str) -> Result<Epoch, DaosError> {
        let meta = self
            .containers
            .get_mut(cont)
            .ok_or(DaosError::NoSuchEntity)?;
        meta.epoch_counter += 1;
        Ok(Epoch(meta.epoch_counter))
    }

    /// Advances a container's epoch counter to at least `epoch` without
    /// allocating — how replica engines track the cluster's epoch sequence
    /// so any of them can take over allocation after a failover. Creates
    /// the container if the engine has never seen it (a backfill member
    /// observing its first epoch).
    pub fn observe_epoch(&mut self, cont: &str, epoch: Epoch) {
        if let Some(meta) = self.containers.get_mut(cont) {
            meta.epoch_counter = meta.epoch_counter.max(epoch.0);
        } else {
            self.containers.insert(
                cont.to_string(),
                ContainerMeta {
                    epoch_counter: epoch.0,
                    snapshots: Vec::new(),
                },
            );
        }
    }

    /// Records a snapshot at the container's current epoch and returns it.
    pub fn snapshot(&mut self, cont: &str) -> Result<Epoch, DaosError> {
        let meta = self
            .containers
            .get_mut(cont)
            .ok_or(DaosError::NoSuchEntity)?;
        meta.snapshots.push(meta.epoch_counter);
        Ok(Epoch(meta.epoch_counter))
    }

    /// The shard index serving `(oid, dkey)` under the object's class.
    pub fn target_of(&self, oid: ObjectId, dkey: Option<&DKey>) -> usize {
        let n = self.targets.len() as u64;
        let h = match oid.class() {
            ObjClass::S1 => placement_hash(&oid, None),
            ObjClass::Sx => placement_hash(&oid, dkey),
        };
        (h % n) as usize
    }

    /// Total RPCs processed.
    pub fn rpcs(&self) -> u64 {
        self.rpcs
    }

    /// Control-plane map push: the engine learns the authoritative map,
    /// its own slot in it, and the pool RF. Monotonic — an older push
    /// (out-of-order delivery) is ignored.
    pub fn observe_map(&mut self, map: &PoolMap, slot: usize, rf: usize) {
        if map.version() > self.map_version {
            self.map_version = map.version();
            self.map_view = Some((map.clone(), slot, rf));
        }
    }

    /// The newest map revision this engine has been pushed (0 = never).
    pub fn map_version(&self) -> u64 {
        self.map_version
    }

    /// Requests this engine fenced with [`DaosError::StaleMap`].
    pub fn fences(&self) -> u64 {
        self.fences
    }

    /// The revision fence: a request stamped with an older map revision
    /// than the engine has observed is rejected before it touches any
    /// target — the client must refresh and re-resolve its route. A stamp
    /// *newer* than the engine's view passes (the client can only have
    /// gotten it from the control plane, so the route is at least as
    /// fresh as the engine's own knowledge).
    fn fence_version(&mut self, stamp: u64) -> Result<(), DaosError> {
        if self.map_version > 0 && stamp < self.map_version {
            self.fences += 1;
            return Err(DaosError::StaleMap {
                current: self.map_version,
            });
        }
        Ok(())
    }

    /// Merged VOS stats across targets.
    pub fn vos_stats(&self) -> VosStats {
        let mut out = VosStats::default();
        for t in &self.targets {
            out.merge(t.stats());
        }
        out
    }

    /// Services an OBJ_UPDATE RPC arriving at `now` (data already present
    /// server-side). Returns the persisted-at instant.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        now: SimTime,
        cont: &str,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        if !self.containers.contains_key(cont) {
            return Err(DaosError::NoSuchEntity);
        }
        self.rpcs += 1;
        let target = self.target_of(oid, Some(&dkey));
        let op = TargetOp::Update {
            now,
            oid,
            dkey,
            akey,
            kind,
            epoch,
            data,
        };
        let mut media = self.bdevs.shard(target);
        exec_on_shard(
            &self.model,
            self.class,
            &mut self.targets[target],
            &mut self.xstreams[target],
            &mut media,
            op,
        )
        .into_update()
    }

    /// Services an OBJ_FETCH RPC arriving at `now`. Returns the data and
    /// the instant it is ready to leave the server.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch(
        &mut self,
        now: SimTime,
        cont: &str,
        oid: ObjectId,
        dkey: &DKey,
        akey: &AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        if !self.containers.contains_key(cont) {
            return Err(DaosError::NoSuchEntity);
        }
        self.rpcs += 1;
        let target = self.target_of(oid, Some(dkey));
        let op = TargetOp::Fetch {
            now,
            oid,
            dkey: dkey.clone(),
            akey: akey.clone(),
            kind,
            epoch,
            len,
        };
        let mut media = self.bdevs.shard(target);
        exec_on_shard(
            &self.model,
            self.class,
            &mut self.targets[target],
            &mut self.xstreams[target],
            &mut media,
            op,
        )
        .into_fetch()
    }

    /// [`Self::update`] behind the map fence: the RPC descriptor carries
    /// the client's cached `map_version` stamp, and the engine rejects it
    /// when the stamp is stale — *and also* when the current map no longer
    /// places this object on this engine (so no write ever lands on an
    /// evicted replica, even if the client's stamp happens to be current).
    /// Fenced requests don't count as RPCs and touch no target state.
    #[allow(clippy::too_many_arguments)]
    pub fn update_versioned(
        &mut self,
        stamp: u64,
        now: SimTime,
        cont: &str,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        self.fence_version(stamp)?;
        if let Some((map, slot, rf)) = &self.map_view {
            if !map.replica_set(&oid, *rf).contains(*slot) {
                self.fences += 1;
                return Err(DaosError::StaleMap {
                    current: self.map_version,
                });
            }
        }
        self.update(now, cont, oid, dkey, akey, kind, epoch, data)
    }

    /// [`Self::fetch`] behind the revision fence. Reads are not placement-
    /// fenced: during a degraded window the pre-kill survivors legitimately
    /// serve objects the post-rebuild map will move off them, so only the
    /// revision check applies.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_versioned(
        &mut self,
        stamp: u64,
        now: SimTime,
        cont: &str,
        oid: ObjectId,
        dkey: &DKey,
        akey: &AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        self.fence_version(stamp)?;
        self.fetch(now, cont, oid, dkey, akey, kind, epoch, len)
    }

    /// Executes a batch of independent ops in one fan-out: ops are
    /// partitioned by owning shard (`placement_hash % n`), each shard runs
    /// its ops in submission order against its own VOS/xstreams/bdev slice
    /// (in parallel across shards via rayon), and results come back merged
    /// in submission order.
    ///
    /// Bit-identical to issuing the same ops serially through
    /// [`Self::update`]/[`Self::fetch`]: shards share no mutable state, so
    /// the only cross-op coupling — epoch allocation — is fixed by the
    /// caller before submission (`next_epoch` per update, in order).
    pub fn execute_batch(
        &mut self,
        cont: &str,
        ops: Vec<TargetOp>,
    ) -> Result<Vec<TargetOpResult>, DaosError> {
        if !self.containers.contains_key(cont) {
            return Err(DaosError::NoSuchEntity);
        }
        let total = ops.len();
        self.rpcs += total as u64;
        let shard_count = self.targets.len();
        // Partition by shard, preserving submission order within each.
        let mut per_shard: Vec<Vec<(usize, TargetOp)>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        for (i, op) in ops.into_iter().enumerate() {
            let t = self.target_of(op.oid(), Some(op.dkey()));
            per_shard[t].push((i, op));
        }
        let model = self.model;
        let class = self.class;
        let serial = self.force_serial_batch;

        // Disjoint mutable borrows: one (VOS, xstreams, bdev slice) triple
        // per shard.
        let DaosEngine {
            targets,
            xstreams,
            bdevs,
            ..
        } = self;
        let work: Vec<ShardWork<'_>> = targets
            .iter_mut()
            .zip(xstreams.iter_mut())
            .zip(bdevs.shards())
            .zip(per_shard)
            .map(|(((vos, xs), media), ops)| (vos, xs, media, ops))
            .collect();
        let run = |(vos, xs, mut media, ops): (
            &mut VosTarget,
            &mut ServerPool,
            ShardBdev<'_>,
            Vec<(usize, TargetOp)>,
        )|
         -> Vec<(usize, TargetOpResult)> {
            ops.into_iter()
                .map(|(i, op)| (i, exec_on_shard(&model, class, vos, xs, &mut media, op)))
                .collect()
        };
        let outs: Vec<Vec<(usize, TargetOpResult)>> = if serial || shard_count <= 1 {
            work.into_iter().map(run).collect()
        } else {
            work.into_par_iter().map(run).collect()
        };

        let mut results: Vec<Option<TargetOpResult>> = (0..total).map(|_| None).collect();
        for (i, r) in outs.into_iter().flatten() {
            results[i] = Some(r);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every submitted op produced a result"))
            .collect())
    }

    /// Lists dkeys of an object (enumerations go to the object's S1 target
    /// or all targets for striped objects).
    pub fn list_dkeys(&mut self, oid: ObjectId) -> Vec<DKey> {
        self.rpcs += 1;
        let mut keys = Vec::new();
        for t in &self.targets {
            keys.extend(t.list_dkeys(oid));
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Punches a `(dkey, akey)`.
    pub fn punch(&mut self, oid: ObjectId, dkey: &DKey, akey: &AKey) -> Result<(), DaosError> {
        self.rpcs += 1;
        let target = self.target_of(oid, Some(dkey));
        self.targets[target].punch(oid, dkey, akey)
    }

    /// Punches an entire object across targets.
    pub fn punch_object(&mut self, oid: ObjectId) {
        self.rpcs += 1;
        for t in &mut self.targets {
            t.punch_object(oid);
        }
    }

    /// Runs epoch aggregation on every target.
    pub fn aggregate(&mut self, boundary: Epoch) {
        for t in &mut self.targets {
            t.aggregate(boundary);
        }
    }

    /// Every object id with records on any target (rebuild enumeration),
    /// sorted and deduplicated.
    pub fn list_objects(&self) -> Vec<ObjectId> {
        let mut oids: Vec<ObjectId> = self.targets.iter().flat_map(|t| t.list_objects()).collect();
        oids.sort();
        oids.dedup();
        oids
    }

    /// Reads back every record of `oid` across this engine's shards (a
    /// rebuild source streaming an object's version history). Media read
    /// time is charged; returns the records plus the instant the last
    /// shard finished reading.
    pub fn export_object(
        &mut self,
        now: SimTime,
        oid: ObjectId,
    ) -> Result<(Vec<crate::vos::RecordDump>, SimTime), DaosError> {
        let mut out = Vec::new();
        let mut t_done = now;
        for target in 0..self.targets.len() {
            let mut media = self.bdevs.shard(target);
            let (records, t) = self.targets[target].export_records(now, &mut media, oid)?;
            out.extend(records);
            t_done = t_done.max(t);
        }
        Ok((out, t_done))
    }

    /// Writes re-replicated records of `oid` through the normal per-shard
    /// update path (fresh media placement, fresh checksums) at their
    /// original epochs, charging the usual RPC/VOS/media costs — the
    /// rebuild destination side. Returns the instant the last record
    /// persisted.
    pub fn import_records(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        records: &[crate::vos::RecordDump],
    ) -> Result<SimTime, DaosError> {
        let mut t_done = now;
        for rec in records {
            self.rpcs += 1;
            let target = self.target_of(oid, Some(&rec.dkey));
            let kind = match rec.array_offset {
                None => ValueKind::Single,
                Some(offset) => ValueKind::Array { offset },
            };
            let op = TargetOp::Update {
                now,
                oid,
                dkey: rec.dkey.clone(),
                akey: rec.akey.clone(),
                kind,
                epoch: rec.epoch,
                data: rec.data.clone(),
            };
            let mut media = self.bdevs.shard(target);
            let t = exec_on_shard(
                &self.model,
                self.class,
                &mut self.targets[target],
                &mut self.xstreams[target],
                &mut media,
                op,
            )
            .into_update()?;
            t_done = t_done.max(t);
        }
        Ok(t_done)
    }

    /// Direct bdev access (tests, corruption injection).
    pub fn bdevs_mut(&mut self) -> &mut BdevLayer {
        &mut self.bdevs
    }

    /// Direct target access (tests).
    pub fn target_mut(&mut self, t: usize) -> &mut VosTarget {
        &mut self.targets[t]
    }

    /// Test hook: corrupts the newest extent of `(oid, dkey, akey)` on its
    /// owning shard so the next fetch surfaces a checksum mismatch.
    pub fn corrupt_newest_extent(&mut self, oid: ObjectId, dkey: &DKey, akey: &AKey) -> bool {
        let target = self.target_of(oid, Some(dkey));
        let mut media = self.bdevs.shard(target);
        self.targets[target].corrupt_newest_extent(&mut media, oid, dkey, akey)
    }

    /// Fault-plan bit-rot: corrupts the engine's globally newest extent of
    /// `oid` (max epoch across targets; target order breaks ties), without
    /// the caller needing to know any keys. Returns false if the engine
    /// holds no extents for the object.
    pub fn corrupt_object(&mut self, oid: ObjectId) -> bool {
        let mut best: Option<(usize, DKey, AKey, Epoch)> = None;
        for (i, t) in self.targets.iter().enumerate() {
            if let Some((d, a, e)) = t.newest_extent_key(oid) {
                if best.as_ref().is_none_or(|(_, _, _, b)| e > *b) {
                    best = Some((i, d, a, e));
                }
            }
        }
        let Some((target, dkey, akey, _)) = best else {
            return false;
        };
        let mut media = self.bdevs.shard(target);
        self.targets[target].corrupt_newest_extent(&mut media, oid, &dkey, &akey)
    }

    /// Scrub-verifies every record of `oid` across this engine's shards:
    /// recorded checksums combined against the media stores' cached chunk
    /// CRCs — near-zero payload scanning when the replica is clean.
    pub fn scrub_object(&mut self, oid: ObjectId) -> crate::vos::ScrubCheck {
        let mut check = crate::vos::ScrubCheck::default();
        for target in 0..self.targets.len() {
            let mut media = self.bdevs.shard(target);
            check.merge(self.targets[target].scrub_object(&mut media, oid));
        }
        check
    }

    /// An order-insensitive fingerprint of `oid`'s logical record set on
    /// this engine: per-target fingerprints folded in shard order. The
    /// `(oid, dkey) -> shard` mapping is the same pure hash on every
    /// engine, so replicas holding the same version history fingerprint
    /// identically — without reading any payload bytes.
    pub fn object_fingerprint(&self, oid: ObjectId) -> u64 {
        self.targets.iter().fold(0xcbf2_9ce4_8422_2325, |h, t| {
            (h ^ t.object_fingerprint(oid)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }

    /// A container's epoch/snapshot metadata (aggregation coordination).
    pub fn container_meta(&self, cont: &str) -> Option<&ContainerMeta> {
        self.containers.get(cont)
    }

    /// Resets xstream and device timing to t=0; contents are untouched.
    pub fn reset_timing(&mut self) {
        for x in &mut self.xstreams {
            x.reset_timing();
        }
        self.bdevs.array_mut().reset_timing();
    }

    /// Aggregate booking / fast-path counters over the engine's xstream
    /// pools and the backing NVMe channel pools.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for x in &self.xstreams {
            total.merge(x.stats());
        }
        total.merge(self.bdevs.resource_stats());
        total
    }

    /// Aggregate data-plane (copy / zero-copy / CRC) counters over every
    /// target's VOS + SCM pool and the NVMe backing stores.
    pub fn data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = ros2_buf::DataPlaneStats::default();
        for t in &self.targets {
            total.merge(t.data_plane_stats());
        }
        total.merge(self.bdevs.data_plane_stats());
        total
    }

    /// Total bytes of NVMe capacity in the pool.
    pub fn pool_capacity(&self) -> u64 {
        self.bdevs.array().capacity() / LBA_SIZE * LBA_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_hw::NvmeModel;
    use ros2_nvme::{DataMode, NvmeArray};

    fn engine(ssds: usize) -> DaosEngine {
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            ssds,
            DataMode::Stored,
        ));
        let mut e = DaosEngine::new(
            "pool0",
            bdevs,
            256 << 20,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        e.cont_create("cont0").unwrap();
        e
    }

    #[test]
    fn update_fetch_round_trip() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 1);
        let epoch = e.next_epoch("cont0").unwrap();
        let data = Bytes::from(vec![0xAA; 128 << 10]);
        let done = e
            .update(
                SimTime::ZERO,
                "cont0",
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                epoch,
                data.clone(),
            )
            .unwrap();
        let (back, at) = e
            .fetch(
                done,
                "cont0",
                oid,
                &DKey::from_u64(0),
                &AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                128 << 10,
            )
            .unwrap();
        assert_eq!(back, data);
        assert!(at > done);
        assert_eq!(e.rpcs(), 2);
    }

    #[test]
    fn striped_objects_engage_all_targets() {
        let e = engine(4);
        let oid = ObjectId::new(ObjClass::Sx, 9);
        let mut hit = [false; 4];
        for chunk in 0..64u64 {
            hit[e.target_of(oid, Some(&DKey::from_u64(chunk)))] = true;
        }
        assert!(hit.iter().all(|&h| h), "chunks must stripe: {hit:?}");
        // Single-target objects stay on one target regardless of dkey.
        let s1 = ObjectId::new(ObjClass::S1, 9);
        let t0 = e.target_of(s1, Some(&DKey::from_u64(0)));
        assert!((0..64u64).all(|c| e.target_of(s1, Some(&DKey::from_u64(c))) == t0));
    }

    #[test]
    fn unknown_container_rejected() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 1);
        let err = e
            .update(
                SimTime::ZERO,
                "nope",
                oid,
                DKey::from_u64(0),
                AKey::from_str("a"),
                ValueKind::Single,
                Epoch(1),
                Bytes::new(),
            )
            .unwrap_err();
        assert_eq!(err, DaosError::NoSuchEntity);
        assert_eq!(
            e.execute_batch("nope", Vec::new()).unwrap_err(),
            DaosError::NoSuchEntity
        );
    }

    #[test]
    fn epochs_are_monotonic_per_container() {
        let mut e = engine(1);
        e.cont_create("other").unwrap();
        let a = e.next_epoch("cont0").unwrap();
        let b = e.next_epoch("cont0").unwrap();
        let c = e.next_epoch("other").unwrap();
        assert!(b > a);
        assert_eq!(c, Epoch(1), "containers have independent epochs");
    }

    #[test]
    fn snapshot_records_current_epoch() {
        let mut e = engine(1);
        e.next_epoch("cont0").unwrap();
        e.next_epoch("cont0").unwrap();
        let snap = e.snapshot("cont0").unwrap();
        assert_eq!(snap, Epoch(2));
    }

    #[test]
    fn xstreams_serialize_per_target() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 1);
        let epoch = e.next_epoch("cont0").unwrap();
        // Submit more concurrent updates than xstreams; completions spread.
        let mut times: Vec<SimTime> = (0..8u64)
            .map(|i| {
                e.update(
                    SimTime::ZERO,
                    "cont0",
                    oid,
                    DKey::from_u64(i),
                    AKey::from_str("a"),
                    ValueKind::Single,
                    epoch,
                    Bytes::from_static(b"tiny"),
                )
                .unwrap()
            })
            .collect();
        times.sort();
        assert!(times.last().unwrap() > times.first().unwrap());
    }

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let mut e = engine(4);
        let oid = ObjectId::new(ObjClass::Sx, 11);
        let mut ops = Vec::new();
        for i in 0..32u64 {
            let epoch = e.next_epoch("cont0").unwrap();
            ops.push(TargetOp::Update {
                now: SimTime::ZERO,
                oid,
                dkey: DKey::from_u64(i),
                akey: AKey::from_str("data"),
                kind: ValueKind::Array { offset: 0 },
                epoch,
                data: Bytes::from(vec![i as u8; 8 << 10]),
            });
        }
        for i in 0..32u64 {
            ops.push(TargetOp::Fetch {
                now: SimTime::from_millis(1),
                oid,
                dkey: DKey::from_u64(i),
                akey: AKey::from_str("data"),
                kind: ValueKind::Array { offset: 0 },
                epoch: Epoch::LATEST,
                len: 8 << 10,
            });
        }
        let results = e.execute_batch("cont0", ops).unwrap();
        assert_eq!(results.len(), 64);
        assert_eq!(e.rpcs(), 64);
        for (i, r) in results.into_iter().enumerate() {
            match r {
                TargetOpResult::Update(done) => {
                    assert!(i < 32);
                    assert!(done.unwrap() > SimTime::ZERO);
                }
                TargetOpResult::Fetch(got) => {
                    let want = (i - 32) as u8;
                    let (data, _) = got.unwrap();
                    assert!(data.iter().all(|&b| b == want), "op {i} read wrong bytes");
                }
            }
        }
    }

    #[test]
    fn corruption_detected_through_engine() {
        let mut e = engine(1);
        let oid = ObjectId::new(ObjClass::S1, 7);
        let d = DKey::from_u64(0);
        let a = AKey::from_str("data");
        let epoch = e.next_epoch("cont0").unwrap();
        e.update(
            SimTime::ZERO,
            "cont0",
            oid,
            d.clone(),
            a.clone(),
            ValueKind::Array { offset: 0 },
            epoch,
            Bytes::from(vec![1u8; 64 << 10]),
        )
        .unwrap();
        assert!(e.corrupt_newest_extent(oid, &d, &a));
        let err = e
            .fetch(
                SimTime::from_secs(1),
                "cont0",
                oid,
                &d,
                &a,
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                64 << 10,
            )
            .unwrap_err();
        assert_eq!(err, DaosError::ChecksumMismatch);
    }

    /// A 4-node map for the fencing tests, plus an oid placed on the
    /// given slot under RF=1 and one placed elsewhere.
    fn fence_fixture(slot: usize) -> (PoolMap, ObjectId, ObjectId) {
        let map = PoolMap::new((1..=4).map(ros2_verbs::NodeId).collect());
        let placed = (0..256u64)
            .map(|i| ObjectId::new(ObjClass::S1, i))
            .find(|o| map.replica_set(o, 1).leader() == Some(slot))
            .expect("some oid lands on the slot");
        let elsewhere = (0..256u64)
            .map(|i| ObjectId::new(ObjClass::S1, i))
            .find(|o| map.replica_set(o, 1).leader() != Some(slot))
            .expect("some oid lands elsewhere");
        (map, placed, elsewhere)
    }

    #[test]
    fn stale_stamp_is_fenced_before_any_work() {
        let mut e = engine(1);
        let (mut map, placed, _) = fence_fixture(0);
        e.observe_map(&map, 0, 1);
        assert_eq!(e.map_version(), 1);
        map.kill(3).unwrap();
        e.observe_map(&map, 0, 1);
        assert_eq!(e.map_version(), 2);

        let epoch = e.next_epoch("cont0").unwrap();
        let err = e
            .update_versioned(
                1, // the pre-kill revision
                SimTime::ZERO,
                "cont0",
                placed,
                DKey::from_u64(0),
                AKey::from_str("a"),
                ValueKind::Single,
                epoch,
                Bytes::from_static(b"x"),
            )
            .unwrap_err();
        assert_eq!(err, DaosError::StaleMap { current: 2 });
        let err = e
            .fetch_versioned(
                1,
                SimTime::ZERO,
                "cont0",
                placed,
                &DKey::from_u64(0),
                &AKey::from_str("a"),
                ValueKind::Single,
                Epoch::LATEST,
                1,
            )
            .unwrap_err();
        assert_eq!(err, DaosError::StaleMap { current: 2 });
        // Fenced requests never reach a target: they are not RPCs and the
        // VOS saw nothing.
        assert_eq!(e.rpcs(), 0);
        assert_eq!(e.fences(), 2);
        assert_eq!(e.vos_stats().sv_updates, 0);

        // The current stamp passes the fence and does the work.
        e.update_versioned(
            2,
            SimTime::ZERO,
            "cont0",
            placed,
            DKey::from_u64(0),
            AKey::from_str("a"),
            ValueKind::Single,
            epoch,
            Bytes::from_static(b"x"),
        )
        .unwrap();
        assert_eq!(e.rpcs(), 1);
    }

    #[test]
    fn update_to_evicted_replica_is_fenced_even_with_current_stamp() {
        let mut e = engine(1);
        let (map, placed, elsewhere) = fence_fixture(0);
        e.observe_map(&map, 0, 1);
        let epoch = e.next_epoch("cont0").unwrap();
        // The current map places `elsewhere` on a different slot: even a
        // perfectly fresh stamp must not let the write land here.
        let err = e
            .update_versioned(
                map.version(),
                SimTime::ZERO,
                "cont0",
                elsewhere,
                DKey::from_u64(0),
                AKey::from_str("a"),
                ValueKind::Single,
                epoch,
                Bytes::from_static(b"x"),
            )
            .unwrap_err();
        assert_eq!(
            err,
            DaosError::StaleMap {
                current: map.version()
            }
        );
        assert_eq!(e.fences(), 1);
        assert_eq!(e.rpcs(), 0);
        // …while a correctly placed object writes fine, and reads of a
        // misplaced object are NOT placement-fenced (degraded windows
        // legitimately read from members the next map will rotate out).
        e.update_versioned(
            map.version(),
            SimTime::ZERO,
            "cont0",
            placed,
            DKey::from_u64(0),
            AKey::from_str("a"),
            ValueKind::Single,
            epoch,
            Bytes::from_static(b"x"),
        )
        .unwrap();
        assert_eq!(e.rpcs(), 1);
    }

    #[test]
    fn stamps_newer_than_the_engine_view_pass() {
        let mut e = engine(1);
        let (map, placed, _) = fence_fixture(0);
        e.observe_map(&map, 0, 1);
        let epoch = e.next_epoch("cont0").unwrap();
        // A client can only have gotten a newer stamp from the control
        // plane; the engine's own push just hasn't arrived yet.
        e.update_versioned(
            map.version() + 5,
            SimTime::ZERO,
            "cont0",
            placed,
            DKey::from_u64(0),
            AKey::from_str("a"),
            ValueKind::Single,
            epoch,
            Bytes::from_static(b"x"),
        )
        .unwrap();
        // And an out-of-order (older) push does not regress the view.
        let old = PoolMap::new((1..=4).map(ros2_verbs::NodeId).collect());
        let v = e.map_version();
        let mut newer = old.clone();
        newer.kill(1).unwrap();
        e.observe_map(&newer, 0, 1);
        assert!(e.map_version() > v);
        e.observe_map(&old, 0, 1);
        assert_eq!(e.map_version(), newer.version(), "older push ignored");
    }

    #[test]
    fn unobserved_engines_never_fence() {
        // The pre-cluster direct-drive shape: no map was ever pushed, so
        // versioned entry points behave exactly like the unversioned ones.
        let mut e = engine(1);
        let epoch = e.next_epoch("cont0").unwrap();
        e.update_versioned(
            0,
            SimTime::ZERO,
            "cont0",
            ObjectId::new(ObjClass::S1, 1),
            DKey::from_u64(0),
            AKey::from_str("a"),
            ValueKind::Single,
            epoch,
            Bytes::from_static(b"x"),
        )
        .unwrap();
        assert_eq!(e.fences(), 0);
        assert_eq!(e.rpcs(), 1);
    }
}
