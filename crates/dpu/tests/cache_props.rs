//! Coherence properties for the pool-map-aware DPU read cache.
//!
//! The cache is only allowed to exist because of one theorem: **a cached
//! fetch never returns different bytes than the authoritative uncached
//! fetch would have**, under any interleaving of local writes, engine
//! kills, delayed map pushes, queue depths, and capacity pressure. This
//! suite drives random schedules at that theorem three ways:
//!
//! 1. **Twin-world equivalence** — the same schedule runs in a cached and
//!    an uncached world; every fetch must return identical bytes, and the
//!    final per-key state must agree.
//! 2. **In-world authority check** — after the schedule, every key is read
//!    once through the warm cache and once more after `disable_read_cache`
//!    tears it down; the two reads must match byte-for-byte.
//! 3. **Bit-identical replay** — the cached run repeated from scratch
//!    reproduces the same bytes, instants, and cache counters.
//!
//! Alongside the property, the unit suite pins each invalidation trigger
//! in isolation: write-through punch (including same-call suppression),
//! map-revision change, commit-epoch advance, the degraded-read fill
//! bypass, and the DRAM carve balancing across enable/disable cycles.

use bytes::Bytes;
use proptest::prelude::*;
use ros2_daos::{
    AKey, ClientOp, ClientOpResult, DKey, DaosCostModel, DaosEngine, EngineCluster, Epoch,
    ObjClass, ObjectClient, ObjectId, RetryPolicy, ValueKind,
};
use ros2_dpu::{default_control, DpuAgent, DpuCacheStats, DpuClient, DpuTenantSpec};
use ros2_fabric::{Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{SimDuration, SimTime};
use ros2_spdk::BdevLayer;
use ros2_verbs::{MemoryDomain, NodeId};

const ENGINES: usize = 4;
const KEYS: u64 = 6;
const LEN: usize = 8 << 10;
const HOT: u64 = 11;

fn engine() -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        2,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("c").unwrap();
    e
}

fn storage(name: &str) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores: 48,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 8 << 30,
        dpu_tcp_rx: None,
    }
}

/// A 4-engine RF=2 cluster fronted by one offloaded client on a
/// BlueField-3; `cache` carves that many bytes for the read cache.
fn world(cache: Option<u64>) -> (Fabric, EngineCluster, DpuClient) {
    let mut specs = vec![NodeSpec::bluefield3()];
    let mut servers = Vec::new();
    for i in 0..ENGINES {
        specs.push(storage(&format!("storage{i}")));
        servers.push(NodeId(1 + i as u32));
    }
    let mut fabric = Fabric::new(Transport::Rdma, specs, 29);
    let cluster = EngineCluster::new((0..ENGINES).map(|_| engine()).collect(), servers.clone(), 2);
    let agent = DpuAgent::new(NodeId(0), 30 << 30, default_control(3));
    let mut client = DpuClient::connect_cluster(
        &mut fabric,
        NodeId(0),
        &servers,
        "c",
        1,
        4 << 20,
        MemoryDomain::DpuDram,
        DaosCostModel::default_model(),
        agent,
        vec![DpuTenantSpec::unlimited("t")],
        7,
    )
    .unwrap();
    // The ladder must always outlast a delayed map push — op failures
    // would make the equivalence vacuous at the failed indices.
    client.set_retry_policy(RetryPolicy {
        budget: 10,
        ..RetryPolicy::default()
    });
    if let Some(bytes) = cache {
        client.enable_read_cache(bytes).unwrap();
    }
    (fabric, cluster, client)
}

fn oid() -> ObjectId {
    ObjectId::new(ObjClass::Sx, HOT)
}

fn akey() -> AKey {
    AKey::from_str("data")
}

fn kind() -> ValueKind {
    ValueKind::Array { offset: 0 }
}

/// Seeds every key with a distinct payload; returns the instant after the
/// last ack.
fn seed(f: &mut Fabric, cl: &mut EngineCluster, c: &mut DpuClient) -> SimTime {
    let mut t = SimTime::ZERO;
    for k in 0..KEYS {
        t = c
            .update(
                f,
                cl,
                t,
                0,
                oid(),
                DKey::from_u64(k),
                akey(),
                kind(),
                Bytes::from(vec![k as u8 + 1; LEN]),
            )
            .unwrap();
    }
    t
}

fn fetch_serial(
    f: &mut Fabric,
    cl: &mut EngineCluster,
    c: &mut DpuClient,
    t: SimTime,
    k: u64,
) -> (Bytes, SimTime) {
    c.fetch(
        f,
        cl,
        t,
        0,
        oid(),
        DKey::from_u64(k),
        akey(),
        kind(),
        Epoch::LATEST,
        LEN as u64,
    )
    .unwrap()
}

// ----------------------------------------------------------- property ----

/// One randomly drawn coherence schedule: a flat op tape chunked into
/// pipelined queues of depth `qd`, with at most one mid-tape kill whose
/// map push arrives `map_delay` late.
#[derive(Clone, Debug)]
struct Schedule {
    qd: usize,
    capacity: u64,
    /// `(is_write, key)` per op; writes carry a fresh sequence payload.
    tape: Vec<(bool, u64)>,
    kill_chunk: Option<usize>,
    kill_leader: bool,
    map_delay: SimDuration,
}

fn schedules() -> impl Strategy<Value = Schedule> {
    (
        1usize..9,
        // Small enough that eviction pressure is real (each entry is
        // 8 KiB), large enough that hits happen.
        prop_oneof![Just(16u64 << 10), Just(64 << 10), Just(1 << 20)],
        prop::collection::vec((0u8..10, 0u64..KEYS), 8..40),
        // 0..8 = kill before that chunk; 8 = no kill on this schedule.
        0usize..9,
        any::<bool>(),
        0u64..2_000,
    )
        .prop_map(
            |(qd, capacity, codes, kill_chunk, kill_leader, delay_us)| Schedule {
                qd,
                capacity,
                // ~30 % writes keeps commit epochs moving without starving
                // the hit path.
                tape: codes.into_iter().map(|(w, k)| (w < 3, k)).collect(),
                kill_chunk: (kill_chunk < 8).then_some(kill_chunk),
                kill_leader,
                map_delay: SimDuration::from_micros(delay_us),
            },
        )
}

/// Everything one run produces that the equivalence/replay assertions
/// compare.
#[derive(Clone, Debug, PartialEq)]
struct RunOut {
    /// Bytes of every fetch on the tape, in tape order.
    fetched: Vec<Bytes>,
    /// Completion instants (compared only for replay, not across worlds —
    /// hits legitimately complete earlier than misses).
    times: Vec<SimTime>,
    /// Per-key bytes read back after the tape (warm path).
    finals: Vec<Bytes>,
    /// Per-key bytes read back after `disable_read_cache` — the in-world
    /// authority.
    authority: Vec<Bytes>,
    stats: DpuCacheStats,
    ops: u64,
}

fn run(s: &Schedule, cached: bool) -> RunOut {
    let (mut f, mut cl, mut c) = world(cached.then_some(s.capacity));
    let t = seed(&mut f, &mut cl, &mut c);
    let set = cl.route_update(&oid());
    let victim = if s.kill_leader {
        set.leader().unwrap()
    } else {
        set.iter().nth(1).unwrap()
    };

    let mut now = t + SimDuration::from_millis(1);
    let mut seq = 0u64;
    let mut fetched = Vec::new();
    let mut times = Vec::new();
    for (ci, chunk) in s.tape.chunks(s.qd.max(1)).enumerate() {
        if s.kill_chunk == Some(ci) {
            cl.kill_engine(victim).unwrap();
            c.deliver_map(now + s.map_delay, cl.snapshot_map());
        }
        let ops: Vec<ClientOp> = chunk
            .iter()
            .map(|&(is_write, k)| {
                if is_write {
                    seq += 1;
                    ClientOp::Update {
                        oid: oid(),
                        dkey: DKey::from_u64(k),
                        akey: akey(),
                        kind: kind(),
                        data: Bytes::from(vec![(seq % 250) as u8 + 1; LEN]),
                    }
                } else {
                    ClientOp::Fetch {
                        oid: oid(),
                        dkey: DKey::from_u64(k),
                        akey: akey(),
                        kind: kind(),
                        epoch: Epoch::LATEST,
                        len: LEN as u64,
                    }
                }
            })
            .collect();
        for (i, r) in c
            .execute_pipelined(&mut f, &mut cl, now, 0, ops)
            .into_iter()
            .enumerate()
        {
            match r {
                ClientOpResult::Update(Ok(at)) => now = now.max(at),
                ClientOpResult::Fetch(Ok((b, at))) => {
                    now = now.max(at);
                    fetched.push(b);
                    times.push(at);
                }
                other => panic!("chunk {ci} op {i} failed under the ladder: {other:?}"),
            }
        }
        // Capacity invariant: the byte budget binds after every queue.
        let (resident, capacity) = c.cache_usage();
        assert!(
            resident <= capacity,
            "resident {resident} B exceeds the {capacity} B carve after chunk {ci}"
        );
        now += SimDuration::from_micros(10);
    }

    // Warm read of every key, then the in-world authority: tear the cache
    // down and read again, straight from the engines.
    let mut finals = Vec::new();
    for k in 0..KEYS {
        let (b, at) = fetch_serial(&mut f, &mut cl, &mut c, now, k);
        now = now.max(at);
        finals.push(b);
    }
    let stats = c.cache_stats();
    let ops = c.ops();
    c.disable_read_cache();
    let mut authority = Vec::new();
    for k in 0..KEYS {
        let (b, at) = fetch_serial(&mut f, &mut cl, &mut c, now, k);
        now = now.max(at);
        authority.push(b);
    }
    RunOut {
        fetched,
        times,
        finals,
        authority,
        stats,
        ops,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The theorem, on random schedules: cached and uncached worlds return
    /// identical bytes for every fetch; within the cached world the warm
    /// reads match the post-teardown authoritative reads; and the cached
    /// run replays bit-identically.
    #[test]
    fn cached_fetches_never_diverge_from_authority(sched in schedules()) {
        let cached = run(&sched, true);
        let plain = run(&sched, false);

        // Twin-world equivalence (functional bytes only — timings differ
        // by design: hits complete at DRAM rates).
        prop_assert_eq!(&cached.fetched, &plain.fetched,
            "a cached fetch diverged from the uncached world");
        prop_assert_eq!(&cached.finals, &plain.finals,
            "post-schedule state diverged between the worlds");

        // In-world authority: warm reads vs the engines after teardown.
        prop_assert_eq!(&cached.finals, &cached.authority,
            "a warm read diverged from the post-teardown authoritative read");

        // The uncached world's cache counters must be all-zero — the off
        // path books nothing.
        prop_assert_eq!(plain.stats, DpuCacheStats::default());

        // Bit-identical replay, counters and instants included.
        let again = run(&sched, true);
        prop_assert_eq!(&cached, &again, "cached replay diverged");
    }
}

// ------------------------------------------------------- unit triggers ---

/// Trigger 1 — write-through punch: a local update drops every cached
/// chunk of the record before the write is issued, and a fetch inside the
/// *same* pipelined call neither probes nor fills for a record that call
/// writes.
#[test]
fn same_call_writes_suppress_probe_and_fill() {
    let (mut f, mut cl, mut c) = world(Some(1 << 20));
    let t = seed(&mut f, &mut cl, &mut c);
    // Warm key 0 so the punch has something to drop.
    let (_, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    assert_eq!(c.cache_stats().fills, 1);

    // One call that writes key 0 and fetches it back: the write punches
    // the warm entry, and the fetch is excluded from both probe and fill.
    let ops = vec![
        ClientOp::Update {
            oid: oid(),
            dkey: DKey::from_u64(0),
            akey: akey(),
            kind: kind(),
            data: Bytes::from(vec![99u8; LEN]),
        },
        ClientOp::Fetch {
            oid: oid(),
            dkey: DKey::from_u64(0),
            akey: akey(),
            kind: kind(),
            epoch: Epoch::LATEST,
            len: LEN as u64,
        },
    ];
    let mut now = t + SimDuration::from_millis(1);
    for r in c.execute_pipelined(&mut f, &mut cl, now, 0, ops) {
        if let ClientOpResult::Fetch(Ok((_, at))) | ClientOpResult::Update(Ok(at)) = r {
            now = now.max(at);
        } else {
            panic!("mixed call failed");
        }
    }
    let s = c.cache_stats();
    assert_eq!(
        s.fills, 1,
        "a fetch of a same-call-written record must not fill"
    );
    assert_eq!(s.hits, 0, "…nor probe");
    assert!(s.invalidations >= 1, "the punch must drop the warm entry");

    // The authority settles it: miss → fill → hit, all returning the new
    // bytes.
    let (first, t2) = fetch_serial(&mut f, &mut cl, &mut c, now, 0);
    let (second, _) = fetch_serial(&mut f, &mut cl, &mut c, t2, 0);
    assert_eq!(first, second);
    assert!(first.iter().all(|&b| b == 99));
    assert_eq!(c.cache_stats().hits, 1);
}

/// Trigger 2 — map-revision change: a kill anywhere in the pool bumps the
/// map version; the RAS push sweeps the cache even when the object's own
/// route never moved.
#[test]
fn map_push_invalidates_resident_chunks() {
    let (mut f, mut cl, mut c) = world(Some(1 << 20));
    let t = seed(&mut f, &mut cl, &mut c);
    let (_, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    let (_, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    assert_eq!((c.cache_stats().fills, c.cache_stats().hits), (1, 1));

    // Kill an engine *outside* the hot object's replica set: the route is
    // untouched and not degraded, but the map revision moved.
    let members: Vec<usize> = cl.route_update(&oid()).iter().collect();
    let outsider = (0..ENGINES).find(|s| !members.contains(s)).unwrap();
    cl.kill_engine(outsider).unwrap();
    c.sync_map(cl.snapshot_map());
    let s = c.cache_stats();
    assert!(
        s.invalidations >= 1,
        "the push must sweep stale-map entries"
    );

    // The next fetch misses, refills under the new revision, then hits.
    let (_, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    let (_, _) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    let s = c.cache_stats();
    assert_eq!(s.fills, 2, "a clean route refills under the new map");
    assert_eq!(s.hits, 2);
}

/// Trigger 3 — commit-epoch advance: a write to a *different* record moves
/// the container epoch, which conservatively invalidates every resident
/// chunk (no cross-key shadowing, ever).
#[test]
fn epoch_advance_invalidates_without_a_touch() {
    let (mut f, mut cl, mut c) = world(Some(1 << 20));
    let t = seed(&mut f, &mut cl, &mut c);
    let (_, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    let (_, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    assert_eq!((c.cache_stats().fills, c.cache_stats().hits), (1, 1));

    // Write key 1 — key 0's entry is never touched by the punch, but its
    // commit-epoch stamp is now stale.
    let t = c
        .update(
            &mut f,
            &mut cl,
            t,
            0,
            oid(),
            DKey::from_u64(1),
            akey(),
            kind(),
            Bytes::from(vec![42u8; LEN]),
        )
        .unwrap();
    let (b, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    assert!(b.iter().all(|&x| x == 1), "key 0's bytes are unchanged");
    let s = c.cache_stats();
    assert_eq!(s.hits, 1, "the stale-epoch probe must not hit");
    assert!(s.invalidations >= 1, "…and must drop the stale entry");
    assert_eq!(s.fills, 2, "the miss refills at the advanced epoch");
    let (_, _) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    assert_eq!(c.cache_stats().hits, 2, "the refilled entry serves again");
}

/// Degraded reads bypass the fill path entirely: while the hot object's
/// set is short a member, fetches serve from survivors but never populate
/// the cache; fills resume once the rebuild restores redundancy.
#[test]
fn degraded_reads_never_fill() {
    let (mut f, mut cl, mut c) = world(Some(1 << 20));
    let t = seed(&mut f, &mut cl, &mut c);
    let leader = cl.route_update(&oid()).leader().unwrap();
    cl.kill_engine(leader).unwrap();
    c.sync_map(cl.snapshot_map());

    let t = t + SimDuration::from_millis(1);
    let (b1, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    let (b2, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    assert_eq!(b1, b2);
    assert!(b1.iter().all(|&x| x == 1));
    let s = c.cache_stats();
    assert_eq!(s.fills, 0, "a degraded route must never fill");
    assert_eq!(s.hits, 0);
    assert_eq!(s.misses, 2);
    assert!(cl.rebuild_stats().degraded_fetches >= 1);

    // Rebuild restores redundancy; the next push re-arms the fill path.
    let t = cl.rebuild(&mut f, t).unwrap();
    c.sync_map(cl.snapshot_map());
    let (_, t) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    let (_, _) = fetch_serial(&mut f, &mut cl, &mut c, t, 0);
    let s = c.cache_stats();
    assert_eq!(s.fills, 1, "a healthy route fills again after rebuild");
    assert_eq!(s.hits, 1);
}

/// The DRAM carve balances across arbitrarily many enable/resize/disable
/// cycles: staging headroom returns to baseline, the agent never
/// over-releases, and no carve residue accumulates.
#[test]
fn cache_carve_balances_across_cycles() {
    let (mut f, mut cl, mut c) = world(None);
    let _ = seed(&mut f, &mut cl, &mut c);
    let baseline = c.agent().dram_used();
    assert_eq!(c.agent().cache_reserved(), 0);
    for i in 1..=6u64 {
        c.enable_read_cache(i * (64 << 20)).unwrap();
        assert_eq!(c.agent().cache_reserved(), i * (64 << 20));
        assert_eq!(c.agent().staging_used(), baseline);
        c.disable_read_cache();
        assert_eq!(c.agent().dram_used(), baseline, "cycle {i} leaked carve");
        assert_eq!(c.agent().cache_reserved(), 0);
    }
    assert_eq!(c.agent().over_releases.get(), 0);
    // A carve that cannot fit fails cleanly with no residue.
    assert!(c.enable_read_cache(64 << 30).is_err());
    assert_eq!(c.agent().dram_used(), baseline);
    assert_eq!(c.agent().cache_reserved(), 0);
}
