//! Tenant-isolation hardening: token-bucket refill boundaries, the
//! rkey-expiry / in-flight-pull race, and a property proof that admission
//! never over-grants a tenant's `QosLimits` over *any* window.

use bytes::Bytes;
use proptest::prelude::*;
use ros2_dpu::{DpuAgent, DpuClient, DpuTenantSpec, QosLimits, TenantManager};
use ros2_fabric::{Dir, Fabric, FabricError, NodeSpec};
use ros2_hw::{CoreClass, Transport};
use ros2_sim::{SimDuration, SimTime};
use ros2_verbs::{AccessFlags, MemoryDomain, NodeId, VerbsError};

fn dpu_world() -> Fabric {
    Fabric::new(
        Transport::Rdma,
        vec![NodeSpec::bluefield3(), NodeSpec::storage_server()],
        21,
    )
}

// ---------------------------------------------------- refill boundaries --

/// Exact boundary behaviour of the admission buckets: a drained bucket's
/// next grant lands exactly one refill quantum later; admitting at
/// precisely the refill instant is not throttled; one nanosecond earlier
/// is.
#[test]
fn token_bucket_refill_boundaries_are_exact() {
    let mut f = dpu_world();
    let mut tm = TenantManager::new(NodeId(0));
    tm.register(
        &mut f,
        "t",
        QosLimits {
            ops_per_sec: 1_000_000,
            bytes_per_sec: 1 << 30, // 1 GiB/s
            burst: (1 << 20, 1 << 20),
        },
        SimDuration::from_secs(5),
    );
    // Drain the 1 MiB byte burst at t=0.
    assert_eq!(tm.admit(SimTime::ZERO, "t", 1 << 20), Some(SimTime::ZERO));
    // The next 1 MiB needs exactly 1 MiB / 1 GiB/s ≈ 976_562.5 µs-worth of
    // refill; integer token-nanos round the deficit up by ≤ 1 ns.
    let expected = SimTime::from_nanos((1u64 << 20) * 1_000_000_000 / (1 << 30));
    let g = tm.admit(SimTime::ZERO, "t", 1 << 20).unwrap();
    assert!(
        g >= expected && g <= expected + SimDuration::from_nanos(1),
        "grant {g} vs exact refill boundary {expected}"
    );
    // At the grant instant the bucket is empty again: an admit exactly
    // there queues a further full quantum, never a partial one.
    let g2 = tm.admit(g, "t", 1 << 20).unwrap();
    assert!(
        g2.saturating_since(g) >= SimDuration::from_nanos(976_562),
        "second grant {g2} must wait a full quantum after {g}"
    );
    let ctx = tm.tenant("t").unwrap();
    assert_eq!(ctx.qos.admitted, (3, 3 << 20));
    assert_eq!(ctx.qos.throttled, 2);
}

/// The ops bucket binds independently of the bytes bucket: tiny ops at a
/// high byte allowance still pace at ops_per_sec.
#[test]
fn ops_bucket_binds_for_tiny_ops() {
    let mut f = dpu_world();
    let mut tm = TenantManager::new(NodeId(0));
    tm.register(
        &mut f,
        "meta",
        QosLimits {
            ops_per_sec: 1000,
            bytes_per_sec: u64::MAX / 2,
            burst: (1, 1 << 30),
        },
        SimDuration::from_secs(5),
    );
    let mut last = SimTime::ZERO;
    for i in 0..5u64 {
        let g = tm.admit(SimTime::ZERO, "meta", 16).unwrap();
        if i > 0 {
            assert_eq!(
                g.saturating_since(last),
                SimDuration::from_millis(1),
                "op {i} must wait exactly one 1 ms ops quantum"
            );
        }
        last = g;
    }
}

// ---------------------------------------------- rkey expiry vs. pulls ----

/// The race the scoped-rkey design must survive: a pull that *lands* after
/// the rkey's expiry fails at the NIC even though it was posted while the
/// key was valid — and the violation is visible in the NIC counters.
#[test]
fn rkey_expiry_races_an_in_flight_pull() {
    let mut f = dpu_world();
    let mut tm = TenantManager::new(NodeId(0));
    let pd = tm.register(
        &mut f,
        "t",
        QosLimits::unlimited(),
        SimDuration::from_micros(50),
    );
    let buf = f
        .rdma_mut(NodeId(0))
        .alloc_buffer(1 << 20, MemoryDomain::DpuDram)
        .unwrap();
    let expiry = tm.rkey_expiry(SimTime::ZERO, "t").unwrap();
    let (_, rkey, _) = f
        .rdma_mut(NodeId(0))
        .reg_mr(pd, buf, 1 << 20, AccessFlags::remote_rw(), expiry)
        .unwrap();
    f.rdma_mut(NodeId(0))
        .write_local(buf, &[7u8; 1 << 20])
        .unwrap();
    let pd_srv = f.rdma_mut(NodeId(1)).alloc_pd("engine:t");
    let conn = f.connect(NodeId(0), NodeId(1), pd, pd_srv).unwrap();

    // A pull issued immediately reaches the NIC before the 50 µs expiry.
    let ok = f.rdma_read(SimTime::ZERO, conn, Dir::BtoA, rkey, buf, 4096);
    assert!(ok.is_ok(), "pull well inside the scope must succeed");

    // A pull *posted* while the rkey is still valid (48 µs) whose request
    // capsule reaches the NIC after expiry (~52 µs: initiator CPU +
    // serialized stage + wire + path): the NIC validates at access time,
    // so the in-flight op dies even though posting succeeded.
    let posted = SimTime::from_micros(48);
    let err = f
        .rdma_read(posted, conn, Dir::BtoA, rkey, buf, 1 << 20)
        .unwrap_err();
    assert_eq!(err, FabricError::Verbs(VerbsError::RkeyExpired));
    assert_eq!(f.node(NodeId(0)).rdma.violations().expired_rkey, 1);
}

/// The offloaded client closes that race by refreshing inside the margin:
/// the same short scope, driven through `DpuClient`, never trips the NIC.
#[test]
fn dpu_client_refresh_outruns_the_race() {
    use ros2_daos::{
        AKey, DKey, DaosCostModel, DaosEngine, EngineCluster, ObjClass, ObjectClient, ObjectId,
        ValueKind,
    };
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_spdk::BdevLayer;
    let mut fabric = dpu_world();
    let bdevs = BdevLayer::new(NvmeArray::new(
        ros2_hw::NvmeModel::enterprise_1600(),
        1,
        DataMode::Stored,
    ));
    let mut engine = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    engine.cont_create("c").unwrap();
    let mut cluster = EngineCluster::single(engine);
    let agent = DpuAgent::new(NodeId(0), 30 << 30, ros2_dpu::default_control(3));
    let mut client = DpuClient::connect(
        &mut fabric,
        NodeId(0),
        NodeId(1),
        "c",
        1,
        4 << 20,
        MemoryDomain::DpuDram,
        DaosCostModel::default_model(),
        agent,
        vec![DpuTenantSpec {
            name: "t".into(),
            qos: QosLimits::unlimited(),
            rkey_scope: SimDuration::from_millis(60),
        }],
        7,
    )
    .unwrap();
    let oid = ObjectId::new(ObjClass::Sx, 1);
    let mut t = SimTime::ZERO;
    for i in 0..20u64 {
        t = client
            .update(
                &mut fabric,
                &mut cluster,
                t.max(SimTime::from_millis(i * 20)),
                0,
                oid,
                DKey::from_u64(i),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![9u8; 256 << 10]),
            )
            .unwrap();
    }
    assert!(client.dpu_stats().rkey_refreshes > 0);
    assert_eq!(
        fabric.node(NodeId(0)).rdma.violations().total(),
        0,
        "refresh must always beat expiry"
    );
}

// ------------------------------------------- QD > 1 lane interleaving ----

/// An offloaded world for driving `execute_pipelined` directly: one
/// engine, one lane, one job.
fn offloaded_world(
    qos: QosLimits,
    rkey_scope: SimDuration,
) -> (Fabric, ros2_daos::EngineCluster, DpuClient) {
    use ros2_daos::{DaosCostModel, DaosEngine, EngineCluster};
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_spdk::BdevLayer;
    let mut fabric = dpu_world();
    let bdevs = BdevLayer::new(NvmeArray::new(
        ros2_hw::NvmeModel::enterprise_1600(),
        1,
        DataMode::Stored,
    ));
    let mut engine = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    engine.cont_create("c").unwrap();
    let cluster = EngineCluster::single(engine);
    let agent = DpuAgent::new(NodeId(0), 30 << 30, ros2_dpu::default_control(3));
    let client = DpuClient::connect(
        &mut fabric,
        NodeId(0),
        NodeId(1),
        "c",
        1,
        4 << 20,
        MemoryDomain::DpuDram,
        DaosCostModel::default_model(),
        agent,
        vec![DpuTenantSpec {
            name: "t".into(),
            qos,
            rkey_scope,
        }],
        7,
    )
    .unwrap();
    (fabric, cluster, client)
}

fn update_ops(n: u64, len: usize) -> Vec<ros2_daos::ClientOp> {
    use ros2_daos::{AKey, ClientOp, DKey, ObjClass, ObjectId, ValueKind};
    (0..n)
        .map(|i| ClientOp::Update {
            oid: ObjectId::new(ObjClass::Sx, 1),
            dkey: DKey::from_u64(i),
            akey: AKey::from_str("data"),
            kind: ValueKind::Array { offset: 0 },
            data: Bytes::from(vec![(i % 250) as u8 + 1; len]),
        })
        .collect()
}

/// The rkey race at QD > 1, resolved the safe way: a queue whose span
/// crosses the refresh margin forces a re-registration *before* the ring
/// starts pulling, so deep in-flight work never trips the NIC.
#[test]
fn pipelined_queue_forces_refresh_before_the_pull() {
    use ros2_daos::ObjectClient;
    let (mut fabric, mut cluster, mut client) =
        offloaded_world(QosLimits::unlimited(), SimDuration::from_millis(100));
    // First queue, well inside the scope: no refresh needed.
    for r in client.execute_pipelined(
        &mut fabric,
        &mut cluster,
        SimTime::ZERO,
        0,
        update_ops(8, 1 << 20),
    ) {
        r.into_update().unwrap();
    }
    assert_eq!(
        client.dpu_stats().rkey_refreshes,
        0,
        "a queue comfortably inside the scope must not refresh"
    );
    // Second queue at 60 ms: 60 ms + 50 ms margin + the queue's own span
    // crosses the 100 ms deadline, so the lane must re-register before
    // any leg starts.
    for r in client.execute_pipelined(
        &mut fabric,
        &mut cluster,
        SimTime::from_millis(60),
        0,
        update_ops(8, 1 << 20),
    ) {
        r.into_update().unwrap();
    }
    assert!(
        client.dpu_stats().rkey_refreshes >= 1,
        "a queue spanning the margin must refresh first"
    );
    assert_eq!(
        fabric.node(NodeId(0)).rdma.violations().total(),
        0,
        "no in-flight pull may outlive its rkey at QD > 1"
    );
}

// --------------------------------------------------------- property ------

proptest! {
    /// Over ANY window `[w0, w1]` of grant instants, the bytes a tenant was
    /// *granted* inside the window never exceed `bytes_per_sec × (w1 - w0)
    /// + burst` (and likewise for ops). This is the contract that makes the
    /// QoS buckets an enforcement mechanism rather than bookkeeping — it
    /// fails on the seed's bucket, which let concurrent requesters each pay
    /// a single refill quantum from their own clock.
    #[test]
    fn admitted_bytes_never_exceed_limits_over_any_window(
        bytes_per_sec in 1_000u64..100_000_000,
        // Requests are kept at or below the burst: an atomic request larger
        // than the burst is necessarily granted whole at the burst
        // boundary, which no window bound can satisfy.
        burst in 1_000_000u64..10_000_000,
        reqs in prop::collection::vec((0u64..200_000_000, 1u64..1_000_000), 2..60),
    ) {
        let mut f = dpu_world();
        let mut tm = TenantManager::new(NodeId(0));
        tm.register(
            &mut f,
            "p",
            QosLimits {
                ops_per_sec: u64::MAX / 2,
                bytes_per_sec,
                burst: (1 << 20, burst),
            },
            SimDuration::from_secs(5),
        );
        // Submission times must be nondecreasing (the simulator's closed
        // loops submit in virtual-time order per tenant).
        let mut times: Vec<u64> = reqs.iter().map(|&(t, _)| t).collect();
        times.sort_unstable();
        let mut grants: Vec<(u64, u64)> = Vec::with_capacity(reqs.len());
        for (&t, &(_, bytes)) in times.iter().zip(reqs.iter()) {
            let g = tm.admit(SimTime::from_nanos(t), "p", bytes).unwrap();
            grants.push((g.as_nanos(), bytes));
        }
        // Check every window between two grant instants.
        for i in 0..grants.len() {
            for j in i..grants.len() {
                let (w0, w1) = (grants[i].0, grants[j].0);
                let in_window: u128 = grants
                    .iter()
                    .filter(|&&(g, _)| g >= w0 && g <= w1)
                    .map(|&(_, b)| b as u128)
                    .sum();
                // Allowance: burst + rate over the window, plus one byte of
                // integer-rounding slack per grant in the window.
                let dt = (w1 - w0) as u128;
                let allowance = burst as u128
                    + (dt * bytes_per_sec as u128).div_ceil(1_000_000_000)
                    + grants.len() as u128;
                prop_assert!(
                    in_window <= allowance,
                    "window [{w0}, {w1}] granted {in_window} B > allowance {allowance} B \
                     (rate {bytes_per_sec} B/s, burst {burst} B)"
                );
            }
        }
        let ctx = tm.tenant("p").unwrap();
        prop_assert_eq!(ctx.qos.admitted.0, grants.len() as u64);
    }

    /// The same over-grant bound driven through the *pipelined* offload
    /// path at QD = queue length: interleaved admission must still pace
    /// every byte. Completion instants upper-bound grant instants, so if
    /// the whole queue's bytes exceed `rate × t_end + burst`, some grant
    /// bypassed the bucket. Also pins the exact byte accounting.
    #[test]
    fn pipelined_admission_never_exceeds_limits(
        bytes_per_sec in 1_000_000u64..200_000_000,
        ops in prop::collection::vec(4_096usize..262_144, 2..12),
    ) {
        use ros2_daos::ObjectClient;
        let burst = 1u64 << 20;
        let (mut fabric, mut cluster, mut client) = offloaded_world(
            QosLimits {
                ops_per_sec: 1_000_000,
                bytes_per_sec,
                burst: (1 << 10, burst),
            },
            SimDuration::from_secs(30),
        );
        let client_ops: Vec<ros2_daos::ClientOp> = {
            use ros2_daos::{AKey, ClientOp, DKey, ObjClass, ObjectId, ValueKind};
            ops.iter()
                .enumerate()
                .map(|(i, &len)| ClientOp::Update {
                    oid: ObjectId::new(ObjClass::Sx, 1),
                    dkey: DKey::from_u64(i as u64),
                    akey: AKey::from_str("data"),
                    kind: ValueKind::Array { offset: 0 },
                    data: Bytes::from(vec![(i % 250) as u8 + 1; len]),
                })
                .collect()
        };
        let total: u64 = ops.iter().map(|&l| l as u64).sum();
        let results = client.execute_pipelined(
            &mut fabric,
            &mut cluster,
            SimTime::ZERO,
            0,
            client_ops,
        );
        let mut t_end = SimTime::ZERO;
        for r in results {
            t_end = t_end.max(r.into_update().expect("pipelined update failed"));
        }
        // Window [0, t_end] over-grant bound, one byte of rounding slack
        // per op.
        let allowance = burst as u128
            + (t_end.as_nanos() as u128 * bytes_per_sec as u128).div_ceil(1_000_000_000)
            + ops.len() as u128;
        prop_assert!(
            (total as u128) <= allowance,
            "QD={} queue moved {total} B by {t_end}, allowance {allowance} B \
             (rate {bytes_per_sec} B/s, burst {burst} B)",
            ops.len()
        );
        let s = client.dpu_stats();
        prop_assert_eq!(s.bytes_admitted, total);
        prop_assert_eq!(s.host_submits, 1);
        prop_assert_eq!(s.host_polls, ops.len() as u64);
    }
}
