//! The pool-map-aware DPU read cache: closing the small-I/O offload gap.
//!
//! The offload A/B sweeps show the DPU arm trailing the host arm on small
//! reads — every 4–64 KiB fetch pays the full fabric round trip plus the
//! ARM-core CRC verify, and at those sizes the fixed costs dominate. The
//! BlueField-3 carries 30 GiB of DRAM next to the ARM complex; this module
//! carves a slice of it into a chunk-granular read cache so a repeated
//! small read is served at DPU-DRAM rates with **zero fabric bookings and
//! zero ARM checksum work**.
//!
//! Correctness before speed — a cache in a storage path must never serve
//! stale bytes. Three mechanisms, all deterministic:
//!
//! * **Epoch stamping.** Every entry records the container's commit epoch
//!   at fill time. Any committed write anywhere in the container advances
//!   that epoch, so a probe whose current epoch differs from the stamp
//!   refuses the entry (and drops it). The container epoch is the same
//!   counter the engines' transactional VOS already maintains — the cache
//!   adds no new ordering authority.
//! * **Map stamping.** Entries also record the pool-map revision their
//!   fill routed under. A probe under a different revision invalidates:
//!   after a kill/rebuild the cache refuses to answer for placements it
//!   learned under the old map (belt-and-suspenders — committed data never
//!   changes identity across rebuilds, but the stamp keeps the cache's
//!   validity argument local). [`ReadCache::note_map`] applies the same
//!   rule eagerly when a `MapPush`/`MapQuery` snapshot lands.
//! * **Write-through punching.** A local update punches the written chunk
//!   out of the cache before the write is issued, so the window where the
//!   entry is stale never exists on the writing client.
//!
//! Fills come only from **leader-path** fetch completions: a fetch that
//! was retried, rerouted, or served degraded does not populate the cache
//! (its bytes are correct, but its provenance is the recovery ladder — the
//! cache only learns from the boring case).
//!
//! Eviction is the shared deterministic tick-LRU ([`ros2_sim::DetLru`], the
//! same tracker as the engine-side connection pool), bounded by resident
//! **bytes** rather than entry count. Replay is bit-identical because the
//! tick is the only ordering input.

use bytes::Bytes;
use ros2_buf::DataPlaneStats;
use ros2_daos::{crc32c, AKey, DKey, Epoch, ObjectId, ValueKind};
use ros2_hw::per_byte;
use ros2_sim::{DetLru, SimDuration};

/// DPU DRAM streaming-read cost: ~62 GB/s effective (DDR5 next to the ARM
/// complex, shared with the data-plane staging traffic). A 16 KiB hit
/// costs ~0.26 µs here versus tens of µs for the fabric round trip.
const DRAM_READ_PS_PER_BYTE: u64 = 16;

/// Fixed per-hit lookup cost on the ARM complex (index walk + descriptor
/// fixup) — keeps a 1-byte hit from being modelled as free.
const LOOKUP_COST: SimDuration = SimDuration::from_nanos(300);

/// Sentinel offset stamped on [`ValueKind::Single`] records, which have no
/// byte offset. Array extents at this offset cannot exist (no extent ends
/// past `u64::MAX`), so the sentinel can never collide.
const SINGLE_OFFSET: u64 = u64::MAX;

/// One cached chunk's identity: the full dkey/akey address plus the byte
/// range. Reads at a different offset or length are different entries —
/// the cache is chunk-granular, not extent-merging, because the DFS layer
/// above already issues aligned chunk reads.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheKey {
    /// Object the chunk belongs to.
    pub oid: ObjectId,
    /// Distribution key.
    pub dkey: DKey,
    /// Attribute key.
    pub akey: AKey,
    /// Byte offset ([`SINGLE_OFFSET`] for single-value records).
    pub offset: u64,
    /// Read length in bytes.
    pub len: u64,
}

impl CacheKey {
    /// The key for a fetch of `len` bytes at `kind`'s position.
    pub fn new(oid: ObjectId, dkey: DKey, akey: AKey, kind: ValueKind, len: u64) -> Self {
        let offset = match kind {
            ValueKind::Single => SINGLE_OFFSET,
            ValueKind::Array { offset } => offset,
        };
        CacheKey {
            oid,
            dkey,
            akey,
            offset,
            len,
        }
    }

    /// Whether this entry covers the record addressed by `(oid, dkey,
    /// akey)` — any offset, any length. The write-through punch is
    /// record-wide because an array update at one offset can change CRC
    /// chunk boundaries the cache does not track.
    fn covers(&self, oid: &ObjectId, dkey: &DKey, akey: &AKey) -> bool {
        self.oid == *oid && self.dkey == *dkey && self.akey == *akey
    }
}

/// One resident chunk: the payload (a refcounted handle — serving a hit is
/// zero-copy), its fill-time CRC, and the validity stamps.
#[derive(Clone, Debug)]
struct CacheEntry {
    data: Bytes,
    /// CRC32C recorded at fill (the fetch path already verified these
    /// bytes end-to-end; no ARM work is booked for it). Re-checked on hit
    /// in debug builds — a corruption tripwire, not a modelled cost.
    crc: u32,
    /// Pool-map revision the fill routed under.
    map_version: u64,
    /// Container commit epoch at fill time.
    commit_epoch: Epoch,
}

/// Counters the cache accumulates; reported through `DpuStats` and the
/// benchmark JSON.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DpuCacheStats {
    /// Probes answered from DPU DRAM (no fabric, no ARM CRC).
    pub hits: u64,
    /// Probes that fell through to the fabric path.
    pub misses: u64,
    /// Leader-path completions admitted into the cache.
    pub fills: u64,
    /// Entries dropped by a validity check (stale epoch or map revision)
    /// or a write-through punch.
    pub invalidations: u64,
    /// Entries displaced by the byte-budget LRU.
    pub evictions: u64,
    /// Payload bytes served from cache.
    pub bytes_served: u64,
    /// Payload bytes admitted by fills.
    pub bytes_filled: u64,
}

impl DpuCacheStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: DpuCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.fills += other.fills;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
        self.bytes_served += other.bytes_served;
        self.bytes_filled += other.bytes_filled;
    }

    /// Fraction of probes served from cache.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            return 0.0;
        }
        self.hits as f64 / probes as f64
    }
}

/// The read cache itself. One instance per tenant lane — tenants never
/// share cached bytes, mirroring the dedicated-PD isolation of the data
/// plane. See the module docs for the validity rules.
#[derive(Debug)]
pub struct ReadCache {
    /// Resident-byte budget (carved from the agent's DRAM pool).
    capacity: u64,
    /// Bytes currently resident (≤ capacity always).
    resident: u64,
    entries: DetLru<CacheKey, CacheEntry>,
    stats: DpuCacheStats,
    /// Hit traffic is zero-copy by construction (refcounted handles out of
    /// DPU DRAM); accounted here so system-level copy-discipline reports
    /// see cache traffic alongside the fabric's.
    dp: DataPlaneStats,
}

impl ReadCache {
    /// A cache bounded at `capacity` resident bytes.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "a cache needs a byte budget");
        ReadCache {
            capacity,
            resident: 0,
            entries: DetLru::new(),
            stats: DpuCacheStats::default(),
            dp: DataPlaneStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> DpuCacheStats {
        self.stats
    }

    /// Copy-discipline accounting for served hits.
    pub fn data_plane_stats(&self) -> DataPlaneStats {
        self.dp
    }

    /// The DPU-DRAM service latency for a hit of `bytes`.
    pub fn service_cost(bytes: u64) -> SimDuration {
        LOOKUP_COST + per_byte(bytes, DRAM_READ_PS_PER_BYTE)
    }

    /// Probes for `key` under the prober's current pool-map revision and
    /// container commit epoch. A valid entry is served (zero-copy handle);
    /// an entry with a stale stamp is dropped and the probe misses.
    pub fn probe(&mut self, key: &CacheKey, map_version: u64, epoch: Epoch) -> Option<Bytes> {
        self.entries.advance();
        let valid = match self.entries.get(key) {
            None => {
                self.stats.misses += 1;
                return None;
            }
            Some(e) => e.map_version == map_version && e.commit_epoch == epoch,
        };
        if !valid {
            let e = self.entries.remove(key).expect("entry was just found");
            self.resident -= e.data.len() as u64;
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        let e = self.entries.touch(key).expect("entry was just found");
        debug_assert_eq!(crc32c(&e.data), e.crc, "resident chunk corrupted");
        let data = e.data.clone();
        self.stats.hits += 1;
        self.stats.bytes_served += data.len() as u64;
        self.dp.bytes_zero_copy += data.len() as u64;
        Some(data)
    }

    /// Admits a leader-path fetch completion. A chunk larger than the
    /// whole budget is refused; otherwise the LRU evicts until the chunk
    /// fits. Refilling a resident key replaces it (fresher stamps).
    pub fn fill(&mut self, key: CacheKey, data: Bytes, map_version: u64, epoch: Epoch) {
        let len = data.len() as u64;
        if len > self.capacity {
            return;
        }
        self.entries.advance();
        if let Some(old) = self.entries.remove(&key) {
            self.resident -= old.data.len() as u64;
        }
        while self.resident + len > self.capacity {
            let (_, e) = self
                .entries
                .evict_lru()
                .expect("over-budget cache is non-empty");
            self.resident -= e.data.len() as u64;
            self.stats.evictions += 1;
        }
        let crc = crc32c(&data);
        self.resident += len;
        self.stats.fills += 1;
        self.stats.bytes_filled += len;
        self.entries.insert(
            key,
            CacheEntry {
                data,
                crc,
                map_version,
                commit_epoch: epoch,
            },
        );
    }

    /// Write-through punch: drops every entry covering `(oid, dkey,
    /// akey)`. Called before a local update is issued, so the stale window
    /// never exists on the writing client.
    pub fn punch(&mut self, oid: &ObjectId, dkey: &DKey, akey: &AKey) -> usize {
        let mut bytes = 0u64;
        let dropped = self.entries.retain(|k, e| {
            let hit = k.covers(oid, dkey, akey);
            if hit {
                bytes += e.data.len() as u64;
            }
            !hit
        });
        self.resident -= bytes;
        self.stats.invalidations += dropped as u64;
        dropped
    }

    /// A pool-map snapshot at `version` just landed: eagerly drops every
    /// entry stamped with a different revision (the probe-time check would
    /// refuse them anyway; dropping now keeps the byte budget honest).
    pub fn note_map(&mut self, version: u64) {
        let mut bytes = 0u64;
        let dropped = self.entries.retain(|_, e| {
            let stale = e.map_version != version;
            if stale {
                bytes += e.data.len() as u64;
            }
            !stale
        });
        self.resident -= bytes;
        self.stats.invalidations += dropped as u64;
    }

    /// Drops every entry (the byte budget stays reserved).
    pub fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64, len: u64) -> CacheKey {
        CacheKey::new(
            ObjectId::new(ros2_daos::ObjClass::Sx, 1),
            DKey::from_u64(i),
            AKey::from_str("data"),
            ValueKind::Array { offset: 0 },
            len,
        )
    }

    fn chunk(b: u8, len: usize) -> Bytes {
        Bytes::from(vec![b; len])
    }

    #[test]
    fn fill_then_probe_serves_the_same_handle() {
        let mut c = ReadCache::new(1 << 20);
        let data = chunk(7, 4096);
        c.fill(key(0, 4096), data.clone(), 3, Epoch(5));
        let hit = c.probe(&key(0, 4096), 3, Epoch(5)).unwrap();
        assert_eq!(hit, data);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 0, 1));
        assert_eq!(s.bytes_served, 4096);
        assert_eq!(c.data_plane_stats().bytes_zero_copy, 4096);
    }

    #[test]
    fn stale_epoch_and_stale_map_both_invalidate() {
        let mut c = ReadCache::new(1 << 20);
        c.fill(key(0, 64), chunk(1, 64), 3, Epoch(5));
        assert!(c.probe(&key(0, 64), 3, Epoch(6)).is_none(), "epoch moved");
        c.fill(key(1, 64), chunk(2, 64), 3, Epoch(6));
        assert!(c.probe(&key(1, 64), 4, Epoch(6)).is_none(), "map moved");
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.resident_bytes(), 0, "stale entries are dropped");
    }

    #[test]
    fn punch_drops_every_offset_of_the_record() {
        let mut c = ReadCache::new(1 << 20);
        let oid = ObjectId::new(ros2_daos::ObjClass::Sx, 1);
        let dk = DKey::from_u64(0);
        let ak = AKey::from_str("data");
        for off in [0u64, 4096] {
            c.fill(
                CacheKey::new(
                    oid,
                    dk.clone(),
                    ak.clone(),
                    ValueKind::Array { offset: off },
                    64,
                ),
                chunk(3, 64),
                1,
                Epoch(1),
            );
        }
        c.fill(key(9, 64), chunk(4, 64), 1, Epoch(1));
        assert_eq!(c.punch(&oid, &dk, &ak), 2);
        assert_eq!(c.len(), 1, "unrelated record survives");
        assert_eq!(c.resident_bytes(), 64);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let mut c = ReadCache::new(256);
        c.fill(key(0, 128), chunk(0, 128), 1, Epoch(1));
        c.fill(key(1, 128), chunk(1, 128), 1, Epoch(1));
        // Touch 0 so 1 is the LRU, then overflow.
        assert!(c.probe(&key(0, 128), 1, Epoch(1)).is_some());
        c.fill(key(2, 128), chunk(2, 128), 1, Epoch(1));
        assert!(c.probe(&key(1, 128), 1, Epoch(1)).is_none(), "LRU evicted");
        assert!(c.probe(&key(0, 128), 1, Epoch(1)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.resident_bytes() <= c.capacity());
    }

    #[test]
    fn oversized_chunk_is_refused_and_note_map_sweeps() {
        let mut c = ReadCache::new(256);
        c.fill(key(0, 512), chunk(0, 512), 1, Epoch(1));
        assert_eq!(c.len(), 0, "chunk larger than the budget is refused");
        c.fill(key(1, 64), chunk(1, 64), 1, Epoch(1));
        c.fill(key(2, 64), chunk(2, 64), 2, Epoch(1));
        c.note_map(2);
        assert_eq!(c.len(), 1, "old-revision entries swept");
        assert_eq!(c.resident_bytes(), 64);
        assert!(c.probe(&key(2, 64), 2, Epoch(1)).is_some());
    }

    #[test]
    fn single_values_use_the_sentinel_offset() {
        let k = CacheKey::new(
            ObjectId::new(ros2_daos::ObjClass::S1, 2),
            DKey::from_str("k"),
            AKey::from_str("v"),
            ValueKind::Single,
            4,
        );
        assert_eq!(k.offset, SINGLE_OFFSET);
        let arr = CacheKey::new(
            k.oid,
            k.dkey.clone(),
            k.akey.clone(),
            ValueKind::Array { offset: 0 },
            4,
        );
        assert_ne!(k, arr);
    }
}
