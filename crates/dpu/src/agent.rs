//! The DPU-resident agent: the piece of ROS2 that actually lives on the
//! BlueField-3.
//!
//! The agent terminates the host's control channel (§3.2 "Host ↔ DPU: gRPC
//! control channel; no payload bytes traverse the host kernel in the fast
//! path"), manages the DPU DRAM staging-buffer pool where all data-plane
//! payloads land, and can interpose inline services — the crypto engine —
//! on the byte path without host involvement.

use ros2_ctl::{ControlChannel, ControlModel, ControlRequest, ControlResponse};
use ros2_hw::inline_crypto_cost;
use ros2_sim::{Counter, SimDuration, SimTime};
use ros2_verbs::NodeId;

use crate::error::DpuError;

/// Inline services the agent can interpose on payloads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InlineService {
    /// Pass-through.
    None,
    /// AES-GCM on the DPU's crypto engine (encrypt on write, decrypt on
    /// read) — keys never leave the DPU.
    Crypto,
}

/// The BlueField-3 agent state.
pub struct DpuAgent {
    node: NodeId,
    /// Host-facing control channel (the only host↔DPU interface).
    pub control: ControlChannel,
    dram_budget: u64,
    dram_used: u64,
    /// Slice of `dram_used` carved out for the read cache (the rest is
    /// staging). One knob splits one physical pool — cache capacity always
    /// trades directly against staging headroom.
    cache_reserved: u64,
    service: InlineService,
    /// Payload bytes passed through inline services.
    pub serviced_bytes: Counter,
    /// Control calls forwarded for the host.
    pub control_calls: Counter,
    /// DRAM releases that exceeded the outstanding reservation (a
    /// double-free-style accounting bug in the caller; the pool saturates
    /// at zero rather than underflowing).
    pub over_releases: Counter,
}

impl DpuAgent {
    /// Creates an agent on the DPU at `node` with `dram_budget` bytes of
    /// staging DRAM (30 GiB on BlueField-3).
    pub fn new(node: NodeId, dram_budget: u64, control: ControlChannel) -> Self {
        DpuAgent {
            node,
            control,
            dram_budget,
            dram_used: 0,
            cache_reserved: 0,
            service: InlineService::None,
            serviced_bytes: Counter::new(),
            control_calls: Counter::new(),
            over_releases: Counter::new(),
        }
    }

    /// The DPU node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Selects the inline service applied to data-plane payloads.
    pub fn set_inline_service(&mut self, service: InlineService) {
        self.service = service;
    }

    /// The active inline service.
    pub fn inline_service(&self) -> InlineService {
        self.service
    }

    /// Reserves staging DRAM; fails with the shortfall context when the
    /// 30 GiB budget is exhausted.
    pub fn reserve_dram(&mut self, bytes: u64) -> Result<(), DpuError> {
        let free = self.dram_budget - self.dram_used;
        if bytes > free {
            return Err(DpuError::DramExhausted {
                requested: bytes,
                free,
            });
        }
        self.dram_used += bytes;
        Ok(())
    }

    /// Releases staging DRAM. Releasing more than is reserved saturates to
    /// an empty pool (and counts the mismatch) instead of underflowing.
    pub fn release_dram(&mut self, bytes: u64) {
        if bytes > self.dram_used {
            self.over_releases.inc();
        }
        self.dram_used = self.dram_used.saturating_sub(bytes);
    }

    /// Carves `bytes` of the DRAM pool out for the read cache — the
    /// staging/cache split knob. Fails like [`Self::reserve_dram`] when
    /// the budget cannot cover it; the carve shrinks staging headroom
    /// one-for-one.
    pub fn reserve_cache(&mut self, bytes: u64) -> Result<(), DpuError> {
        self.reserve_dram(bytes)?;
        self.cache_reserved += bytes;
        Ok(())
    }

    /// Returns the whole cache carve to the staging pool; reports how many
    /// bytes were released.
    pub fn release_cache(&mut self) -> u64 {
        let bytes = self.cache_reserved;
        self.cache_reserved = 0;
        self.release_dram(bytes);
        bytes
    }

    /// DRAM in use (staging reservations plus the cache carve).
    pub fn dram_used(&self) -> u64 {
        self.dram_used
    }

    /// The slice of [`Self::dram_used`] held by the read cache.
    pub fn cache_reserved(&self) -> u64 {
        self.cache_reserved
    }

    /// The slice of [`Self::dram_used`] held by staging buffers.
    pub fn staging_used(&self) -> u64 {
        self.dram_used - self.cache_reserved
    }

    /// The additional latency the inline service adds to `bytes` of
    /// payload (zero when pass-through). The crypto engine is fixed-
    /// function hardware, so this does not consume ARM cores.
    pub fn inline_cost(&mut self, bytes: u64) -> SimDuration {
        match self.service {
            InlineService::None => SimDuration::ZERO,
            InlineService::Crypto => {
                self.serviced_bytes.add(bytes);
                inline_crypto_cost(bytes)
            }
        }
    }

    /// Forwards a host control call through the agent, returning the
    /// completion instant and the response.
    pub fn host_call<F>(
        &mut self,
        now: SimTime,
        session: Option<u64>,
        req: ControlRequest,
        handler: F,
    ) -> (
        SimTime,
        Result<(u64, ControlResponse), ros2_ctl::ControlError>,
    )
    where
        F: FnOnce(&str, &ControlRequest) -> ControlResponse,
    {
        self.control_calls.inc();
        self.control.call(now, session, req, handler)
    }
}

/// A default gRPC-class control channel for host↔DPU traffic.
pub fn default_control(seed: u64) -> ControlChannel {
    ControlChannel::new(ControlModel::grpc_default(), ros2_sim::SimRng::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn agent() -> DpuAgent {
        let mut ctl = default_control(9);
        ctl.add_tenant("llm", Bytes::from_static(b"digest"));
        DpuAgent::new(NodeId(1), 30 << 30, ctl)
    }

    #[test]
    fn dram_budget_enforced() {
        let mut a = agent();
        a.reserve_dram(20 << 30).unwrap();
        assert_eq!(
            a.reserve_dram(20 << 30).unwrap_err(),
            DpuError::DramExhausted {
                requested: 20 << 30,
                free: 10 << 30,
            }
        );
        a.release_dram(15 << 30);
        assert!(a.reserve_dram(20 << 30).is_ok());
        assert_eq!(a.dram_used(), 25 << 30);
    }

    #[test]
    fn over_release_saturates_and_is_counted() {
        let mut a = agent();
        a.reserve_dram(1 << 20).unwrap();
        a.release_dram(2 << 20);
        assert_eq!(a.dram_used(), 0, "pool saturates at empty");
        assert_eq!(a.over_releases.get(), 1);
        // The full budget is usable again afterwards.
        assert!(a.reserve_dram(30 << 30).is_ok());
    }

    #[test]
    fn cache_carve_trades_against_staging() {
        let mut a = agent();
        a.reserve_dram(10 << 30).unwrap();
        a.reserve_cache(4 << 30).unwrap();
        assert_eq!(a.dram_used(), 14 << 30);
        assert_eq!(a.cache_reserved(), 4 << 30);
        assert_eq!(a.staging_used(), 10 << 30);
        // The carve shrinks staging headroom one-for-one.
        assert!(a.reserve_dram(17 << 30).is_err());
        assert_eq!(a.release_cache(), 4 << 30);
        assert_eq!(a.cache_reserved(), 0);
        assert!(a.reserve_dram(17 << 30).is_ok());
        assert_eq!(a.over_releases.get(), 0, "carve and release balance");
    }

    #[test]
    fn inline_crypto_costs_scale_with_bytes() {
        let mut a = agent();
        assert_eq!(a.inline_cost(1 << 20), SimDuration::ZERO);
        a.set_inline_service(InlineService::Crypto);
        let small = a.inline_cost(4096);
        let big = a.inline_cost(1 << 20);
        assert!(big > small);
        assert_eq!(a.serviced_bytes.get(), 4096 + (1 << 20));
        assert_eq!(a.inline_service(), InlineService::Crypto);
    }

    #[test]
    fn host_calls_route_through_control_channel() {
        let mut a = agent();
        let hello = ControlRequest::Hello {
            tenant: "llm".into(),
            auth: Bytes::from_static(b"digest"),
        };
        let (at, res) = a.host_call(SimTime::ZERO, None, hello, |_, _| ControlResponse::Ok);
        assert!(res.is_ok());
        assert!(at >= SimTime::from_micros(150), "gRPC-class latency");
        assert_eq!(a.control_calls.get(), 1);
    }
}
