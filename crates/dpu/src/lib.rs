//! # ros2-dpu — the BlueField-3 offload runtime
//!
//! What distinguishes ROS2 from a plain DAOS deployment: the client stack
//! runs *on the SmartNIC*. This crate supplies the DPU-resident pieces —
//! the agent that terminates the host's gRPC control channel and manages
//! the 30 GiB staging-DRAM pool, per-tenant isolation (dedicated protection
//! domains, scoped rkeys, token-bucket QoS), and the inline crypto service
//! that operates on payloads without touching the host (§2.3, §5).
//!
//! The data-plane client is [`DpuClient`]: per-tenant
//! `ros2_daos::DaosClient` lanes constructed on the DPU node, wrapped with
//! the host submit/poll handoff, QoS admission, scoped-rkey refresh, and
//! DPU-side checksumming. It implements `ros2_daos::ObjectClient`, so the
//! DFS layer drives it exactly like the host-resident client.

#![warn(missing_docs)]

pub mod agent;
pub mod cache;
pub mod client;
pub mod error;
pub mod tenant;

pub use agent::{default_control, DpuAgent, InlineService};
pub use cache::{CacheKey, DpuCacheStats, ReadCache};
pub use client::{DpuClient, DpuStats, DpuTenantSpec};
pub use error::DpuError;
pub use tenant::{QosLimits, TenantCtx, TenantManager};
