//! Per-tenant isolation on the DPU: dedicated protection domains, scoped
//! rkeys, and QoS rate limits — the "DPU-resident features such as
//! multi-tenant isolation" the paper's abstract motivates (§2.3, §5:
//! "dedicated QPs/PDs, per-tenant queues and rate limits").

use std::collections::HashMap;

use ros2_fabric::Fabric;
use ros2_sim::{QosLane, SimDuration, SimTime};
use ros2_verbs::{Expiry, NodeId, PdId};

// The bucket-pair admission mechanism was born here (PR 4) and now lives
// in the simulation kernel so background services pace through the same
// proven lane; re-exported to keep `ros2_dpu::QosLimits` paths working.
pub use ros2_sim::QosLimits;

/// One tenant's state on the DPU.
#[derive(Debug)]
pub struct TenantCtx {
    /// The tenant's protection domain on the DPU NIC.
    pub pd: PdId,
    /// The tenant's paced admission lane (buckets + counters).
    pub qos: QosLane,
    /// Default rkey validity window for this tenant's registrations.
    pub rkey_scope: SimDuration,
}

impl TenantCtx {
    fn fresh(pd: PdId, limits: QosLimits, rkey_scope: SimDuration) -> Self {
        TenantCtx {
            pd,
            qos: QosLane::new(limits),
            rkey_scope,
        }
    }
}

/// The DPU's tenant manager.
#[derive(Debug)]
pub struct TenantManager {
    node: NodeId,
    tenants: HashMap<String, TenantCtx>,
}

impl TenantManager {
    /// Creates a manager for the DPU at `node`.
    pub fn new(node: NodeId) -> Self {
        TenantManager {
            node,
            tenants: HashMap::new(),
        }
    }

    /// The DPU node this manager controls.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a tenant: allocates its PD and installs its QoS buckets.
    /// `rkey_scope` bounds the lifetime of rkeys issued for its buffers.
    pub fn register(
        &mut self,
        fabric: &mut Fabric,
        tenant: impl Into<String>,
        limits: QosLimits,
        rkey_scope: SimDuration,
    ) -> PdId {
        let tenant = tenant.into();
        let pd = fabric.rdma_mut(self.node).alloc_pd(tenant.clone());
        self.tenants
            .insert(tenant, TenantCtx::fresh(pd, limits, rkey_scope));
        pd
    }

    /// Admits one I/O of `bytes` for `tenant`, returning the instant it may
    /// proceed (later than `now` when rate-limited).
    pub fn admit(&mut self, now: SimTime, tenant: &str, bytes: u64) -> Option<SimTime> {
        let ctx = self.tenants.get_mut(tenant)?;
        Some(ctx.qos.admit(now, bytes))
    }

    /// Rebuilds every tenant's buckets full at t=0 and zeroes admission
    /// counters (between a preconditioning phase and a measured run; PDs
    /// and rkey scopes are untouched).
    pub fn reset_timing(&mut self) {
        for ctx in self.tenants.values_mut() {
            ctx.qos.reset_timing();
        }
    }

    /// The expiry to stamp on a new registration for `tenant` at `now`.
    pub fn rkey_expiry(&self, now: SimTime, tenant: &str) -> Option<Expiry> {
        let ctx = self.tenants.get(tenant)?;
        Some(Expiry::At(now + ctx.rkey_scope))
    }

    /// The tenant's context.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantCtx> {
        self.tenants.get(tenant)
    }

    /// Number of registered tenants.
    pub fn count(&self) -> usize {
        self.tenants.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_fabric::NodeSpec;
    use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, Transport};

    fn fabric() -> Fabric {
        Fabric::new(
            Transport::Rdma,
            vec![NodeSpec {
                name: "dpu".into(),
                cpu: CpuComplement {
                    class: CoreClass::DpuArm,
                    cores: 16,
                },
                nic: NicModel::connectx7(),
                port_rate: gbps(100),
                mem_budget: 1 << 30,
                dpu_tcp_rx: None,
            }],
            3,
        )
    }

    #[test]
    fn tenants_get_distinct_pds() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        let a = tm.register(
            &mut f,
            "a",
            QosLimits::unlimited(),
            SimDuration::from_secs(5),
        );
        let b = tm.register(
            &mut f,
            "b",
            QosLimits::unlimited(),
            SimDuration::from_secs(5),
        );
        assert_ne!(a, b);
        assert_eq!(tm.count(), 2);
        assert_eq!(f.node(NodeId(0)).rdma.pd_tenant(a), Some("a"));
    }

    #[test]
    fn rate_limit_delays_excess_ops() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        tm.register(
            &mut f,
            "limited",
            QosLimits {
                ops_per_sec: 1000,
                bytes_per_sec: 1 << 30,
                burst: (10, 1 << 20),
            },
            SimDuration::from_secs(5),
        );
        // Burst of 10 admitted instantly, the 11th waits ~1 ms.
        let mut grant = SimTime::ZERO;
        for _ in 0..11 {
            grant = tm.admit(SimTime::ZERO, "limited", 4096).unwrap();
        }
        assert!(grant >= SimTime::from_micros(900), "grant {grant}");
        assert_eq!(tm.tenant("limited").unwrap().qos.throttled, 1);
        assert_eq!(tm.tenant("limited").unwrap().qos.admitted.0, 11);
    }

    #[test]
    fn byte_limit_binds_for_large_io() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        tm.register(
            &mut f,
            "bw",
            QosLimits {
                ops_per_sec: 1_000_000,
                bytes_per_sec: 1 << 20, // 1 MiB/s
                burst: (1 << 20, 1 << 20),
            },
            SimDuration::from_secs(5),
        );
        tm.admit(SimTime::ZERO, "bw", 1 << 20).unwrap(); // burst
        let g = tm.admit(SimTime::ZERO, "bw", 1 << 20).unwrap();
        assert!(g >= SimTime::from_millis(900), "grant {g}");
    }

    #[test]
    fn unknown_tenant_rejected() {
        let mut tm = TenantManager::new(NodeId(0));
        assert!(tm.admit(SimTime::ZERO, "ghost", 1).is_none());
        assert!(tm.rkey_expiry(SimTime::ZERO, "ghost").is_none());
    }

    #[test]
    fn rkey_scope_produces_expiring_registrations() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        tm.register(
            &mut f,
            "t",
            QosLimits::unlimited(),
            SimDuration::from_millis(100),
        );
        let e = tm.rkey_expiry(SimTime::from_secs(1), "t").unwrap();
        assert_eq!(
            e,
            Expiry::At(SimTime::from_secs(1) + SimDuration::from_millis(100))
        );
    }
}
