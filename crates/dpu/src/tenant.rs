//! Per-tenant isolation on the DPU: dedicated protection domains, scoped
//! rkeys, and QoS rate limits — the "DPU-resident features such as
//! multi-tenant isolation" the paper's abstract motivates (§2.3, §5:
//! "dedicated QPs/PDs, per-tenant queues and rate limits").

use std::collections::HashMap;

use ros2_fabric::Fabric;
use ros2_sim::{SimDuration, SimTime, TokenBucket};
use ros2_verbs::{Expiry, NodeId, PdId};

/// A tenant's QoS allocation.
#[derive(Copy, Clone, Debug)]
pub struct QosLimits {
    /// Operations per second.
    pub ops_per_sec: u64,
    /// Bytes per second.
    pub bytes_per_sec: u64,
    /// Burst sizes (ops, bytes).
    pub burst: (u64, u64),
}

impl QosLimits {
    /// An effectively unlimited allocation.
    pub fn unlimited() -> Self {
        QosLimits {
            ops_per_sec: u64::MAX / 2,
            bytes_per_sec: u64::MAX / 2,
            burst: (1 << 20, 1 << 40),
        }
    }
}

/// One tenant's state on the DPU.
#[derive(Debug)]
pub struct TenantCtx {
    /// The tenant's protection domain on the DPU NIC.
    pub pd: PdId,
    /// The allocation the buckets were built from (kept for resets and
    /// observability).
    pub limits: QosLimits,
    ops_bucket: TokenBucket,
    bytes_bucket: TokenBucket,
    /// Default rkey validity window for this tenant's registrations.
    pub rkey_scope: SimDuration,
    /// Admitted (ops, bytes).
    pub admitted: (u64, u64),
    /// Operations delayed by rate limiting.
    pub throttled: u64,
    /// Cumulative delay imposed by rate limiting.
    pub throttle_wait: SimDuration,
}

impl TenantCtx {
    fn fresh(pd: PdId, limits: QosLimits, rkey_scope: SimDuration) -> Self {
        TenantCtx {
            pd,
            limits,
            ops_bucket: TokenBucket::new(limits.ops_per_sec, limits.burst.0),
            bytes_bucket: TokenBucket::new(limits.bytes_per_sec, limits.burst.1),
            rkey_scope,
            admitted: (0, 0),
            throttled: 0,
            throttle_wait: SimDuration::ZERO,
        }
    }
}

/// The DPU's tenant manager.
#[derive(Debug)]
pub struct TenantManager {
    node: NodeId,
    tenants: HashMap<String, TenantCtx>,
}

impl TenantManager {
    /// Creates a manager for the DPU at `node`.
    pub fn new(node: NodeId) -> Self {
        TenantManager {
            node,
            tenants: HashMap::new(),
        }
    }

    /// The DPU node this manager controls.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a tenant: allocates its PD and installs its QoS buckets.
    /// `rkey_scope` bounds the lifetime of rkeys issued for its buffers.
    pub fn register(
        &mut self,
        fabric: &mut Fabric,
        tenant: impl Into<String>,
        limits: QosLimits,
        rkey_scope: SimDuration,
    ) -> PdId {
        let tenant = tenant.into();
        let pd = fabric.rdma_mut(self.node).alloc_pd(tenant.clone());
        self.tenants
            .insert(tenant, TenantCtx::fresh(pd, limits, rkey_scope));
        pd
    }

    /// Admits one I/O of `bytes` for `tenant`, returning the instant it may
    /// proceed (later than `now` when rate-limited).
    pub fn admit(&mut self, now: SimTime, tenant: &str, bytes: u64) -> Option<SimTime> {
        let ctx = self.tenants.get_mut(tenant)?;
        let t_ops = ctx.ops_bucket.acquire(now, 1);
        let t_bytes = ctx.bytes_bucket.acquire(now, bytes.max(1));
        let grant = t_ops.max(t_bytes);
        ctx.admitted.0 += 1;
        ctx.admitted.1 += bytes;
        if grant > now {
            ctx.throttled += 1;
            ctx.throttle_wait += grant.saturating_since(now);
        }
        Some(grant)
    }

    /// Rebuilds every tenant's buckets full at t=0 and zeroes admission
    /// counters (between a preconditioning phase and a measured run; PDs
    /// and rkey scopes are untouched).
    pub fn reset_timing(&mut self) {
        for ctx in self.tenants.values_mut() {
            *ctx = TenantCtx::fresh(ctx.pd, ctx.limits, ctx.rkey_scope);
        }
    }

    /// The expiry to stamp on a new registration for `tenant` at `now`.
    pub fn rkey_expiry(&self, now: SimTime, tenant: &str) -> Option<Expiry> {
        let ctx = self.tenants.get(tenant)?;
        Some(Expiry::At(now + ctx.rkey_scope))
    }

    /// The tenant's context.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantCtx> {
        self.tenants.get(tenant)
    }

    /// Number of registered tenants.
    pub fn count(&self) -> usize {
        self.tenants.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros2_fabric::NodeSpec;
    use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, Transport};

    fn fabric() -> Fabric {
        Fabric::new(
            Transport::Rdma,
            vec![NodeSpec {
                name: "dpu".into(),
                cpu: CpuComplement {
                    class: CoreClass::DpuArm,
                    cores: 16,
                },
                nic: NicModel::connectx7(),
                port_rate: gbps(100),
                mem_budget: 1 << 30,
                dpu_tcp_rx: None,
            }],
            3,
        )
    }

    #[test]
    fn tenants_get_distinct_pds() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        let a = tm.register(
            &mut f,
            "a",
            QosLimits::unlimited(),
            SimDuration::from_secs(5),
        );
        let b = tm.register(
            &mut f,
            "b",
            QosLimits::unlimited(),
            SimDuration::from_secs(5),
        );
        assert_ne!(a, b);
        assert_eq!(tm.count(), 2);
        assert_eq!(f.node(NodeId(0)).rdma.pd_tenant(a), Some("a"));
    }

    #[test]
    fn rate_limit_delays_excess_ops() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        tm.register(
            &mut f,
            "limited",
            QosLimits {
                ops_per_sec: 1000,
                bytes_per_sec: 1 << 30,
                burst: (10, 1 << 20),
            },
            SimDuration::from_secs(5),
        );
        // Burst of 10 admitted instantly, the 11th waits ~1 ms.
        let mut grant = SimTime::ZERO;
        for _ in 0..11 {
            grant = tm.admit(SimTime::ZERO, "limited", 4096).unwrap();
        }
        assert!(grant >= SimTime::from_micros(900), "grant {grant}");
        assert_eq!(tm.tenant("limited").unwrap().throttled, 1);
        assert_eq!(tm.tenant("limited").unwrap().admitted.0, 11);
    }

    #[test]
    fn byte_limit_binds_for_large_io() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        tm.register(
            &mut f,
            "bw",
            QosLimits {
                ops_per_sec: 1_000_000,
                bytes_per_sec: 1 << 20, // 1 MiB/s
                burst: (1 << 20, 1 << 20),
            },
            SimDuration::from_secs(5),
        );
        tm.admit(SimTime::ZERO, "bw", 1 << 20).unwrap(); // burst
        let g = tm.admit(SimTime::ZERO, "bw", 1 << 20).unwrap();
        assert!(g >= SimTime::from_millis(900), "grant {g}");
    }

    #[test]
    fn unknown_tenant_rejected() {
        let mut tm = TenantManager::new(NodeId(0));
        assert!(tm.admit(SimTime::ZERO, "ghost", 1).is_none());
        assert!(tm.rkey_expiry(SimTime::ZERO, "ghost").is_none());
    }

    #[test]
    fn rkey_scope_produces_expiring_registrations() {
        let mut f = fabric();
        let mut tm = TenantManager::new(NodeId(0));
        tm.register(
            &mut f,
            "t",
            QosLimits::unlimited(),
            SimDuration::from_millis(100),
        );
        let e = tm.rkey_expiry(SimTime::from_secs(1), "t").unwrap();
        assert_eq!(
            e,
            Expiry::At(SimTime::from_secs(1) + SimDuration::from_millis(100))
        );
    }
}
