//! The DPU-offloaded DAOS client — the paper's headline architecture made
//! load-bearing (§3.2).
//!
//! With [`DpuClient`] the host application no longer runs libdaos at all.
//! Per data-plane I/O the host pays exactly an **RPC submit/poll pair**
//! over the [`ControlChannel`]'s PCIe doorbell model; everything else runs
//! on the BlueField-3:
//!
//! 1. **Submit** — the host rings the doorbell with an I/O descriptor
//!    (`ControlRequest::IoSubmit`); no payload bytes cross the host kernel.
//! 2. **QoS admission** — every byte the DPU touches passes
//!    [`TenantManager::admit`]: per-tenant ops/bytes token buckets delay
//!    the op until its grant instant, and the delay is accounted.
//! 3. **Scoped rkeys** — the staging MR carries the tenant's rkey expiry;
//!    when a registration nears its deadline the client re-registers and
//!    counts the refresh, so a leaked rkey dies on schedule without ever
//!    failing a legitimate in-flight pull.
//! 4. **Inline services + checksums** — the agent's inline service (e.g.
//!    AES-GCM) and the client-side CRC32C (computed on update, verified on
//!    fetch) are paid at `CoreClass::DpuArm` rates.
//! 5. **Data plane** — staging into DPU DRAM, descriptor send, the
//!    server's RDMA pull (or push on fetch), and completion handling run
//!    on a per-tenant [`DaosClient`] constructed on the DPU node: its own
//!    protection domain, QPs, and staging buffers — the paper's "dedicated
//!    QPs/PDs, per-tenant queues and rate limits".
//! 6. **Poll** — the host reaps the completion queue; the completion
//!    instant the application sees includes the handoff both ways.
//!
//! All of it is observable through [`DpuStats`], which travels alongside
//! `ResourceStats` and `DataPlaneStats` in the benchmark reports.

use bytes::Bytes;
use ros2_ctl::{ControlChannel, ControlError, ControlModel, ControlRequest, ControlResponse};
use ros2_daos::{
    whole_batch_error, ClientOp, ClientOpResult, DaosClient, DaosCostModel, DaosError,
    EngineCluster, Epoch, MapSnapshot, ObjectClient, ObjectId, OpRing, RetryPolicy, RetryStats,
};
use ros2_daos::{AKey, DKey, ValueKind};
use ros2_fabric::Fabric;
use ros2_hw::{per_byte, CoreClass, Transport};
use ros2_sim::{ResourceStats, SimDuration, SimRng, SimTime};
use ros2_verbs::{Expiry, MemoryDomain, NodeId, PdId};

use crate::agent::DpuAgent;
use crate::cache::{CacheKey, DpuCacheStats, ReadCache};
use crate::error::DpuError;
use crate::tenant::{QosLimits, TenantManager};

/// One tenant to provision on the DPU client.
#[derive(Clone, Debug)]
pub struct DpuTenantSpec {
    /// Tenant identity (control-channel credential and PD label).
    pub name: String,
    /// QoS allocation enforced at admission.
    pub qos: QosLimits,
    /// Validity window stamped on the tenant's staging rkeys.
    pub rkey_scope: SimDuration,
}

impl DpuTenantSpec {
    /// An unthrottled tenant with the default 30 s rkey scope.
    pub fn unlimited(name: impl Into<String>) -> Self {
        DpuTenantSpec {
            name: name.into(),
            qos: QosLimits::unlimited(),
            rkey_scope: SimDuration::from_secs(30),
        }
    }
}

/// Offload-path counters, reported alongside `ResourceStats` (booking core)
/// and `DataPlaneStats` (copy/CRC accounting).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DpuStats {
    /// Data-plane I/Os that ran fully on the DPU.
    pub ops_offloaded: u64,
    /// Host→DPU doorbell submits (batches count once).
    pub host_submits: u64,
    /// Host completion-queue polls.
    pub host_polls: u64,
    /// Cumulative host↔DPU handoff latency (submit + poll legs).
    pub handoff_wait: SimDuration,
    /// Payload bytes admitted through the tenant QoS buckets.
    pub bytes_admitted: u64,
    /// Admissions delayed by a token bucket.
    pub ops_throttled: u64,
    /// Cumulative admission delay.
    pub throttle_wait: SimDuration,
    /// Staging-MR re-registrations forced by rkey expiry.
    pub rkey_refreshes: u64,
    /// Bytes checksummed on the DPU (update CRCs + fetch verifies).
    pub crc_bytes: u64,
    /// Recovery-ladder counters accumulated by the lanes' pipelined
    /// clients — the DPU retries *on the DPU*; the host only sees the
    /// totals ride back on `IoDone`.
    pub retry: RetryStats,
    /// Read-cache counters accumulated by the lanes' caches (all zeros
    /// while the cache is disabled — the default).
    pub cache: DpuCacheStats,
}

impl DpuStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: DpuStats) {
        self.ops_offloaded += other.ops_offloaded;
        self.host_submits += other.host_submits;
        self.host_polls += other.host_polls;
        self.handoff_wait += other.handoff_wait;
        self.bytes_admitted += other.bytes_admitted;
        self.ops_throttled += other.ops_throttled;
        self.throttle_wait += other.throttle_wait;
        self.rkey_refreshes += other.rkey_refreshes;
        self.crc_bytes += other.crc_bytes;
        self.retry.merge(other.retry);
        self.cache.merge(other.cache);
    }
}

/// One tenant's slice of the offloaded client: a dedicated data-plane
/// [`DaosClient`] (own PD, QPs, staging buffers) plus its control session
/// and rkey deadlines.
struct TenantLane {
    name: String,
    daos: DaosClient,
    rkey_scope: SimDuration,
    /// Per-local-job rkey deadline (RDMA transports; `SimTime::MAX` on
    /// TCP, where no memory is registered).
    rkey_deadline: Vec<SimTime>,
    /// Doorbell-channel session for this tenant.
    session: u64,
    /// This tenant's slice of the DPU read cache ([`ReadCache`]), when
    /// enabled. Per-lane, never shared — cached bytes stay inside the
    /// tenant's isolation boundary like its PD and staging buffers.
    cache: Option<ReadCache>,
}

/// Refresh a registration when it has less than this long left to live at
/// op-start: long enough that a pull issued now cannot outlive the rkey,
/// short enough that a leaked rkey still dies promptly.
const RKEY_REFRESH_MARGIN: SimDuration = SimDuration::from_millis(50);

/// The offloaded client (see the module docs for the op pipeline).
pub struct DpuClient {
    node: NodeId,
    /// The DPU agent: control-channel termination, staging-DRAM pool,
    /// inline services.
    agent: DpuAgent,
    tenants: TenantManager,
    /// The host↔DPU I/O doorbell (submit/poll pair per op).
    io: ControlChannel,
    lanes: Vec<TenantLane>,
    /// Global job index → (lane, lane-local job).
    job_map: Vec<(usize, usize)>,
    model: DaosCostModel,
    class: CoreClass,
    transport: Transport,
    stats: DpuStats,
}

impl DpuClient {
    /// Connects an offloaded client on the DPU at `node`: one data-plane
    /// lane per tenant (jobs are dealt round-robin across tenants), QoS
    /// buckets installed, staging DRAM reserved from `agent`'s pool, and
    /// scoped rkeys armed.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        fabric: &mut Fabric,
        node: NodeId,
        server: NodeId,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
        agent: DpuAgent,
        tenant_specs: Vec<DpuTenantSpec>,
        seed: u64,
    ) -> Result<Self, DpuError> {
        Self::connect_cluster(
            fabric,
            node,
            &[server],
            cont,
            jobs,
            buf_len,
            domain,
            model,
            agent,
            tenant_specs,
            seed,
        )
    }

    /// [`Self::connect`] against every engine of a cluster: each tenant
    /// lane's inner client opens one connection per storage node, and the
    /// lane routes every op by the cluster's pool map — replication,
    /// degraded reads and failover all run on the DPU, the host only rings
    /// doorbells.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_cluster(
        fabric: &mut Fabric,
        node: NodeId,
        servers: &[NodeId],
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
        mut agent: DpuAgent,
        tenant_specs: Vec<DpuTenantSpec>,
        seed: u64,
    ) -> Result<Self, DpuError> {
        // Each tenant needs at least one job or its lane could never carry
        // I/O — a silent misconfiguration; reject the shape instead.
        if jobs == 0 || tenant_specs.is_empty() || jobs < tenant_specs.len() {
            return Err(DpuError::NoJobs);
        }
        let cont = cont.into();
        let class = fabric.node(node).class();
        let transport = fabric.transport();
        agent.reserve_dram(jobs as u64 * buf_len)?;

        let mut tenants = TenantManager::new(node);
        let mut io = ControlChannel::new(ControlModel::host_doorbell(), SimRng::new(seed ^ 0x10f0));
        for spec in &tenant_specs {
            tenants.register(fabric, spec.name.clone(), spec.qos, spec.rkey_scope);
            io.add_tenant(
                spec.name.clone(),
                Bytes::from(spec.name.as_bytes().to_vec()),
            );
        }

        let n_tenants = tenant_specs.len();
        let mut lanes = Vec::with_capacity(n_tenants);
        for (k, spec) in tenant_specs.into_iter().enumerate() {
            // Jobs j with j % n_tenants == k belong to this lane.
            let lane_jobs = (jobs + n_tenants - 1 - k) / n_tenants;
            // Staging MRs carry the tenant's rkey scope from the outset —
            // there is never a window where an unscoped key exists.
            let deadline = match tenants.rkey_expiry(SimTime::ZERO, &spec.name) {
                Some(Expiry::At(t)) if transport == Transport::Rdma => t,
                _ => SimTime::MAX,
            };
            let expiry = if deadline == SimTime::MAX {
                Expiry::Never
            } else {
                Expiry::At(deadline)
            };
            let daos = DaosClient::connect_scoped_multi(
                fabric,
                node,
                servers,
                &spec.name,
                cont.clone(),
                lane_jobs,
                buf_len,
                domain,
                model,
                expiry,
            )?;
            let rkey_deadline = vec![deadline; lane_jobs];
            let hello = ControlRequest::Hello {
                tenant: spec.name.clone(),
                auth: Bytes::from(spec.name.as_bytes().to_vec()),
            };
            let (_, res) = io.call(SimTime::ZERO, None, hello, |_, _| ControlResponse::Ok);
            let (session, _) = res?;
            lanes.push(TenantLane {
                name: spec.name,
                daos,
                rkey_scope: spec.rkey_scope,
                rkey_deadline,
                session,
                cache: None,
            });
        }
        let job_map = (0..jobs).map(|j| (j % n_tenants, j / n_tenants)).collect();
        Ok(DpuClient {
            node,
            agent,
            tenants,
            io,
            lanes,
            job_map,
            model,
            class,
            transport,
            stats: DpuStats::default(),
        })
    }

    /// The DPU node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The storage-server node.
    pub fn server(&self) -> NodeId {
        self.lanes[0].daos.server()
    }

    /// The first tenant's data-plane protection domain.
    pub fn pd(&self) -> PdId {
        self.lanes[0].daos.pd()
    }

    /// Total jobs across all tenant lanes.
    pub fn jobs(&self) -> usize {
        self.job_map.len()
    }

    /// The tenant a job is bound to.
    pub fn tenant_of(&self, job: usize) -> &str {
        &self.lanes[self.job_map[job].0].name
    }

    /// The agent (inline services, DRAM pool, management channel).
    pub fn agent(&self) -> &DpuAgent {
        &self.agent
    }

    /// Mutable agent access (management control calls).
    pub fn agent_mut(&mut self) -> &mut DpuAgent {
        &mut self.agent
    }

    /// The tenant manager (QoS state, PDs, admission counters).
    pub fn tenants(&self) -> &TenantManager {
        &self.tenants
    }

    /// Mutable tenant-manager access (registering further tenants).
    pub fn tenants_mut(&mut self) -> &mut TenantManager {
        &mut self.tenants
    }

    /// Offload-path counters, with the lanes' recovery-ladder counters
    /// folded in (retries run on the DPU, inside each lane's inner
    /// client; the host-visible stats carry the totals).
    pub fn dpu_stats(&self) -> DpuStats {
        let mut s = self.stats;
        s.retry = self.retry_stats();
        s.cache = self.cache_stats();
        s
    }

    /// Enables the DPU read cache: carves `total_bytes` out of the agent's
    /// DRAM pool (shrinking staging headroom one-for-one) and splits it
    /// evenly across the tenant lanes. Re-enabling with a new size
    /// releases the old carve first; entries never survive a resize.
    pub fn enable_read_cache(&mut self, total_bytes: u64) -> Result<(), DpuError> {
        self.disable_read_cache();
        let per_lane = total_bytes / self.lanes.len() as u64;
        if per_lane == 0 {
            return Err(DpuError::DramExhausted {
                requested: total_bytes,
                free: 0,
            });
        }
        self.agent
            .reserve_cache(per_lane * self.lanes.len() as u64)?;
        for lane in &mut self.lanes {
            lane.cache = Some(ReadCache::new(per_lane));
        }
        Ok(())
    }

    /// Disables the read cache and returns its DRAM carve to the staging
    /// pool. Counters the dropped caches accumulated are folded into the
    /// client's stats so [`Self::dpu_stats`] stays monotonic across an
    /// enable/disable cycle.
    pub fn disable_read_cache(&mut self) {
        let was_on = self.lanes.iter().any(|l| l.cache.is_some());
        for lane in &mut self.lanes {
            if let Some(cache) = lane.cache.take() {
                self.stats.cache.merge(cache.stats());
            }
        }
        if was_on {
            self.agent.release_cache();
        }
    }

    /// Whether the read cache is enabled.
    pub fn read_cache_enabled(&self) -> bool {
        self.lanes.iter().any(|l| l.cache.is_some())
    }

    /// Aggregate read-cache counters across the lanes (plus counters
    /// carried over from previously disabled caches).
    pub fn cache_stats(&self) -> DpuCacheStats {
        let mut total = self.stats.cache;
        for lane in &self.lanes {
            if let Some(cache) = &lane.cache {
                total.merge(cache.stats());
            }
        }
        total
    }

    /// Live cache occupancy: `(resident_bytes, capacity)` summed across
    /// the lane slices. Resident never exceeds capacity — the invariant
    /// the coherence property suite checks after every queue.
    pub fn cache_usage(&self) -> (u64, u64) {
        self.lanes
            .iter()
            .filter_map(|l| l.cache.as_ref())
            .fold((0, 0), |(r, c), cache| {
                (r + cache.resident_bytes(), c + cache.capacity())
            })
    }

    /// Copy-discipline accounting for cache hits (zero-copy handles out of
    /// DPU DRAM), mergeable with the fabric's and engines'
    /// `DataPlaneStats`.
    pub fn cache_data_plane_stats(&self) -> ros2_buf::DataPlaneStats {
        let mut total = ros2_buf::DataPlaneStats::default();
        for lane in &self.lanes {
            if let Some(cache) = &lane.cache {
                total.merge(cache.data_plane_stats());
            }
        }
        total
    }

    /// Aggregate recovery-ladder counters across every tenant lane.
    pub fn retry_stats(&self) -> RetryStats {
        let mut total = RetryStats::default();
        for lane in &self.lanes {
            total.merge(lane.daos.retry_stats());
        }
        total
    }

    /// Fault injection: wedges (or revives) `lane`'s doorbell servicing —
    /// a host submit or poll against a wedged lane burns the doorbell
    /// deadline and returns a typed timeout instead of spinning forever.
    pub fn wedge_lane(&mut self, lane: usize, on: bool) {
        let session = self.lanes[lane].session;
        self.io.set_stalled(session, on);
    }

    /// Delivers a RAS map snapshot to every tenant lane's cached map at
    /// `at` — the DPU terminates the RAS stream, so all lanes hear the
    /// same delivery at the same (possibly fault-delayed) instant.
    pub fn deliver_map(&mut self, at: SimTime, snap: MapSnapshot) {
        for lane in &mut self.lanes {
            lane.daos.deliver_map(at, snap.clone());
            if let Some(cache) = lane.cache.as_mut() {
                // Conservative: sweep as soon as the push is *scheduled*,
                // not when it lands — the cache may only ever under-serve,
                // never serve across a revision it has heard about.
                cache.note_map(snap.version());
            }
        }
    }

    /// Installs `snap` in every lane's cache immediately (the `MapQuery`
    /// reply path — authoritative, no delivery delay).
    pub fn sync_map(&mut self, snap: MapSnapshot) {
        for lane in &mut self.lanes {
            lane.daos.sync_map(snap.clone());
            if let Some(cache) = lane.cache.as_mut() {
                cache.note_map(snap.version());
            }
        }
    }

    /// Sets the recovery-ladder policy on every tenant lane.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for lane in &mut self.lanes {
            lane.daos.set_retry_policy(policy);
        }
    }

    /// Earliest instant any lane completed an op on a retry attempt
    /// (time-to-first-successful-retry across the whole offloaded client).
    pub fn first_successful_retry(&self) -> Option<SimTime> {
        self.lanes
            .iter()
            .filter_map(|l| l.daos.first_successful_retry())
            .min()
    }

    /// Aggregate booking counters over every lane's client cores.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for lane in &self.lanes {
            total.merge(lane.daos.resource_stats());
        }
        total
    }

    /// Forces every lane's pipelined path through the serial drain (see
    /// [`DaosClient::set_force_serial_pipeline`]) — the equivalence oracle
    /// for the offloaded arm.
    pub fn set_force_serial_pipeline(&mut self, on: bool) {
        for lane in &mut self.lanes {
            lane.daos.set_force_serial_pipeline(on);
        }
    }

    /// Resets lane core timing, QoS buckets, and offload counters to t=0
    /// (between preconditioning and a measured run).
    pub fn reset_timing(&mut self) {
        for lane in &mut self.lanes {
            lane.daos.reset_timing();
        }
        self.tenants.reset_timing();
        self.stats = DpuStats::default();
    }

    /// The host submit leg: one doorbell call announcing `ops`/`bytes`.
    /// Returns the instant the descriptor is live on the DPU.
    fn host_submit(
        &mut self,
        now: SimTime,
        lane: usize,
        ops: u32,
        bytes: u64,
    ) -> Result<SimTime, DaosError> {
        self.stats.host_submits += 1;
        let session = self.lanes[lane].session;
        let (at, res) = self.io.call(
            now,
            Some(session),
            ControlRequest::IoSubmit { ops, bytes },
            |_, _| ControlResponse::IoDone { ops: 0, retries: 0 },
        );
        res.map_err(map_control)?;
        self.stats.handoff_wait += at.saturating_since(now);
        Ok(at)
    }

    /// The host poll leg: reaps a completion that became ready at `done`.
    /// Returns the instant the host observes it.
    fn host_poll(&mut self, done: SimTime, lane: usize, ops: u32) -> Result<SimTime, DaosError> {
        self.stats.host_polls += 1;
        let session = self.lanes[lane].session;
        // The completion rides the lane's cumulative retry count back to
        // the host — retry behavior stays observable without the host
        // owning any data-plane state.
        let retries = self.lanes[lane]
            .daos
            .retry_stats()
            .retries
            .min(u32::MAX as u64) as u32;
        let (at, res) = self
            .io
            .call(done, Some(session), ControlRequest::IoPoll, |_, _| {
                ControlResponse::IoDone { ops, retries }
            });
        res.map_err(map_control)?;
        self.stats.handoff_wait += at.saturating_since(done);
        Ok(at)
    }

    /// QoS admission for one I/O of `bytes` arriving on the DPU at `now`.
    fn admit(&mut self, now: SimTime, lane: usize, bytes: u64) -> Result<SimTime, DaosError> {
        let grant = self
            .tenants
            .admit(now, &self.lanes[lane].name, bytes)
            .ok_or_else(|| {
                DaosError::Transport(
                    DpuError::UnknownTenant(self.lanes[lane].name.clone()).to_string(),
                )
            })?;
        self.stats.bytes_admitted += bytes;
        if grant > now {
            self.stats.ops_throttled += 1;
            self.stats.throttle_wait += grant.saturating_since(now);
        }
        Ok(grant)
    }

    /// The DPU-side CRC32C cost for `bytes` (computed on update, verified
    /// on fetch), at this node's core-class rate.
    ///
    /// Deliberately charged on the offload path only: the host-placement
    /// control arm is pinned bit-identical to its pre-offload behaviour
    /// (its CRC work is the engine-side scan/verify both arms already
    /// pay), so modelling the *client-side* checksum here is conservative
    /// — it can only understate the DPU's advantage in the A/B sweep.
    fn crc_cost(&mut self, bytes: u64) -> SimDuration {
        self.stats.crc_bytes += bytes;
        self.class
            .scale(per_byte(bytes, self.model.crc_ps_per_byte))
    }

    /// Re-registers `(lane, local)`'s staging MR when its rkey would be
    /// within [`RKEY_REFRESH_MARGIN`] plus `horizon` of expiry at `start`
    /// — in-flight pulls never outlive their rkey, and leaked rkeys still
    /// die. `horizon` is zero for serial ops; batches pass a conservative
    /// upper bound on their own span, since the whole fan-out runs on the
    /// registration checked here.
    fn ensure_rkey(
        &mut self,
        fabric: &mut Fabric,
        lane: usize,
        local: usize,
        start: SimTime,
        horizon: SimDuration,
    ) -> Result<(), DaosError> {
        if self.transport != Transport::Rdma {
            return Ok(());
        }
        let deadline = self.lanes[lane].rkey_deadline[local];
        if deadline == SimTime::MAX || start + RKEY_REFRESH_MARGIN + horizon < deadline {
            return Ok(());
        }
        let fresh = start + self.lanes[lane].rkey_scope;
        self.lanes[lane]
            .daos
            .set_mr_expiry(fabric, local, Expiry::At(fresh))?;
        self.lanes[lane].rkey_deadline[local] = fresh;
        self.stats.rkey_refreshes += 1;
        Ok(())
    }

    /// Conservative upper bound on how long `ops` data-plane phases
    /// totalling `bytes` can keep a registration busy past their start: the
    /// payload at a 1 GiB/s floor plus 100 µs per op dominates any real
    /// schedule (the wire alone moves >2 GiB/s, per-op overheads are
    /// ~20 µs). Fed to [`Self::ensure_rkey`] so refreshes always cover the
    /// op's own span.
    fn span_bound(ops: u64, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, 1 << 30) + SimDuration::from_micros(100).saturating_mul(ops)
    }

    /// Stages the offload preamble shared by every op: submit → admit →
    /// inline service → (update-path CRC) → rkey freshness (covering the
    /// op's own span). Returns the lane/local indices and the instant the
    /// data-plane phases may start. The op is counted as offloaded here —
    /// once the preamble clears, the DPU runs it, successful or not (the
    /// same attempt semantics as the batch path and the inner client's
    /// `ops()` counter).
    #[allow(clippy::too_many_arguments)]
    fn offload_start(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        job: usize,
        bytes: u64,
        is_update: bool,
    ) -> Result<(usize, usize, SimTime), DaosError> {
        let (lane, local) = self.job_map[job];
        let submitted = self.host_submit(now, lane, 1, bytes)?;
        let granted = self.admit(submitted, lane, bytes)?;
        let mut start = granted + self.agent.inline_cost(bytes);
        if is_update {
            start += self.crc_cost(bytes);
        }
        self.ensure_rkey(fabric, lane, local, start, Self::span_bound(1, bytes))?;
        self.stats.ops_offloaded += 1;
        Ok((lane, local, start))
    }

    /// The fetch epilogue: DPU-side verify + inline decrypt, then the host
    /// poll. Returns the host-visible completion instant.
    fn finish_fetch(
        &mut self,
        ready: SimTime,
        lane: usize,
        bytes: u64,
    ) -> Result<SimTime, DaosError> {
        let t = ready + self.crc_cost(bytes) + self.agent.inline_cost(bytes);
        self.host_poll(t, lane, 1)
    }
}

fn map_control(e: ControlError) -> DaosError {
    DaosError::Transport(format!("host doorbell: {e:?}"))
}

impl ObjectClient for DpuClient {
    fn update(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        let bytes = data.len() as u64;
        let (lane, local, start) = self.offload_start(fabric, now, job, bytes, true)?;
        // Write-through punch before the write is issued: the window where
        // a cached chunk could shadow this update never exists.
        if let Some(cache) = self.lanes[lane].cache.as_mut() {
            cache.punch(&oid, &dkey, &akey);
        }
        let done = self.lanes[lane]
            .daos
            .update(fabric, cluster, start, local, oid, dkey, akey, kind, data)?;
        self.host_poll(done, lane, 1)
    }

    fn fetch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        let (lane, local, start) = self.offload_start(fabric, now, job, len, false)?;
        // Probe the lane's cache slice. Only latest-epoch reads
        // participate — snapshot reads address history the cache does not
        // version. A hit serves from DPU DRAM: no fabric bookings, no ARM
        // CRC verify, no inline service — just the DRAM stream and the
        // host poll.
        let mut fill_key = None;
        if epoch == Epoch::LATEST && self.lanes[lane].cache.is_some() {
            let map_version = cluster.map().version();
            let commit = cluster.container_epoch(self.lanes[lane].daos.container());
            let key = CacheKey::new(oid, dkey.clone(), akey.clone(), kind, len);
            let hit = self.lanes[lane]
                .cache
                .as_mut()
                .expect("checked is_some")
                .probe(&key, map_version, commit);
            if let Some(data) = hit {
                let ready = start + ReadCache::service_cost(data.len() as u64);
                let at = self.host_poll(ready, lane, 1)?;
                return Ok((data, at));
            }
            fill_key = Some(key);
        }
        let (data, ready, meta) = self.lanes[lane].daos.fetch_with_meta(
            fabric, cluster, start, local, oid, dkey, akey, kind, epoch, len,
        )?;
        let at = self.finish_fetch(ready, lane, data.len() as u64)?;
        // Fill only from the boring case: leader route, healthy map. The
        // recovery ladder's completions are correct but bypass the cache.
        if let (Some(key), false) = (fill_key, meta.degraded) {
            self.lanes[lane]
                .cache
                .as_mut()
                .expect("fill_key implies a cache")
                .fill(key, data.clone(), meta.map_version, meta.commit_epoch);
        }
        Ok((data, at))
    }

    fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        let (lane, local) = self.job_map[job];
        let n = ops.len();
        if n == 0 {
            return Vec::new();
        }
        let total_bytes: u64 = ops
            .iter()
            .map(|op| match op {
                ClientOp::Update { data, .. } => data.len() as u64,
                ClientOp::Fetch { len, .. } => *len,
            })
            .sum();
        // One doorbell ring covers the whole queue (the batching win the
        // host keeps even though it no longer runs the client).
        let submitted = match self.host_submit(now, lane, n as u32, total_bytes) {
            Ok(t) => t,
            Err(e) => return whole_batch_error(&ops, e),
        };
        // Every op is admitted individually — tenant buckets see each byte.
        let mut start = submitted;
        for op in &ops {
            let (bytes, is_update) = match op {
                ClientOp::Update { data, .. } => (data.len() as u64, true),
                ClientOp::Fetch { len, .. } => (*len, false),
            };
            let granted = match self.admit(submitted, lane, bytes) {
                Ok(t) => t,
                Err(e) => return whole_batch_error(&ops, e),
            };
            let mut t = granted + self.agent.inline_cost(bytes);
            if is_update {
                t += self.crc_cost(bytes);
            }
            start = start.max(t);
        }
        // The whole fan-out runs against the registration checked here, so
        // cover the batch's own span. Scopes must exceed this bound for a
        // batch to be safe at all; every shipped world's scope (≥ 100 ms
        // vs multi-chunk batches of a few tens of MiB) does.
        let span = Self::span_bound(n as u64, total_bytes);
        if let Err(e) = self.ensure_rkey(fabric, lane, local, start, span) {
            return whole_batch_error(&ops, e);
        }
        self.stats.ops_offloaded += n as u64;
        // Cache interaction, before anything executes: punch every record
        // the batch writes (write-through), then probe the remaining
        // latest-epoch fetches. A fetch of a record this same batch writes
        // never probes — the engine's execution order decides its bytes.
        // The batch path probes but does not fill (fills are the pipelined
        // and serial paths' job, where leader-route provenance is cheap to
        // establish per op).
        let mut hits: Vec<Option<Bytes>> = vec![None; n];
        if self.lanes[lane].cache.is_some() {
            let written = punch_batch_writes(self.lanes[lane].cache.as_mut().unwrap(), &ops);
            let map_version = cluster.map().version();
            let commit = cluster.container_epoch(self.lanes[lane].daos.container());
            for (i, op) in ops.iter().enumerate() {
                if let Some(key) = probeable_key(op, &written) {
                    hits[i] = self.lanes[lane]
                        .cache
                        .as_mut()
                        .expect("checked is_some")
                        .probe(&key, map_version, commit);
                }
            }
        }
        let mut inner_idx = Vec::with_capacity(n);
        let mut inner_ops = Vec::with_capacity(n);
        for (i, op) in ops.into_iter().enumerate() {
            if hits[i].is_none() {
                inner_idx.push(i);
                inner_ops.push(op);
            }
        }
        let results = self.lanes[lane]
            .daos
            .execute_batch(fabric, cluster, start, local, inner_ops);
        let mut out: Vec<Option<ClientOpResult>> = (0..n).map(|_| None).collect();
        for (slot, r) in results.into_iter().enumerate() {
            out[inner_idx[slot]] = Some(match r {
                ClientOpResult::Update(Ok(done)) => {
                    ClientOpResult::Update(self.host_poll(done, lane, 1))
                }
                ClientOpResult::Fetch(Ok((data, ready))) => {
                    let bytes = data.len() as u64;
                    ClientOpResult::Fetch(
                        self.finish_fetch(ready, lane, bytes).map(|at| (data, at)),
                    )
                }
                err => err,
            });
        }
        for (i, hit) in hits.into_iter().enumerate() {
            if let Some(data) = hit {
                let ready = start + ReadCache::service_cost(data.len() as u64);
                out[i] = Some(ClientOpResult::Fetch(
                    self.host_poll(ready, lane, 1).map(|at| (data, at)),
                ));
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot is a hit or an inner result"))
            .collect()
    }

    fn execute_pipelined(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        let (lane, local) = self.job_map[job];
        let n = ops.len();
        if n == 0 {
            return Vec::new();
        }
        let total_bytes: u64 = ops
            .iter()
            .map(|op| match op {
                ClientOp::Update { data, .. } => data.len() as u64,
                ClientOp::Fetch { len, .. } => *len,
            })
            .sum();
        // One doorbell ring announces the whole queue, exactly like the
        // batch path — the host-side cost does not grow with depth.
        let submitted = match self.host_submit(now, lane, n as u32, total_bytes) {
            Ok(t) => t,
            Err(e) => return whole_batch_error(&ops, e),
        };
        // Per-op admission with NO barrier: each op enters the ring at its
        // own grant-plus-preamble instant, so an op throttled by the token
        // bucket delays only itself while earlier grants are already in
        // flight on the lane's data plane.
        let mut starts = Vec::with_capacity(n);
        let mut latest = submitted;
        for op in &ops {
            let (bytes, is_update) = match op {
                ClientOp::Update { data, .. } => (data.len() as u64, true),
                ClientOp::Fetch { len, .. } => (*len, false),
            };
            let granted = match self.admit(submitted, lane, bytes) {
                Ok(t) => t,
                Err(e) => return whole_batch_error(&ops, e),
            };
            let mut t = granted + self.agent.inline_cost(bytes);
            if is_update {
                t += self.crc_cost(bytes);
            }
            latest = latest.max(t);
            starts.push(t);
        }
        // The whole ring runs against the registration checked here; check
        // at the latest start (most conservative) with the full-queue span.
        let span = Self::span_bound(n as u64, total_bytes);
        if let Err(e) = self.ensure_rkey(fabric, lane, local, latest, span) {
            return whole_batch_error(&ops, e);
        }
        self.stats.ops_offloaded += n as u64;
        // Cache interaction before anything enters the ring: punch every
        // record this call writes, then probe the remaining latest-epoch
        // fetches against the lane's cached map revision (the same map the
        // ring routes by). Hits never enter the ring at all — no staging
        // legs, no fabric bookings. Misses remember their key so the drain
        // can fill from leader-path completions.
        let mut hits: Vec<Option<Bytes>> = vec![None; n];
        let mut fill_keys: Vec<Option<(CacheKey, u64)>> = vec![None; n];
        if self.lanes[lane].cache.is_some() {
            let written = punch_batch_writes(self.lanes[lane].cache.as_mut().unwrap(), &ops);
            for (i, op) in ops.iter().enumerate() {
                let Some(key) = probeable_key(op, &written) else {
                    continue;
                };
                let (_, _, version) = self.lanes[lane]
                    .daos
                    .probe_route(submitted, cluster, &key.oid);
                let commit = cluster.container_epoch(self.lanes[lane].daos.container());
                let hit = self.lanes[lane]
                    .cache
                    .as_mut()
                    .expect("checked is_some")
                    .probe(&key, version, commit);
                if hit.is_none() {
                    fill_keys[i] = Some((key, version));
                }
                hits[i] = hit;
            }
        }
        let mut ring_idx = Vec::with_capacity(n);
        let mut ring_ops = Vec::with_capacity(n);
        for (i, (op, t)) in ops.into_iter().zip(starts.iter().copied()).enumerate() {
            if hits[i].is_none() {
                ring_idx.push(i);
                ring_ops.push((op, t));
            }
        }
        let mut ring = OpRing::new(local, ring_idx.len());
        for (op, t) in ring_ops {
            ring.submit(&mut self.lanes[lane].daos, fabric, cluster, t, op);
        }
        let results = ring.drain(&mut self.lanes[lane].daos, fabric, cluster);
        // Fills are stamped with the commit epoch the drain left behind.
        // That is safe precisely because records this call writes never
        // fill (suppressed above): for every filled chunk, its record's
        // bytes at this epoch are what the fetch read.
        let commit_now = cluster.container_epoch(self.lanes[lane].daos.container());
        let fill_ok = ring.fill_ok().to_vec();
        let mut out: Vec<Option<ClientOpResult>> = (0..n).map(|_| None).collect();
        for (slot, r) in results.into_iter().enumerate() {
            let i = ring_idx[slot];
            if let (true, Some((key, version))) = (fill_ok[slot], fill_keys[i].take()) {
                if let ClientOpResult::Fetch(Ok((data, _))) = &r {
                    self.lanes[lane]
                        .cache
                        .as_mut()
                        .expect("fill key implies a cache")
                        .fill(key, data.clone(), version, commit_now);
                }
            }
            out[i] = Some(match r {
                ClientOpResult::Update(Ok(done)) => {
                    ClientOpResult::Update(self.host_poll(done, lane, 1))
                }
                ClientOpResult::Fetch(Ok((data, ready))) => {
                    let bytes = data.len() as u64;
                    ClientOpResult::Fetch(
                        self.finish_fetch(ready, lane, bytes).map(|at| (data, at)),
                    )
                }
                err => err,
            });
        }
        for (i, hit) in hits.into_iter().enumerate() {
            if let Some(data) = hit {
                let ready = starts[i] + ReadCache::service_cost(data.len() as u64);
                out[i] = Some(ClientOpResult::Fetch(
                    self.host_poll(ready, lane, 1).map(|at| (data, at)),
                ));
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot is a hit or a ring result"))
            .collect()
    }

    fn ops(&self) -> u64 {
        // Hits never reach the inner clients, but they are completed I/Os
        // the application issued — count them alongside.
        self.lanes.iter().map(|l| l.daos.ops()).sum::<u64>() + self.cache_stats().hits
    }
}

/// Punches every record `ops` writes out of `cache` (write-through) and
/// returns the written key set: fetches of those records inside the same
/// call must neither probe nor fill, because the call's own execution
/// order — not the cache — decides their bytes.
fn punch_batch_writes(cache: &mut ReadCache, ops: &[ClientOp]) -> Vec<(ObjectId, DKey, AKey)> {
    let mut written = Vec::new();
    for op in ops {
        if let ClientOp::Update {
            oid, dkey, akey, ..
        } = op
        {
            cache.punch(oid, dkey, akey);
            written.push((*oid, dkey.clone(), akey.clone()));
        }
    }
    written
}

/// The cache key for `op` when it is allowed to probe: a latest-epoch
/// fetch of a record the surrounding call does not write. Snapshot-epoch
/// reads address history the cache does not version, so they bypass it.
fn probeable_key(op: &ClientOp, written: &[(ObjectId, DKey, AKey)]) -> Option<CacheKey> {
    let ClientOp::Fetch {
        oid,
        dkey,
        akey,
        kind,
        epoch,
        len,
    } = op
    else {
        return None;
    };
    if *epoch != Epoch::LATEST {
        return None;
    }
    if written
        .iter()
        .any(|(o, d, a)| o == oid && d == dkey && a == akey)
    {
        return None;
    }
    Some(CacheKey::new(*oid, dkey.clone(), akey.clone(), *kind, *len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::default_control;
    use ros2_daos::{DaosEngine, ObjClass};
    use ros2_fabric::NodeSpec;
    use ros2_hw::NvmeModel;
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_spdk::BdevLayer;

    fn world(transport: Transport) -> (Fabric, EngineCluster) {
        let fabric = Fabric::new(
            transport,
            vec![NodeSpec::bluefield3(), NodeSpec::storage_server()],
            11,
        );
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        let mut engine = DaosEngine::new(
            "pool0",
            bdevs,
            256 << 20,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        engine.cont_create("cont0").unwrap();
        (fabric, EngineCluster::single(engine))
    }

    fn connect(
        fabric: &mut Fabric,
        specs: Vec<DpuTenantSpec>,
        jobs: usize,
    ) -> Result<DpuClient, DpuError> {
        let agent = DpuAgent::new(NodeId(0), 30 << 30, default_control(5));
        DpuClient::connect(
            fabric,
            NodeId(0),
            NodeId(1),
            "cont0",
            jobs,
            4 << 20,
            MemoryDomain::DpuDram,
            DaosCostModel::default_model(),
            agent,
            specs,
            99,
        )
    }

    #[test]
    fn offloaded_round_trip_pays_the_handoff() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("llm")], 2).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 1);
        let data = Bytes::from(vec![0x7Bu8; 1 << 20]);
        let done = c
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                data.clone(),
            )
            .unwrap();
        let (back, at) = c
            .fetch(
                &mut fabric,
                &mut cluster,
                done,
                1,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                1 << 20,
            )
            .unwrap();
        assert_eq!(back, data);
        assert!(at > done);
        let s = c.dpu_stats();
        assert_eq!(s.ops_offloaded, 2);
        assert_eq!(s.host_submits, 2);
        assert_eq!(s.host_polls, 2);
        assert!(
            s.handoff_wait >= SimDuration::from_micros(8),
            "submit+poll \
                 pairs must each pay the doorbell RTT; got {:?}",
            s.handoff_wait
        );
        assert_eq!(s.bytes_admitted, 2 << 20);
        assert_eq!(s.crc_bytes, 2 << 20, "update CRC + fetch verify");
        assert_eq!(c.ops(), 2);
    }

    #[test]
    fn every_byte_is_admitted_and_throttling_shapes_grants() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let limited = DpuTenantSpec {
            name: "capped".into(),
            qos: QosLimits {
                ops_per_sec: 1_000_000,
                bytes_per_sec: 8 << 20, // 8 MiB/s
                burst: (1 << 10, 1 << 20),
            },
            rkey_scope: SimDuration::from_secs(30),
        };
        let mut c = connect(&mut fabric, vec![limited], 1).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 2);
        let mut t = SimTime::ZERO;
        for i in 0..4u64 {
            t = c
                .update(
                    &mut fabric,
                    &mut cluster,
                    t,
                    0,
                    oid,
                    DKey::from_u64(i),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    Bytes::from(vec![1u8; 1 << 20]),
                )
                .unwrap();
        }
        // 4 MiB through an 8 MiB/s bucket with a 1 MiB burst: >= ~0.375 s.
        assert!(
            t >= SimTime::from_millis(350),
            "QoS must pace the stream; finished at {t}"
        );
        let s = c.dpu_stats();
        assert_eq!(s.bytes_admitted, 4 << 20);
        assert!(s.ops_throttled >= 3, "throttled {}", s.ops_throttled);
        assert!(s.throttle_wait > SimDuration::from_millis(300));
        let ctx = c.tenants().tenant("capped").unwrap();
        assert_eq!(ctx.qos.admitted.1, 4 << 20);
    }

    #[test]
    fn scoped_rkeys_refresh_instead_of_expiring_mid_pull() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let short = DpuTenantSpec {
            name: "short".into(),
            qos: QosLimits::unlimited(),
            rkey_scope: SimDuration::from_millis(100),
        };
        let mut c = connect(&mut fabric, vec![short], 1).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 3);
        // Ops spaced past the 100 ms scope force refreshes; none may fail
        // and the NIC must see zero expired-rkey violations.
        let mut t = SimTime::ZERO;
        for i in 0..5u64 {
            t = c
                .update(
                    &mut fabric,
                    &mut cluster,
                    t.max(SimTime::from_millis(i * 120)),
                    0,
                    oid,
                    DKey::from_u64(i),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    Bytes::from(vec![2u8; 64 << 10]),
                )
                .unwrap();
        }
        assert!(
            c.dpu_stats().rkey_refreshes >= 4,
            "refreshes {}",
            c.dpu_stats().rkey_refreshes
        );
        assert_eq!(fabric.node(NodeId(0)).rdma.violations().total(), 0);
    }

    #[test]
    fn tenants_get_dedicated_lanes_and_pds() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(
            &mut fabric,
            vec![DpuTenantSpec::unlimited("a"), DpuTenantSpec::unlimited("b")],
            4,
        )
        .unwrap();
        assert_eq!(c.jobs(), 4);
        assert_eq!(c.tenant_of(0), "a");
        assert_eq!(c.tenant_of(1), "b");
        assert_eq!(c.tenant_of(2), "a");
        // Distinct PDs per tenant lane.
        assert_ne!(c.lanes[0].daos.pd(), c.lanes[1].daos.pd());
        // Both lanes actually move data.
        let oid = ObjectId::new(ObjClass::Sx, 9);
        for job in 0..4 {
            c.update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                job,
                oid,
                DKey::from_u64(job as u64),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![3u8; 4 << 10]),
            )
            .unwrap();
        }
        assert_eq!(c.tenants().tenant("a").unwrap().qos.admitted.0, 2);
        assert_eq!(c.tenants().tenant("b").unwrap().qos.admitted.0, 2);
    }

    #[test]
    fn batch_rings_the_doorbell_once() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 1).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 4);
        let ops: Vec<ClientOp> = (0..8u64)
            .map(|i| ClientOp::Update {
                oid,
                dkey: DKey::from_u64(i),
                akey: AKey::from_str("data"),
                kind: ValueKind::Array { offset: 0 },
                data: Bytes::from(vec![4u8; 128 << 10]),
            })
            .collect();
        let results = c.execute_batch(&mut fabric, &mut cluster, SimTime::ZERO, 0, ops);
        assert_eq!(results.len(), 8);
        for r in results {
            r.into_update().unwrap();
        }
        let s = c.dpu_stats();
        assert_eq!(s.host_submits, 1, "one doorbell for the whole batch");
        assert_eq!(s.host_polls, 8, "every completion is reaped");
        assert_eq!(s.bytes_admitted, 8 * (128 << 10));
    }

    #[test]
    fn dpu_tcp_fallback_path_works_without_rkeys() {
        let (mut fabric, mut cluster) = world(Transport::Tcp);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 1).unwrap();
        let oid = ObjectId::new(ObjClass::S1, 5);
        let done = c
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Bytes::from_static(b"meta"),
            )
            .unwrap();
        let (back, _) = c
            .fetch(
                &mut fabric,
                &mut cluster,
                done,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Epoch::LATEST,
                4,
            )
            .unwrap();
        assert_eq!(&back[..], b"meta");
        assert_eq!(c.dpu_stats().rkey_refreshes, 0, "no MRs on TCP");
    }

    #[test]
    fn wedged_lane_times_out_instead_of_spinning() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 1).unwrap();
        c.wedge_lane(0, true);
        let oid = ObjectId::new(ObjClass::Sx, 6);
        let err = c
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![5u8; 4 << 10]),
            )
            .unwrap_err();
        assert!(
            format!("{err:?}").contains("Timeout"),
            "a wedged lane must fail with a typed timeout, got {err:?}"
        );
        // The bounded wait is the doorbell deadline, not forever: reviving
        // the lane restores service and the op completes.
        c.wedge_lane(0, false);
        c.update(
            &mut fabric,
            &mut cluster,
            SimTime::ZERO,
            0,
            oid,
            DKey::from_u64(0),
            AKey::from_str("data"),
            ValueKind::Array { offset: 0 },
            Bytes::from(vec![5u8; 4 << 10]),
        )
        .unwrap();
    }

    #[test]
    fn read_cache_turns_repeat_reads_into_dram_hits() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("llm")], 1).unwrap();
        c.enable_read_cache(64 << 20).unwrap();
        assert_eq!(c.agent().cache_reserved(), 64 << 20);
        let oid = ObjectId::new(ObjClass::Sx, 20);
        let data = Bytes::from(vec![0x5au8; 16 << 10]);
        let done = c
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                data.clone(),
            )
            .unwrap();
        let fetch = |c: &mut DpuClient, fabric: &mut Fabric, cluster: &mut EngineCluster, at| {
            c.fetch(
                fabric,
                cluster,
                at,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                16 << 10,
            )
            .unwrap()
        };
        let (cold, t1) = fetch(&mut c, &mut fabric, &mut cluster, done);
        let crc_after_miss = c.dpu_stats().crc_bytes;
        let (warm, t2) = fetch(&mut c, &mut fabric, &mut cluster, t1);
        assert_eq!(cold, data);
        assert_eq!(warm, data);
        let s = c.cache_stats();
        assert_eq!((s.hits, s.misses, s.fills), (1, 1, 1));
        assert_eq!(s.bytes_served, 16 << 10);
        assert_eq!(
            c.dpu_stats().crc_bytes,
            crc_after_miss,
            "a hit books zero ARM CRC"
        );
        assert!(
            t2.saturating_since(t1) < t1.saturating_since(done),
            "warm read must beat the cold read: warm {:?} cold {:?}",
            t2.saturating_since(t1),
            t1.saturating_since(done)
        );
        assert_eq!(c.cache_data_plane_stats().bytes_zero_copy, 16 << 10);
        assert_eq!(c.ops(), 3, "the hit still counts as a completed op");
    }

    #[test]
    fn local_write_punches_the_cached_chunk() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("llm")], 1).unwrap();
        c.enable_read_cache(8 << 20).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 21);
        let dk = DKey::from_u64(0);
        let ak = AKey::from_str("data");
        let kind = ValueKind::Array { offset: 0 };
        let mut t = SimTime::ZERO;
        let write = |c: &mut DpuClient, fabric: &mut Fabric, cluster: &mut EngineCluster, t, b| {
            c.update(
                fabric,
                cluster,
                t,
                0,
                oid,
                dk.clone(),
                ak.clone(),
                kind,
                Bytes::from(vec![b; 4 << 10]),
            )
            .unwrap()
        };
        t = write(&mut c, &mut fabric, &mut cluster, t, 1);
        let (first, t1) = c
            .fetch(
                &mut fabric,
                &mut cluster,
                t,
                0,
                oid,
                dk.clone(),
                ak.clone(),
                kind,
                Epoch::LATEST,
                4 << 10,
            )
            .unwrap();
        assert_eq!(first[0], 1);
        // Overwrite: the punch must beat any cached copy.
        t = write(&mut c, &mut fabric, &mut cluster, t1, 2);
        let (second, _) = c
            .fetch(
                &mut fabric,
                &mut cluster,
                t,
                0,
                oid,
                dk.clone(),
                ak.clone(),
                kind,
                Epoch::LATEST,
                4 << 10,
            )
            .unwrap();
        assert_eq!(second[0], 2, "cache must never shadow a local write");
        let s = c.cache_stats();
        assert_eq!(s.hits, 0);
        assert!(s.invalidations >= 1, "the punch is counted");
    }

    #[test]
    fn cache_enable_disable_balances_the_dram_carve() {
        let (mut fabric, _) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("llm")], 2).unwrap();
        let staging = c.agent().dram_used();
        c.enable_read_cache(1 << 30).unwrap();
        assert_eq!(c.agent().dram_used(), staging + (1 << 30));
        assert!(c.read_cache_enabled());
        // Resizing releases the old carve before taking the new one.
        c.enable_read_cache(2 << 30).unwrap();
        assert_eq!(c.agent().dram_used(), staging + (2 << 30));
        c.disable_read_cache();
        assert!(!c.read_cache_enabled());
        assert_eq!(c.agent().dram_used(), staging, "carve fully returned");
        assert_eq!(c.agent().over_releases.get(), 0);
        // A carve bigger than the pool is refused and leaves no residue.
        assert!(c.enable_read_cache(64 << 30).is_err());
        assert_eq!(c.agent().dram_used(), staging);
    }

    #[test]
    fn connect_rejects_empty_shapes() {
        let (mut fabric, _) = world(Transport::Rdma);
        assert_eq!(
            connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 0)
                .err()
                .unwrap(),
            DpuError::NoJobs
        );
        assert_eq!(
            connect(&mut fabric, vec![], 4).err().unwrap(),
            DpuError::NoJobs
        );
        // More tenants than jobs would leave a lane that can never carry
        // I/O — rejected rather than silently provisioned.
        assert_eq!(
            connect(
                &mut fabric,
                vec![DpuTenantSpec::unlimited("a"), DpuTenantSpec::unlimited("b")],
                1,
            )
            .err()
            .unwrap(),
            DpuError::NoJobs
        );
    }
}
