//! The DPU-offloaded DAOS client — the paper's headline architecture made
//! load-bearing (§3.2).
//!
//! With [`DpuClient`] the host application no longer runs libdaos at all.
//! Per data-plane I/O the host pays exactly an **RPC submit/poll pair**
//! over the [`ControlChannel`]'s PCIe doorbell model; everything else runs
//! on the BlueField-3:
//!
//! 1. **Submit** — the host rings the doorbell with an I/O descriptor
//!    (`ControlRequest::IoSubmit`); no payload bytes cross the host kernel.
//! 2. **QoS admission** — every byte the DPU touches passes
//!    [`TenantManager::admit`]: per-tenant ops/bytes token buckets delay
//!    the op until its grant instant, and the delay is accounted.
//! 3. **Scoped rkeys** — the staging MR carries the tenant's rkey expiry;
//!    when a registration nears its deadline the client re-registers and
//!    counts the refresh, so a leaked rkey dies on schedule without ever
//!    failing a legitimate in-flight pull.
//! 4. **Inline services + checksums** — the agent's inline service (e.g.
//!    AES-GCM) and the client-side CRC32C (computed on update, verified on
//!    fetch) are paid at `CoreClass::DpuArm` rates.
//! 5. **Data plane** — staging into DPU DRAM, descriptor send, the
//!    server's RDMA pull (or push on fetch), and completion handling run
//!    on a per-tenant [`DaosClient`] constructed on the DPU node: its own
//!    protection domain, QPs, and staging buffers — the paper's "dedicated
//!    QPs/PDs, per-tenant queues and rate limits".
//! 6. **Poll** — the host reaps the completion queue; the completion
//!    instant the application sees includes the handoff both ways.
//!
//! All of it is observable through [`DpuStats`], which travels alongside
//! `ResourceStats` and `DataPlaneStats` in the benchmark reports.

use bytes::Bytes;
use ros2_ctl::{ControlChannel, ControlError, ControlModel, ControlRequest, ControlResponse};
use ros2_daos::{
    whole_batch_error, ClientOp, ClientOpResult, DaosClient, DaosCostModel, DaosError,
    EngineCluster, Epoch, MapSnapshot, ObjectClient, ObjectId, OpRing, RetryPolicy, RetryStats,
};
use ros2_daos::{AKey, DKey, ValueKind};
use ros2_fabric::Fabric;
use ros2_hw::{per_byte, CoreClass, Transport};
use ros2_sim::{ResourceStats, SimDuration, SimRng, SimTime};
use ros2_verbs::{Expiry, MemoryDomain, NodeId, PdId};

use crate::agent::DpuAgent;
use crate::error::DpuError;
use crate::tenant::{QosLimits, TenantManager};

/// One tenant to provision on the DPU client.
#[derive(Clone, Debug)]
pub struct DpuTenantSpec {
    /// Tenant identity (control-channel credential and PD label).
    pub name: String,
    /// QoS allocation enforced at admission.
    pub qos: QosLimits,
    /// Validity window stamped on the tenant's staging rkeys.
    pub rkey_scope: SimDuration,
}

impl DpuTenantSpec {
    /// An unthrottled tenant with the default 30 s rkey scope.
    pub fn unlimited(name: impl Into<String>) -> Self {
        DpuTenantSpec {
            name: name.into(),
            qos: QosLimits::unlimited(),
            rkey_scope: SimDuration::from_secs(30),
        }
    }
}

/// Offload-path counters, reported alongside `ResourceStats` (booking core)
/// and `DataPlaneStats` (copy/CRC accounting).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DpuStats {
    /// Data-plane I/Os that ran fully on the DPU.
    pub ops_offloaded: u64,
    /// Host→DPU doorbell submits (batches count once).
    pub host_submits: u64,
    /// Host completion-queue polls.
    pub host_polls: u64,
    /// Cumulative host↔DPU handoff latency (submit + poll legs).
    pub handoff_wait: SimDuration,
    /// Payload bytes admitted through the tenant QoS buckets.
    pub bytes_admitted: u64,
    /// Admissions delayed by a token bucket.
    pub ops_throttled: u64,
    /// Cumulative admission delay.
    pub throttle_wait: SimDuration,
    /// Staging-MR re-registrations forced by rkey expiry.
    pub rkey_refreshes: u64,
    /// Bytes checksummed on the DPU (update CRCs + fetch verifies).
    pub crc_bytes: u64,
    /// Recovery-ladder counters accumulated by the lanes' pipelined
    /// clients — the DPU retries *on the DPU*; the host only sees the
    /// totals ride back on `IoDone`.
    pub retry: RetryStats,
}

impl DpuStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: DpuStats) {
        self.ops_offloaded += other.ops_offloaded;
        self.host_submits += other.host_submits;
        self.host_polls += other.host_polls;
        self.handoff_wait += other.handoff_wait;
        self.bytes_admitted += other.bytes_admitted;
        self.ops_throttled += other.ops_throttled;
        self.throttle_wait += other.throttle_wait;
        self.rkey_refreshes += other.rkey_refreshes;
        self.crc_bytes += other.crc_bytes;
        self.retry.merge(other.retry);
    }
}

/// One tenant's slice of the offloaded client: a dedicated data-plane
/// [`DaosClient`] (own PD, QPs, staging buffers) plus its control session
/// and rkey deadlines.
struct TenantLane {
    name: String,
    daos: DaosClient,
    rkey_scope: SimDuration,
    /// Per-local-job rkey deadline (RDMA transports; `SimTime::MAX` on
    /// TCP, where no memory is registered).
    rkey_deadline: Vec<SimTime>,
    /// Doorbell-channel session for this tenant.
    session: u64,
}

/// Refresh a registration when it has less than this long left to live at
/// op-start: long enough that a pull issued now cannot outlive the rkey,
/// short enough that a leaked rkey still dies promptly.
const RKEY_REFRESH_MARGIN: SimDuration = SimDuration::from_millis(50);

/// The offloaded client (see the module docs for the op pipeline).
pub struct DpuClient {
    node: NodeId,
    /// The DPU agent: control-channel termination, staging-DRAM pool,
    /// inline services.
    agent: DpuAgent,
    tenants: TenantManager,
    /// The host↔DPU I/O doorbell (submit/poll pair per op).
    io: ControlChannel,
    lanes: Vec<TenantLane>,
    /// Global job index → (lane, lane-local job).
    job_map: Vec<(usize, usize)>,
    model: DaosCostModel,
    class: CoreClass,
    transport: Transport,
    stats: DpuStats,
}

impl DpuClient {
    /// Connects an offloaded client on the DPU at `node`: one data-plane
    /// lane per tenant (jobs are dealt round-robin across tenants), QoS
    /// buckets installed, staging DRAM reserved from `agent`'s pool, and
    /// scoped rkeys armed.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        fabric: &mut Fabric,
        node: NodeId,
        server: NodeId,
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
        agent: DpuAgent,
        tenant_specs: Vec<DpuTenantSpec>,
        seed: u64,
    ) -> Result<Self, DpuError> {
        Self::connect_cluster(
            fabric,
            node,
            &[server],
            cont,
            jobs,
            buf_len,
            domain,
            model,
            agent,
            tenant_specs,
            seed,
        )
    }

    /// [`Self::connect`] against every engine of a cluster: each tenant
    /// lane's inner client opens one connection per storage node, and the
    /// lane routes every op by the cluster's pool map — replication,
    /// degraded reads and failover all run on the DPU, the host only rings
    /// doorbells.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_cluster(
        fabric: &mut Fabric,
        node: NodeId,
        servers: &[NodeId],
        cont: impl Into<String>,
        jobs: usize,
        buf_len: u64,
        domain: MemoryDomain,
        model: DaosCostModel,
        mut agent: DpuAgent,
        tenant_specs: Vec<DpuTenantSpec>,
        seed: u64,
    ) -> Result<Self, DpuError> {
        // Each tenant needs at least one job or its lane could never carry
        // I/O — a silent misconfiguration; reject the shape instead.
        if jobs == 0 || tenant_specs.is_empty() || jobs < tenant_specs.len() {
            return Err(DpuError::NoJobs);
        }
        let cont = cont.into();
        let class = fabric.node(node).class();
        let transport = fabric.transport();
        agent.reserve_dram(jobs as u64 * buf_len)?;

        let mut tenants = TenantManager::new(node);
        let mut io = ControlChannel::new(ControlModel::host_doorbell(), SimRng::new(seed ^ 0x10f0));
        for spec in &tenant_specs {
            tenants.register(fabric, spec.name.clone(), spec.qos, spec.rkey_scope);
            io.add_tenant(
                spec.name.clone(),
                Bytes::from(spec.name.as_bytes().to_vec()),
            );
        }

        let n_tenants = tenant_specs.len();
        let mut lanes = Vec::with_capacity(n_tenants);
        for (k, spec) in tenant_specs.into_iter().enumerate() {
            // Jobs j with j % n_tenants == k belong to this lane.
            let lane_jobs = (jobs + n_tenants - 1 - k) / n_tenants;
            // Staging MRs carry the tenant's rkey scope from the outset —
            // there is never a window where an unscoped key exists.
            let deadline = match tenants.rkey_expiry(SimTime::ZERO, &spec.name) {
                Some(Expiry::At(t)) if transport == Transport::Rdma => t,
                _ => SimTime::MAX,
            };
            let expiry = if deadline == SimTime::MAX {
                Expiry::Never
            } else {
                Expiry::At(deadline)
            };
            let daos = DaosClient::connect_scoped_multi(
                fabric,
                node,
                servers,
                &spec.name,
                cont.clone(),
                lane_jobs,
                buf_len,
                domain,
                model,
                expiry,
            )?;
            let rkey_deadline = vec![deadline; lane_jobs];
            let hello = ControlRequest::Hello {
                tenant: spec.name.clone(),
                auth: Bytes::from(spec.name.as_bytes().to_vec()),
            };
            let (_, res) = io.call(SimTime::ZERO, None, hello, |_, _| ControlResponse::Ok);
            let (session, _) = res?;
            lanes.push(TenantLane {
                name: spec.name,
                daos,
                rkey_scope: spec.rkey_scope,
                rkey_deadline,
                session,
            });
        }
        let job_map = (0..jobs).map(|j| (j % n_tenants, j / n_tenants)).collect();
        Ok(DpuClient {
            node,
            agent,
            tenants,
            io,
            lanes,
            job_map,
            model,
            class,
            transport,
            stats: DpuStats::default(),
        })
    }

    /// The DPU node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The storage-server node.
    pub fn server(&self) -> NodeId {
        self.lanes[0].daos.server()
    }

    /// The first tenant's data-plane protection domain.
    pub fn pd(&self) -> PdId {
        self.lanes[0].daos.pd()
    }

    /// Total jobs across all tenant lanes.
    pub fn jobs(&self) -> usize {
        self.job_map.len()
    }

    /// The tenant a job is bound to.
    pub fn tenant_of(&self, job: usize) -> &str {
        &self.lanes[self.job_map[job].0].name
    }

    /// The agent (inline services, DRAM pool, management channel).
    pub fn agent(&self) -> &DpuAgent {
        &self.agent
    }

    /// Mutable agent access (management control calls).
    pub fn agent_mut(&mut self) -> &mut DpuAgent {
        &mut self.agent
    }

    /// The tenant manager (QoS state, PDs, admission counters).
    pub fn tenants(&self) -> &TenantManager {
        &self.tenants
    }

    /// Mutable tenant-manager access (registering further tenants).
    pub fn tenants_mut(&mut self) -> &mut TenantManager {
        &mut self.tenants
    }

    /// Offload-path counters, with the lanes' recovery-ladder counters
    /// folded in (retries run on the DPU, inside each lane's inner
    /// client; the host-visible stats carry the totals).
    pub fn dpu_stats(&self) -> DpuStats {
        let mut s = self.stats;
        s.retry = self.retry_stats();
        s
    }

    /// Aggregate recovery-ladder counters across every tenant lane.
    pub fn retry_stats(&self) -> RetryStats {
        let mut total = RetryStats::default();
        for lane in &self.lanes {
            total.merge(lane.daos.retry_stats());
        }
        total
    }

    /// Fault injection: wedges (or revives) `lane`'s doorbell servicing —
    /// a host submit or poll against a wedged lane burns the doorbell
    /// deadline and returns a typed timeout instead of spinning forever.
    pub fn wedge_lane(&mut self, lane: usize, on: bool) {
        let session = self.lanes[lane].session;
        self.io.set_stalled(session, on);
    }

    /// Delivers a RAS map snapshot to every tenant lane's cached map at
    /// `at` — the DPU terminates the RAS stream, so all lanes hear the
    /// same delivery at the same (possibly fault-delayed) instant.
    pub fn deliver_map(&mut self, at: SimTime, snap: MapSnapshot) {
        for lane in &mut self.lanes {
            lane.daos.deliver_map(at, snap.clone());
        }
    }

    /// Installs `snap` in every lane's cache immediately (the `MapQuery`
    /// reply path — authoritative, no delivery delay).
    pub fn sync_map(&mut self, snap: MapSnapshot) {
        for lane in &mut self.lanes {
            lane.daos.sync_map(snap.clone());
        }
    }

    /// Sets the recovery-ladder policy on every tenant lane.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for lane in &mut self.lanes {
            lane.daos.set_retry_policy(policy);
        }
    }

    /// Earliest instant any lane completed an op on a retry attempt
    /// (time-to-first-successful-retry across the whole offloaded client).
    pub fn first_successful_retry(&self) -> Option<SimTime> {
        self.lanes
            .iter()
            .filter_map(|l| l.daos.first_successful_retry())
            .min()
    }

    /// Aggregate booking counters over every lane's client cores.
    pub fn resource_stats(&self) -> ResourceStats {
        let mut total = ResourceStats::default();
        for lane in &self.lanes {
            total.merge(lane.daos.resource_stats());
        }
        total
    }

    /// Forces every lane's pipelined path through the serial drain (see
    /// [`DaosClient::set_force_serial_pipeline`]) — the equivalence oracle
    /// for the offloaded arm.
    pub fn set_force_serial_pipeline(&mut self, on: bool) {
        for lane in &mut self.lanes {
            lane.daos.set_force_serial_pipeline(on);
        }
    }

    /// Resets lane core timing, QoS buckets, and offload counters to t=0
    /// (between preconditioning and a measured run).
    pub fn reset_timing(&mut self) {
        for lane in &mut self.lanes {
            lane.daos.reset_timing();
        }
        self.tenants.reset_timing();
        self.stats = DpuStats::default();
    }

    /// The host submit leg: one doorbell call announcing `ops`/`bytes`.
    /// Returns the instant the descriptor is live on the DPU.
    fn host_submit(
        &mut self,
        now: SimTime,
        lane: usize,
        ops: u32,
        bytes: u64,
    ) -> Result<SimTime, DaosError> {
        self.stats.host_submits += 1;
        let session = self.lanes[lane].session;
        let (at, res) = self.io.call(
            now,
            Some(session),
            ControlRequest::IoSubmit { ops, bytes },
            |_, _| ControlResponse::IoDone { ops: 0, retries: 0 },
        );
        res.map_err(map_control)?;
        self.stats.handoff_wait += at.saturating_since(now);
        Ok(at)
    }

    /// The host poll leg: reaps a completion that became ready at `done`.
    /// Returns the instant the host observes it.
    fn host_poll(&mut self, done: SimTime, lane: usize, ops: u32) -> Result<SimTime, DaosError> {
        self.stats.host_polls += 1;
        let session = self.lanes[lane].session;
        // The completion rides the lane's cumulative retry count back to
        // the host — retry behavior stays observable without the host
        // owning any data-plane state.
        let retries = self.lanes[lane]
            .daos
            .retry_stats()
            .retries
            .min(u32::MAX as u64) as u32;
        let (at, res) = self
            .io
            .call(done, Some(session), ControlRequest::IoPoll, |_, _| {
                ControlResponse::IoDone { ops, retries }
            });
        res.map_err(map_control)?;
        self.stats.handoff_wait += at.saturating_since(done);
        Ok(at)
    }

    /// QoS admission for one I/O of `bytes` arriving on the DPU at `now`.
    fn admit(&mut self, now: SimTime, lane: usize, bytes: u64) -> Result<SimTime, DaosError> {
        let grant = self
            .tenants
            .admit(now, &self.lanes[lane].name, bytes)
            .ok_or_else(|| {
                DaosError::Transport(
                    DpuError::UnknownTenant(self.lanes[lane].name.clone()).to_string(),
                )
            })?;
        self.stats.bytes_admitted += bytes;
        if grant > now {
            self.stats.ops_throttled += 1;
            self.stats.throttle_wait += grant.saturating_since(now);
        }
        Ok(grant)
    }

    /// The DPU-side CRC32C cost for `bytes` (computed on update, verified
    /// on fetch), at this node's core-class rate.
    ///
    /// Deliberately charged on the offload path only: the host-placement
    /// control arm is pinned bit-identical to its pre-offload behaviour
    /// (its CRC work is the engine-side scan/verify both arms already
    /// pay), so modelling the *client-side* checksum here is conservative
    /// — it can only understate the DPU's advantage in the A/B sweep.
    fn crc_cost(&mut self, bytes: u64) -> SimDuration {
        self.stats.crc_bytes += bytes;
        self.class
            .scale(per_byte(bytes, self.model.crc_ps_per_byte))
    }

    /// Re-registers `(lane, local)`'s staging MR when its rkey would be
    /// within [`RKEY_REFRESH_MARGIN`] plus `horizon` of expiry at `start`
    /// — in-flight pulls never outlive their rkey, and leaked rkeys still
    /// die. `horizon` is zero for serial ops; batches pass a conservative
    /// upper bound on their own span, since the whole fan-out runs on the
    /// registration checked here.
    fn ensure_rkey(
        &mut self,
        fabric: &mut Fabric,
        lane: usize,
        local: usize,
        start: SimTime,
        horizon: SimDuration,
    ) -> Result<(), DaosError> {
        if self.transport != Transport::Rdma {
            return Ok(());
        }
        let deadline = self.lanes[lane].rkey_deadline[local];
        if deadline == SimTime::MAX || start + RKEY_REFRESH_MARGIN + horizon < deadline {
            return Ok(());
        }
        let fresh = start + self.lanes[lane].rkey_scope;
        self.lanes[lane]
            .daos
            .set_mr_expiry(fabric, local, Expiry::At(fresh))?;
        self.lanes[lane].rkey_deadline[local] = fresh;
        self.stats.rkey_refreshes += 1;
        Ok(())
    }

    /// Conservative upper bound on how long `ops` data-plane phases
    /// totalling `bytes` can keep a registration busy past their start: the
    /// payload at a 1 GiB/s floor plus 100 µs per op dominates any real
    /// schedule (the wire alone moves >2 GiB/s, per-op overheads are
    /// ~20 µs). Fed to [`Self::ensure_rkey`] so refreshes always cover the
    /// op's own span.
    fn span_bound(ops: u64, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, 1 << 30) + SimDuration::from_micros(100).saturating_mul(ops)
    }

    /// Stages the offload preamble shared by every op: submit → admit →
    /// inline service → (update-path CRC) → rkey freshness (covering the
    /// op's own span). Returns the lane/local indices and the instant the
    /// data-plane phases may start. The op is counted as offloaded here —
    /// once the preamble clears, the DPU runs it, successful or not (the
    /// same attempt semantics as the batch path and the inner client's
    /// `ops()` counter).
    #[allow(clippy::too_many_arguments)]
    fn offload_start(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        job: usize,
        bytes: u64,
        is_update: bool,
    ) -> Result<(usize, usize, SimTime), DaosError> {
        let (lane, local) = self.job_map[job];
        let submitted = self.host_submit(now, lane, 1, bytes)?;
        let granted = self.admit(submitted, lane, bytes)?;
        let mut start = granted + self.agent.inline_cost(bytes);
        if is_update {
            start += self.crc_cost(bytes);
        }
        self.ensure_rkey(fabric, lane, local, start, Self::span_bound(1, bytes))?;
        self.stats.ops_offloaded += 1;
        Ok((lane, local, start))
    }

    /// The fetch epilogue: DPU-side verify + inline decrypt, then the host
    /// poll. Returns the host-visible completion instant.
    fn finish_fetch(
        &mut self,
        ready: SimTime,
        lane: usize,
        bytes: u64,
    ) -> Result<SimTime, DaosError> {
        let t = ready + self.crc_cost(bytes) + self.agent.inline_cost(bytes);
        self.host_poll(t, lane, 1)
    }
}

fn map_control(e: ControlError) -> DaosError {
    DaosError::Transport(format!("host doorbell: {e:?}"))
}

impl ObjectClient for DpuClient {
    fn update(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        data: Bytes,
    ) -> Result<SimTime, DaosError> {
        let bytes = data.len() as u64;
        let (lane, local, start) = self.offload_start(fabric, now, job, bytes, true)?;
        let done = self.lanes[lane]
            .daos
            .update(fabric, cluster, start, local, oid, dkey, akey, kind, data)?;
        self.host_poll(done, lane, 1)
    }

    fn fetch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        oid: ObjectId,
        dkey: DKey,
        akey: AKey,
        kind: ValueKind,
        epoch: Epoch,
        len: u64,
    ) -> Result<(Bytes, SimTime), DaosError> {
        let (lane, local, start) = self.offload_start(fabric, now, job, len, false)?;
        let (data, ready) = self.lanes[lane].daos.fetch(
            fabric, cluster, start, local, oid, dkey, akey, kind, epoch, len,
        )?;
        let at = self.finish_fetch(ready, lane, data.len() as u64)?;
        Ok((data, at))
    }

    fn execute_batch(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        let (lane, local) = self.job_map[job];
        let n = ops.len();
        if n == 0 {
            return Vec::new();
        }
        let total_bytes: u64 = ops
            .iter()
            .map(|op| match op {
                ClientOp::Update { data, .. } => data.len() as u64,
                ClientOp::Fetch { len, .. } => *len,
            })
            .sum();
        // One doorbell ring covers the whole queue (the batching win the
        // host keeps even though it no longer runs the client).
        let submitted = match self.host_submit(now, lane, n as u32, total_bytes) {
            Ok(t) => t,
            Err(e) => return whole_batch_error(&ops, e),
        };
        // Every op is admitted individually — tenant buckets see each byte.
        let mut start = submitted;
        for op in &ops {
            let (bytes, is_update) = match op {
                ClientOp::Update { data, .. } => (data.len() as u64, true),
                ClientOp::Fetch { len, .. } => (*len, false),
            };
            let granted = match self.admit(submitted, lane, bytes) {
                Ok(t) => t,
                Err(e) => return whole_batch_error(&ops, e),
            };
            let mut t = granted + self.agent.inline_cost(bytes);
            if is_update {
                t += self.crc_cost(bytes);
            }
            start = start.max(t);
        }
        // The whole fan-out runs against the registration checked here, so
        // cover the batch's own span. Scopes must exceed this bound for a
        // batch to be safe at all; every shipped world's scope (≥ 100 ms
        // vs multi-chunk batches of a few tens of MiB) does.
        let span = Self::span_bound(n as u64, total_bytes);
        if let Err(e) = self.ensure_rkey(fabric, lane, local, start, span) {
            return whole_batch_error(&ops, e);
        }
        self.stats.ops_offloaded += n as u64;
        let results = self.lanes[lane]
            .daos
            .execute_batch(fabric, cluster, start, local, ops);
        results
            .into_iter()
            .map(|r| match r {
                ClientOpResult::Update(Ok(done)) => {
                    ClientOpResult::Update(self.host_poll(done, lane, 1))
                }
                ClientOpResult::Fetch(Ok((data, ready))) => {
                    let bytes = data.len() as u64;
                    ClientOpResult::Fetch(
                        self.finish_fetch(ready, lane, bytes).map(|at| (data, at)),
                    )
                }
                err => err,
            })
            .collect()
    }

    fn execute_pipelined(
        &mut self,
        fabric: &mut Fabric,
        cluster: &mut EngineCluster,
        now: SimTime,
        job: usize,
        ops: Vec<ClientOp>,
    ) -> Vec<ClientOpResult> {
        let (lane, local) = self.job_map[job];
        let n = ops.len();
        if n == 0 {
            return Vec::new();
        }
        let total_bytes: u64 = ops
            .iter()
            .map(|op| match op {
                ClientOp::Update { data, .. } => data.len() as u64,
                ClientOp::Fetch { len, .. } => *len,
            })
            .sum();
        // One doorbell ring announces the whole queue, exactly like the
        // batch path — the host-side cost does not grow with depth.
        let submitted = match self.host_submit(now, lane, n as u32, total_bytes) {
            Ok(t) => t,
            Err(e) => return whole_batch_error(&ops, e),
        };
        // Per-op admission with NO barrier: each op enters the ring at its
        // own grant-plus-preamble instant, so an op throttled by the token
        // bucket delays only itself while earlier grants are already in
        // flight on the lane's data plane.
        let mut starts = Vec::with_capacity(n);
        let mut latest = submitted;
        for op in &ops {
            let (bytes, is_update) = match op {
                ClientOp::Update { data, .. } => (data.len() as u64, true),
                ClientOp::Fetch { len, .. } => (*len, false),
            };
            let granted = match self.admit(submitted, lane, bytes) {
                Ok(t) => t,
                Err(e) => return whole_batch_error(&ops, e),
            };
            let mut t = granted + self.agent.inline_cost(bytes);
            if is_update {
                t += self.crc_cost(bytes);
            }
            latest = latest.max(t);
            starts.push(t);
        }
        // The whole ring runs against the registration checked here; check
        // at the latest start (most conservative) with the full-queue span.
        let span = Self::span_bound(n as u64, total_bytes);
        if let Err(e) = self.ensure_rkey(fabric, lane, local, latest, span) {
            return whole_batch_error(&ops, e);
        }
        self.stats.ops_offloaded += n as u64;
        let mut ring = OpRing::new(local, n);
        for (op, t) in ops.into_iter().zip(starts) {
            ring.submit(&mut self.lanes[lane].daos, fabric, cluster, t, op);
        }
        let results = ring.drain(&mut self.lanes[lane].daos, fabric, cluster);
        results
            .into_iter()
            .map(|r| match r {
                ClientOpResult::Update(Ok(done)) => {
                    ClientOpResult::Update(self.host_poll(done, lane, 1))
                }
                ClientOpResult::Fetch(Ok((data, ready))) => {
                    let bytes = data.len() as u64;
                    ClientOpResult::Fetch(
                        self.finish_fetch(ready, lane, bytes).map(|at| (data, at)),
                    )
                }
                err => err,
            })
            .collect()
    }

    fn ops(&self) -> u64 {
        self.lanes.iter().map(|l| l.daos.ops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::default_control;
    use ros2_daos::{DaosEngine, ObjClass};
    use ros2_fabric::NodeSpec;
    use ros2_hw::NvmeModel;
    use ros2_nvme::{DataMode, NvmeArray};
    use ros2_spdk::BdevLayer;

    fn world(transport: Transport) -> (Fabric, EngineCluster) {
        let fabric = Fabric::new(
            transport,
            vec![NodeSpec::bluefield3(), NodeSpec::storage_server()],
            11,
        );
        let bdevs = BdevLayer::new(NvmeArray::new(
            NvmeModel::enterprise_1600(),
            1,
            DataMode::Stored,
        ));
        let mut engine = DaosEngine::new(
            "pool0",
            bdevs,
            256 << 20,
            DaosCostModel::default_model(),
            CoreClass::HostX86,
        );
        engine.cont_create("cont0").unwrap();
        (fabric, EngineCluster::single(engine))
    }

    fn connect(
        fabric: &mut Fabric,
        specs: Vec<DpuTenantSpec>,
        jobs: usize,
    ) -> Result<DpuClient, DpuError> {
        let agent = DpuAgent::new(NodeId(0), 30 << 30, default_control(5));
        DpuClient::connect(
            fabric,
            NodeId(0),
            NodeId(1),
            "cont0",
            jobs,
            4 << 20,
            MemoryDomain::DpuDram,
            DaosCostModel::default_model(),
            agent,
            specs,
            99,
        )
    }

    #[test]
    fn offloaded_round_trip_pays_the_handoff() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("llm")], 2).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 1);
        let data = Bytes::from(vec![0x7Bu8; 1 << 20]);
        let done = c
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                data.clone(),
            )
            .unwrap();
        let (back, at) = c
            .fetch(
                &mut fabric,
                &mut cluster,
                done,
                1,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Epoch::LATEST,
                1 << 20,
            )
            .unwrap();
        assert_eq!(back, data);
        assert!(at > done);
        let s = c.dpu_stats();
        assert_eq!(s.ops_offloaded, 2);
        assert_eq!(s.host_submits, 2);
        assert_eq!(s.host_polls, 2);
        assert!(
            s.handoff_wait >= SimDuration::from_micros(8),
            "submit+poll \
                 pairs must each pay the doorbell RTT; got {:?}",
            s.handoff_wait
        );
        assert_eq!(s.bytes_admitted, 2 << 20);
        assert_eq!(s.crc_bytes, 2 << 20, "update CRC + fetch verify");
        assert_eq!(c.ops(), 2);
    }

    #[test]
    fn every_byte_is_admitted_and_throttling_shapes_grants() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let limited = DpuTenantSpec {
            name: "capped".into(),
            qos: QosLimits {
                ops_per_sec: 1_000_000,
                bytes_per_sec: 8 << 20, // 8 MiB/s
                burst: (1 << 10, 1 << 20),
            },
            rkey_scope: SimDuration::from_secs(30),
        };
        let mut c = connect(&mut fabric, vec![limited], 1).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 2);
        let mut t = SimTime::ZERO;
        for i in 0..4u64 {
            t = c
                .update(
                    &mut fabric,
                    &mut cluster,
                    t,
                    0,
                    oid,
                    DKey::from_u64(i),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    Bytes::from(vec![1u8; 1 << 20]),
                )
                .unwrap();
        }
        // 4 MiB through an 8 MiB/s bucket with a 1 MiB burst: >= ~0.375 s.
        assert!(
            t >= SimTime::from_millis(350),
            "QoS must pace the stream; finished at {t}"
        );
        let s = c.dpu_stats();
        assert_eq!(s.bytes_admitted, 4 << 20);
        assert!(s.ops_throttled >= 3, "throttled {}", s.ops_throttled);
        assert!(s.throttle_wait > SimDuration::from_millis(300));
        let ctx = c.tenants().tenant("capped").unwrap();
        assert_eq!(ctx.qos.admitted.1, 4 << 20);
    }

    #[test]
    fn scoped_rkeys_refresh_instead_of_expiring_mid_pull() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let short = DpuTenantSpec {
            name: "short".into(),
            qos: QosLimits::unlimited(),
            rkey_scope: SimDuration::from_millis(100),
        };
        let mut c = connect(&mut fabric, vec![short], 1).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 3);
        // Ops spaced past the 100 ms scope force refreshes; none may fail
        // and the NIC must see zero expired-rkey violations.
        let mut t = SimTime::ZERO;
        for i in 0..5u64 {
            t = c
                .update(
                    &mut fabric,
                    &mut cluster,
                    t.max(SimTime::from_millis(i * 120)),
                    0,
                    oid,
                    DKey::from_u64(i),
                    AKey::from_str("data"),
                    ValueKind::Array { offset: 0 },
                    Bytes::from(vec![2u8; 64 << 10]),
                )
                .unwrap();
        }
        assert!(
            c.dpu_stats().rkey_refreshes >= 4,
            "refreshes {}",
            c.dpu_stats().rkey_refreshes
        );
        assert_eq!(fabric.node(NodeId(0)).rdma.violations().total(), 0);
    }

    #[test]
    fn tenants_get_dedicated_lanes_and_pds() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(
            &mut fabric,
            vec![DpuTenantSpec::unlimited("a"), DpuTenantSpec::unlimited("b")],
            4,
        )
        .unwrap();
        assert_eq!(c.jobs(), 4);
        assert_eq!(c.tenant_of(0), "a");
        assert_eq!(c.tenant_of(1), "b");
        assert_eq!(c.tenant_of(2), "a");
        // Distinct PDs per tenant lane.
        assert_ne!(c.lanes[0].daos.pd(), c.lanes[1].daos.pd());
        // Both lanes actually move data.
        let oid = ObjectId::new(ObjClass::Sx, 9);
        for job in 0..4 {
            c.update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                job,
                oid,
                DKey::from_u64(job as u64),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![3u8; 4 << 10]),
            )
            .unwrap();
        }
        assert_eq!(c.tenants().tenant("a").unwrap().qos.admitted.0, 2);
        assert_eq!(c.tenants().tenant("b").unwrap().qos.admitted.0, 2);
    }

    #[test]
    fn batch_rings_the_doorbell_once() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 1).unwrap();
        let oid = ObjectId::new(ObjClass::Sx, 4);
        let ops: Vec<ClientOp> = (0..8u64)
            .map(|i| ClientOp::Update {
                oid,
                dkey: DKey::from_u64(i),
                akey: AKey::from_str("data"),
                kind: ValueKind::Array { offset: 0 },
                data: Bytes::from(vec![4u8; 128 << 10]),
            })
            .collect();
        let results = c.execute_batch(&mut fabric, &mut cluster, SimTime::ZERO, 0, ops);
        assert_eq!(results.len(), 8);
        for r in results {
            r.into_update().unwrap();
        }
        let s = c.dpu_stats();
        assert_eq!(s.host_submits, 1, "one doorbell for the whole batch");
        assert_eq!(s.host_polls, 8, "every completion is reaped");
        assert_eq!(s.bytes_admitted, 8 * (128 << 10));
    }

    #[test]
    fn dpu_tcp_fallback_path_works_without_rkeys() {
        let (mut fabric, mut cluster) = world(Transport::Tcp);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 1).unwrap();
        let oid = ObjectId::new(ObjClass::S1, 5);
        let done = c
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Bytes::from_static(b"meta"),
            )
            .unwrap();
        let (back, _) = c
            .fetch(
                &mut fabric,
                &mut cluster,
                done,
                0,
                oid,
                DKey::from_str("k"),
                AKey::from_str("v"),
                ValueKind::Single,
                Epoch::LATEST,
                4,
            )
            .unwrap();
        assert_eq!(&back[..], b"meta");
        assert_eq!(c.dpu_stats().rkey_refreshes, 0, "no MRs on TCP");
    }

    #[test]
    fn wedged_lane_times_out_instead_of_spinning() {
        let (mut fabric, mut cluster) = world(Transport::Rdma);
        let mut c = connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 1).unwrap();
        c.wedge_lane(0, true);
        let oid = ObjectId::new(ObjClass::Sx, 6);
        let err = c
            .update(
                &mut fabric,
                &mut cluster,
                SimTime::ZERO,
                0,
                oid,
                DKey::from_u64(0),
                AKey::from_str("data"),
                ValueKind::Array { offset: 0 },
                Bytes::from(vec![5u8; 4 << 10]),
            )
            .unwrap_err();
        assert!(
            format!("{err:?}").contains("Timeout"),
            "a wedged lane must fail with a typed timeout, got {err:?}"
        );
        // The bounded wait is the doorbell deadline, not forever: reviving
        // the lane restores service and the op completes.
        c.wedge_lane(0, false);
        c.update(
            &mut fabric,
            &mut cluster,
            SimTime::ZERO,
            0,
            oid,
            DKey::from_u64(0),
            AKey::from_str("data"),
            ValueKind::Array { offset: 0 },
            Bytes::from(vec![5u8; 4 << 10]),
        )
        .unwrap();
    }

    #[test]
    fn connect_rejects_empty_shapes() {
        let (mut fabric, _) = world(Transport::Rdma);
        assert_eq!(
            connect(&mut fabric, vec![DpuTenantSpec::unlimited("t")], 0)
                .err()
                .unwrap(),
            DpuError::NoJobs
        );
        assert_eq!(
            connect(&mut fabric, vec![], 4).err().unwrap(),
            DpuError::NoJobs
        );
        // More tenants than jobs would leave a lane that can never carry
        // I/O — rejected rather than silently provisioned.
        assert_eq!(
            connect(
                &mut fabric,
                vec![DpuTenantSpec::unlimited("a"), DpuTenantSpec::unlimited("b")],
                1,
            )
            .err()
            .unwrap(),
            DpuError::NoJobs
        );
    }
}
