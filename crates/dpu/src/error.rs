//! DPU-runtime error types.

use ros2_ctl::ControlError;
use ros2_daos::DaosError;

/// Failures raised by the DPU-resident runtime (agent + offloaded client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DpuError {
    /// The staging-DRAM budget cannot cover the reservation.
    DramExhausted {
        /// Bytes the caller asked for.
        requested: u64,
        /// Bytes still available in the budget.
        free: u64,
    },
    /// The named tenant is not registered on this DPU.
    UnknownTenant(String),
    /// A client must have at least one job.
    NoJobs,
    /// The host↔DPU control channel rejected a call.
    Control(ControlError),
    /// The underlying data-plane client failed.
    Daos(DaosError),
}

impl std::fmt::Display for DpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpuError::DramExhausted { requested, free } => write!(
                f,
                "DPU staging DRAM exhausted: requested {requested} B, {free} B free"
            ),
            DpuError::UnknownTenant(t) => write!(f, "unknown tenant {t:?} on this DPU"),
            DpuError::NoJobs => write!(f, "a DPU client needs at least one job"),
            DpuError::Control(e) => write!(f, "host control channel: {e:?}"),
            DpuError::Daos(e) => write!(f, "data-plane client: {e:?}"),
        }
    }
}

impl std::error::Error for DpuError {}

impl From<DaosError> for DpuError {
    fn from(e: DaosError) -> Self {
        DpuError::Daos(e)
    }
}

impl From<ControlError> for DpuError {
    fn from(e: ControlError) -> Self {
        DpuError::Control(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = DpuError::DramExhausted {
            requested: 4096,
            free: 128,
        };
        let msg = e.to_string();
        assert!(msg.contains("4096"), "{msg}");
        assert!(msg.contains("128"), "{msg}");
        assert!(DpuError::UnknownTenant("ghost".into())
            .to_string()
            .contains("ghost"));
    }
}
