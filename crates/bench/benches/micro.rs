//! Criterion microbenchmarks for the hot data structures and code paths of
//! the ROS2 stack itself (the simulator must be fast enough to sweep the
//! paper's parameter space; these benches keep it honest).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ros2_daos::crc32c;
use ros2_sim::{EventQueue, LatencyHistogram, ServerPool, SimDuration, SimRng, SimTime, Zipf};
use ros2_verbs::{AccessFlags, Expiry, MemoryDomain, NodeId, QpType, RdmaDevice};

fn bench_crc32c(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32c");
    for size in [4096usize, 1 << 20] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| crc32c(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        let mut rng = SimRng::new(7);
        b.iter_batched(
            || {
                (0..10_000u64)
                    .map(|_| SimTime::from_nanos(rng.below(1_000_000)))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.into_iter().enumerate() {
                    q.push(t, i);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_server_pool(c: &mut Criterion) {
    c.bench_function("server_pool/gap_schedule_10k", |b| {
        b.iter(|| {
            let mut pool = ServerPool::new(8);
            let mut t = SimTime::ZERO;
            for _ in 0..10_000 {
                let g = pool.submit(t, SimDuration::from_nanos(700));
                t = t.max(g.start);
            }
            pool.jobs_served()
        })
    });
}

fn bench_rkey_enforcement(c: &mut Criterion) {
    c.bench_function("verbs/remote_read_check_and_copy_4k", |b| {
        let mut dev = RdmaDevice::new(NodeId(0), 1 << 24, SimRng::new(3));
        let pd = dev.alloc_pd("t");
        let buf = dev.alloc_buffer(1 << 20, MemoryDomain::HostDram).unwrap();
        let (_, rkey, _) = dev
            .reg_mr(pd, buf, 1 << 20, AccessFlags::remote_rw(), Expiry::Never)
            .unwrap();
        let qp = dev.create_qp(pd, QpType::Rc).unwrap();
        dev.connect_qp(qp, NodeId(1), ros2_verbs::QpId(1)).unwrap();
        dev.execute_remote_write(SimTime::ZERO, qp, rkey, buf, &Bytes::from(vec![1u8; 4096]))
            .unwrap();
        b.iter(|| {
            dev.execute_remote_read(SimTime::ZERO, qp, rkey, buf, 4096)
                .unwrap()
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record_1k_and_p99", |b| {
        let mut rng = SimRng::new(11);
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for _ in 0..1000 {
                h.record(SimDuration::from_nanos(rng.below(10_000_000)));
            }
            h.percentile(0.99)
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf/sample", |b| {
        let z = Zipf::new(1_000_000, 0.9);
        let mut rng = SimRng::new(13);
        b.iter(|| z.sample(&mut rng))
    });
}

criterion_group!(
    benches,
    bench_crc32c,
    bench_event_queue,
    bench_server_pool,
    bench_rkey_enforcement,
    bench_histogram,
    bench_zipf
);
criterion_main!(benches);
