//! **Figure 4**: remote SPDK NVMe-oF heatmaps over client × server core
//! counts ∈ {1, 2, 4, 8, 16}², one exported SSD, TCP vs RDMA — 1 MiB
//! throughput (a, b) and 4 KiB IOPS (c, d).

use rayon::prelude::*;
use ros2_bench::{print_table, spec, SWEEP};
use ros2_fio::{run_fio, RwMode, SpdkFioWorld};
use ros2_hw::Transport;
use ros2_nvme::DataMode;

/// One heatmap: rows = client cores, columns = server cores.
fn heatmap(transport: Transport, rw: RwMode, bs: u64) -> Vec<Vec<String>> {
    SWEEP
        .par_iter()
        .map(|&c_cores| {
            let mut row = vec![format!("{c_cores} client cores")];
            for &s_cores in &SWEEP {
                let jobs = c_cores;
                let mut world =
                    SpdkFioWorld::new(transport, c_cores, s_cores, jobs, 1 << 30, DataMode::Null);
                let mut s = spec(rw, bs, jobs, 1 << 30);
                s.iodepth = 32;
                let report = run_fio(&mut world, &s);
                row.push(if bs >= 1 << 20 {
                    format!("{:6.2}", report.gib_per_sec())
                } else {
                    format!("{:6.0}", report.kiops())
                });
            }
            row
        })
        .collect()
}

fn main() {
    let header: Vec<String> = std::iter::once("".to_string())
        .chain(SWEEP.iter().map(|c| format!("{c} srv cores")))
        .collect();

    for (fig, transport, bs, unit) in [
        (
            "Fig. 4a: throughput (1 MiB), TCP",
            Transport::Tcp,
            1u64 << 20,
            "GiB/s",
        ),
        (
            "Fig. 4b: throughput (1 MiB), RDMA",
            Transport::Rdma,
            1 << 20,
            "GiB/s",
        ),
        ("Fig. 4c: IOPS (4 KiB), TCP", Transport::Tcp, 4096, "K IOPS"),
        (
            "Fig. 4d: IOPS (4 KiB), RDMA",
            Transport::Rdma,
            4096,
            "K IOPS",
        ),
    ] {
        for rw in [
            RwMode::Read,
            RwMode::Write,
            RwMode::RandRead,
            RwMode::RandWrite,
        ] {
            print_table(
                &format!("{fig} — {} ({unit})", rw.label()),
                &header,
                &heatmap(transport, rw, bs),
            );
        }
    }

    println!(
        "\nPaper shape targets: at 1 MiB both transports plateau at the single-SSD media \
         ceiling once cores >= 2 (transport choice matters little); at 4 KiB RDMA delivers \
         substantially higher IOPS and keeps scaling with cores while TCP shows limited \
         benefit from additional client/server cores."
    );
}
