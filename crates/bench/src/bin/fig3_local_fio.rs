//! **Figure 3**: local FIO baselines through the io_uring engine, for 1 and
//! 4 NVMe SSDs — 1 MiB throughput (a, c) and 4 KiB IOPS (b, d) across
//! numjobs ∈ {1, 2, 4, 8, 16} and the four POSIX access patterns.

use rayon::prelude::*;
use ros2_bench::{gib, kiops, print_table, spec, SWEEP};
use ros2_fio::{run_fio, LocalFioWorld, RwMode};
use ros2_nvme::DataMode;

fn sweep(ssds: usize, bs: u64) -> Vec<Vec<String>> {
    RwMode::ALL
        .par_iter()
        .map(|&rw| {
            let mut row = vec![rw.label().to_string()];
            for &jobs in &SWEEP {
                let mut world = LocalFioWorld::new(ssds, jobs, 1 << 30, DataMode::Null);
                let report = run_fio(&mut world, &spec(rw, bs, jobs, 1 << 30));
                row.push(if bs >= 1 << 20 {
                    gib(&report)
                } else {
                    kiops(&report)
                });
            }
            row
        })
        .collect()
}

fn main() {
    let header: Vec<String> = std::iter::once("workload".to_string())
        .chain(SWEEP.iter().map(|j| format!("{j} jobs")))
        .collect();

    print_table(
        "Fig. 3a: local throughput, bs=1 MiB, 1 NVMe SSD (GiB/s)",
        &header,
        &sweep(1, 1 << 20),
    );
    print_table(
        "Fig. 3b: local IOPS, bs=4 KiB, 1 NVMe SSD (K IOPS)",
        &header,
        &sweep(1, 4096),
    );
    print_table(
        "Fig. 3c: local throughput, bs=1 MiB, 4 NVMe SSDs (GiB/s)",
        &header,
        &sweep(4, 1 << 20),
    );
    print_table(
        "Fig. 3d: local IOPS, bs=4 KiB, 4 NVMe SSDs (K IOPS)",
        &header,
        &sweep(4, 4096),
    );

    println!(
        "\nPaper shape targets: 1-SSD reads plateau ~5-5.6 GiB/s and writes ~2.7 GiB/s \
         with one job already saturating 1 MiB; 4-SSD reads ~20-22 GiB/s, writes ~10.6 GiB/s; \
         4 KiB IOPS grow ~80K (1 job) -> ~600K (16 jobs) for BOTH drive counts \
         (the software/host-path limit)."
    );
}
