//! DPU read-cache figure (PR 10): the small-I/O offload gap with and
//! without the pool-map-aware read cache, recorded in `BENCH_PR10.json`.
//!
//! Two experiments:
//!
//! * **Headline A/B** — host vs DPU 4 KiB random reads on the two-node
//!   world, serial (the BENCH_PR4 0.62× baseline shape) and pipelined at
//!   QD 32 (the BENCH_PR6 0.55× saturated shape). Cache off reproduces
//!   the cold gap; a 64 MiB carve over a 16 MiB working set must close
//!   the warm ratio to ≥ `WARM_FLOOR`× host — repeat reads serve from
//!   DPU DRAM with zero fabric bookings and zero booked ARM CRC.
//! * **Incast sweep** — hit rate vs DRAM split vs client count: N real
//!   offloaded clients (each with its own agent and carve) fanning into
//!   one replicated cluster. The carve axis straddles the per-client
//!   working set, so the small carve evicts (partial hit rate) and the
//!   large carve converges toward full residency.
//!
//! Gates (all virtual-time, deterministic): warm ratios ≥ 0.90×, cold
//! ratios inside the historical band (the cache must not perturb the
//! cache-off path), sweep hit rates ordered by carve, zero failed ops,
//! and the legacy cache-off sweeps still simulate exactly
//! `OPS_SIMULATED_PIN` ops.

use ros2_bench::{legacy_sweep_ops, OPS_SIMULATED_PIN};
use ros2_dpu::DpuTenantSpec;
use ros2_fio::{run_fio, Clients, JobSpec, RwMode, WorldSpec};
use ros2_hw::ClientPlacement;
use ros2_nvme::DataMode;
use ros2_sim::SimDuration;

const BS: u64 = 4096;
const REGION: u64 = 16 << 20;
const JOBS: usize = 1;
/// Carve comfortably above the 16 MiB working set: the warm cells run at
/// full residency after the ramp.
const CARVE: u64 = 64 << 20;
/// The acceptance floor on the warm DPU/host small-I/O ratio.
const WARM_FLOOR: f64 = 0.90;
/// Per-cell cold-ratio bands: the cache knob must not move the cache-off
/// path. QD 1 pins the handoff-dominated ~0.84× shape fig_qd gates at
/// > 0.80; QD 32 pins the saturated 0.55× shape from BENCH_PR6.
const COLD_BAND_SERIAL: (f64, f64) = (0.75, 0.95);
const COLD_BAND_QD32: (f64, f64) = (0.45, 0.70);
/// Warm hit-rate floors: the serial cell streams the region barely twice
/// inside its windows (partial residency); the QD 32 cell must converge
/// to near-full residency.
const HIT_FLOOR_SERIAL: f64 = 0.10;
const HIT_FLOOR_QD32: f64 = 0.90;

/// Incast sweep axes: client count × per-client carve (0 = cache off).
const SWEEP_CLIENTS: [usize; 3] = [1, 2, 4];
const SWEEP_CARVES: [u64; 3] = [0, 1 << 20, 16 << 20];
const SWEEP_ENGINES: usize = 4;
const SWEEP_RF: usize = 2;
/// Per-client working set of the sweep — sized between the two non-zero
/// carves so the 1 MiB carve must evict and the 16 MiB carve never does.
const SWEEP_REGION: u64 = 8 << 20;

fn ab_spec(qd: usize) -> JobSpec {
    JobSpec::new(RwMode::RandRead, BS, JOBS)
        .iodepth(qd)
        .region(REGION)
        .windows(SimDuration::from_millis(50), SimDuration::from_millis(150))
}

/// Host arm of one A/B cell.
fn host_cell(qd: usize, pipelined: bool) -> f64 {
    let mut w = WorldSpec::single(ClientPlacement::Host)
        .jobs(JOBS)
        .region(REGION)
        .mode(DataMode::Null)
        .build_dfs();
    w.set_pipelined(pipelined);
    let r = run_fio(&mut w, &ab_spec(qd));
    assert_eq!(r.io.errors.get(), 0, "host arm qd={qd} errored");
    r.gib_per_sec()
}

/// DPU arm of one A/B cell: `(GiB/s, hit rate)`.
fn dpu_cell(qd: usize, pipelined: bool, carve: Option<u64>) -> (f64, f64) {
    let mut spec = WorldSpec::single(ClientPlacement::Dpu)
        .jobs(JOBS)
        .region(REGION)
        .mode(DataMode::Null)
        .offload(vec![DpuTenantSpec::unlimited("fio")]);
    if let Some(bytes) = carve {
        spec = spec.dpu_cache(bytes);
    }
    let mut w = spec.build_dfs();
    w.set_pipelined(pipelined);
    let r = run_fio(&mut w, &ab_spec(qd));
    assert_eq!(r.io.errors.get(), 0, "dpu arm qd={qd} errored");
    let stats = w.client.cache_stats();
    if carve.is_none() {
        assert_eq!(
            stats,
            Default::default(),
            "the cache-off arm must book nothing"
        );
    }
    (r.gib_per_sec(), stats.hit_rate())
}

struct SweepCell {
    clients: usize,
    carve: u64,
    gib_s: f64,
    hit_rate: f64,
    hits: u64,
    evictions: u64,
}

/// One incast sweep cell: `clients` offloaded DPU clients, each carving
/// `carve` bytes (0 = cache off), re-reading 16 KiB blocks.
fn sweep_cell(clients: usize, carve: u64) -> SweepCell {
    let mut spec = WorldSpec::cluster(SWEEP_ENGINES)
        .replication(SWEEP_RF)
        .clients(Clients::offloaded(clients))
        .jobs(1)
        .region(SWEEP_REGION)
        .mode(DataMode::Null);
    if carve > 0 {
        spec = spec.dpu_cache(carve);
    }
    let mut w = spec.build_incast();
    let job_spec = JobSpec::new(RwMode::RandRead, 16 << 10, w.total_jobs())
        .iodepth(2)
        .region(SWEEP_REGION)
        .windows(SimDuration::from_millis(5), SimDuration::from_millis(25))
        .seed(9);
    let r = run_fio(&mut w, &job_spec);
    assert_eq!(
        r.io.errors.get(),
        0,
        "sweep cell clients={clients} carve={carve} errored"
    );
    let s = w.cache_stats();
    SweepCell {
        clients,
        carve,
        gib_s: r.gib_per_sec(),
        hit_rate: s.hit_rate(),
        hits: s.hits,
        evictions: s.evictions,
    }
}

fn main() {
    println!("DPU read-cache A/B: {BS} B RandRead, region {REGION} B, carve {CARVE} B");

    // ---- headline A/B: serial (PR 4 shape) and QD 32 (PR 6 shape) ----
    let mut ab = Vec::new();
    for &(qd, pipelined, label) in &[(1usize, false, "serial"), (32usize, true, "qd32")] {
        let host = host_cell(qd, pipelined);
        let (cold, cold_hr) = dpu_cell(qd, pipelined, None);
        let (warm, warm_hr) = dpu_cell(qd, pipelined, Some(CARVE));
        let (cold_ratio, warm_ratio) = (cold / host.max(1e-12), warm / host.max(1e-12));
        println!(
            "  {label:>6}: host {:>8.1} MiB/s  cold {:>8.1} ({cold_ratio:.3}x)  \
             warm {:>8.1} ({warm_ratio:.3}x, hit rate {warm_hr:.3})",
            host * 1024.0,
            cold * 1024.0,
            warm * 1024.0,
        );
        assert_eq!(cold_hr, 0.0, "{label}: the cold arm must not hit");
        ab.push((label, qd, host, cold, warm, cold_ratio, warm_ratio, warm_hr));
    }

    // ---- incast sweep: hit rate vs carve vs client count ----
    println!("incast sweep: clients {SWEEP_CLIENTS:?} x carve {SWEEP_CARVES:?} B");
    let mut sweep = Vec::new();
    for &clients in &SWEEP_CLIENTS {
        for &carve in &SWEEP_CARVES {
            let cell = sweep_cell(clients, carve);
            println!(
                "  clients={clients} carve={carve:>9}  {:>8.1} MiB/s  \
                 hit rate {:.3}  hits {:>6}  evictions {:>5}",
                cell.gib_s * 1024.0,
                cell.hit_rate,
                cell.hits,
                cell.evictions
            );
            sweep.push(cell);
        }
    }

    println!("re-playing the legacy sweeps (cache off) for the ops pin...");
    let legacy_ops = legacy_sweep_ops();
    println!("  legacy sweep ops: {legacy_ops} (pin {OPS_SIMULATED_PIN})");

    // ---- gates ----
    for &(label, _, _, _, _, cold_ratio, warm_ratio, warm_hr) in &ab {
        let (band, hit_floor) = if label == "serial" {
            (COLD_BAND_SERIAL, HIT_FLOOR_SERIAL)
        } else {
            (COLD_BAND_QD32, HIT_FLOOR_QD32)
        };
        assert!(
            cold_ratio > band.0 && cold_ratio < band.1,
            "{label}: cold DPU/host ratio {cold_ratio:.3} left the historical \
             band {band:?} — the cache knob perturbed the cache-off path"
        );
        assert!(
            warm_ratio >= WARM_FLOOR,
            "{label}: warm DPU/host ratio {warm_ratio:.3} misses the \
             {WARM_FLOOR} floor — the cache is not closing the small-I/O gap"
        );
        assert!(
            warm_hr > hit_floor,
            "{label}: warm hit rate {warm_hr:.3} under the {hit_floor} floor"
        );
    }
    for &clients in &SWEEP_CLIENTS {
        let rate = |carve: u64| {
            sweep
                .iter()
                .find(|c| c.clients == clients && c.carve == carve)
                .unwrap()
                .hit_rate
        };
        assert_eq!(
            rate(0),
            0.0,
            "clients={clients}: the cache-off cell must not hit"
        );
        assert!(
            rate(16 << 20) > rate(1 << 20) && rate(1 << 20) > 0.0,
            "clients={clients}: hit rate must grow with the carve \
             (1 MiB {:.3} vs 16 MiB {:.3})",
            rate(1 << 20),
            rate(16 << 20)
        );
        let evicting = sweep
            .iter()
            .find(|c| c.clients == clients && c.carve == 1 << 20)
            .unwrap();
        assert!(
            evicting.evictions > 0,
            "clients={clients}: a carve below the working set must evict"
        );
    }
    assert_eq!(
        legacy_ops, OPS_SIMULATED_PIN,
        "the cache is opt-in: the legacy sweeps must stay bit-identical"
    );

    // ---- BENCH_PR10.json ----
    let mut ab_json = String::from("[");
    for (i, &(label, qd, host, cold, warm, cold_ratio, warm_ratio, warm_hr)) in
        ab.iter().enumerate()
    {
        if i > 0 {
            ab_json.push_str(", ");
        }
        ab_json.push_str(&format!(
            "{{\"cell\": \"{label}\", \"qd\": {qd}, \"host_gib_s\": {host:.4}, \
             \"dpu_cold_gib_s\": {cold:.4}, \"dpu_warm_gib_s\": {warm:.4}, \
             \"cold_ratio\": {cold_ratio:.4}, \"warm_ratio\": {warm_ratio:.4}, \
             \"warm_hit_rate\": {warm_hr:.4}}}"
        ));
    }
    ab_json.push(']');

    let mut sweep_json = String::from("[");
    for (i, c) in sweep.iter().enumerate() {
        if i > 0 {
            sweep_json.push_str(", ");
        }
        sweep_json.push_str(&format!(
            "{{\"clients\": {}, \"carve\": {}, \"gib_s\": {:.4}, \
             \"hit_rate\": {:.4}, \"hits\": {}, \"evictions\": {}}}",
            c.clients, c.carve, c.gib_s, c.hit_rate, c.hits, c.evictions
        ));
    }
    sweep_json.push(']');

    let (serial, qd32) = (&ab[0], &ab[1]);
    let json = format!(
        "{{\n  \"cache_ab\": {ab_json},\n  \
         \"cache_incast_sweep\": {sweep_json},\n  \
         \"cold_ratio_serial\": {:.4},\n  \
         \"warm_ratio_serial\": {:.4},\n  \
         \"cold_ratio_qd32\": {:.4},\n  \
         \"warm_ratio_qd32\": {:.4},\n  \
         \"cache_failed_ops\": 0,\n  \
         \"ops_simulated\": {legacy_ops}\n}}\n",
        serial.5, serial.6, qd32.5, qd32.6
    );
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    println!("wrote BENCH_PR10.json");
}
