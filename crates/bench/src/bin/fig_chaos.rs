//! Chaos figure (PR 7): the pipelined client's recovery ladder under a
//! mid-flight engine kill with delayed RAS delivery, measured through the
//! closed-loop FIO driver and recorded in `BENCH_PR7.json`.
//!
//! Cells, all virtual-time deterministic:
//!
//! * **baseline** — the chaos spec under `FaultPlan::none()`: no fence,
//!   no retry, bit-identical to the fault-oblivious world (the empty-plan
//!   pin, asserted by running the oblivious world too);
//! * **kill-under-QD32** — 4 engines, RF 2, 32 ops in flight (4 jobs ×
//!   iodepth 8, each op a 4-deep chunk ring); engine 1 dies after 64
//!   client ops and the RAS event reaches the client a full millisecond
//!   late. Gates: **zero failed ops**, at least one `ErrStaleMap` fence,
//!   bounded retries (every re-stage is provoked by a classified timeout
//!   or fence), `exhausted == 0`, and the time of the first successful
//!   retry recorded;
//! * **host-vs-DPU A/B** — the same schedule against the DPU-offloaded
//!   client: the ladder runs on the BlueField-3 and its counters surface
//!   through `DpuStats`, so both arms report the same way.

use ros2_core::FaultPlan;
use ros2_daos::RetryStats;
use ros2_dpu::DpuTenantSpec;
use ros2_fio::{run_fio, ClusterFioWorld, FioReport, JobSpec, RwMode, WorldSpec};
use ros2_sim::SimDuration;

const ENGINES: usize = 4;
const RF: usize = 2;
const JOBS: usize = 4;
const REGION: u64 = 8 << 20;
const VICTIM: usize = 1;
const KILL_AFTER_OPS: u64 = 64;
const RAS_DELAY: SimDuration = SimDuration::from_millis(1);

/// 4 MiB random reads over 1 MiB chunks: 4 jobs × iodepth 8 × 4-deep
/// chunk rings ≈ 32 data-plane legs in flight when the kill lands.
fn chaos_spec() -> JobSpec {
    JobSpec::new(RwMode::RandRead, 4 << 20, JOBS)
        .iodepth(8)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(30))
        .seed(7)
}

fn host_world() -> ClusterFioWorld {
    let mut w = WorldSpec::cluster(ENGINES)
        .replication(RF)
        .jobs(JOBS)
        .region(REGION)
        .build();
    w.world.set_pipelined(true);
    w
}

fn dpu_world() -> ClusterFioWorld {
    let mut w = WorldSpec::cluster(ENGINES)
        .replication(RF)
        .jobs(JOBS)
        .region(REGION)
        .offload(vec![DpuTenantSpec::unlimited("fio")])
        .build();
    w.world.set_pipelined(true);
    w
}

fn arm_kill(w: &mut ClusterFioWorld) {
    let after = w.world.client.ops() + KILL_AFTER_OPS;
    w.set_fault_plan(FaultPlan::kill_after(VICTIM, after, RAS_DELAY));
}

struct ChaosCell {
    gib_s: f64,
    failed: u64,
    fences: u64,
    retry: RetryStats,
    first_retry_us: Option<u64>,
}

fn run_cell(mut w: ClusterFioWorld, kill: bool) -> ChaosCell {
    if kill {
        arm_kill(&mut w);
    } else {
        w.set_fault_plan(FaultPlan::none());
    }
    let report: FioReport = run_fio(&mut w, &chaos_spec());
    ChaosCell {
        gib_s: report.gib_per_sec(),
        failed: report.io.errors.get(),
        fences: w.fences(),
        retry: w.retry_stats(),
        first_retry_us: w.first_successful_retry().map(|t| t.as_nanos() / 1_000),
    }
}

/// Gates shared by the host and DPU kill cells.
fn gate_kill_cell(tag: &str, cell: &ChaosCell) {
    assert_eq!(
        cell.failed, 0,
        "{tag}: a kill under QD32 must complete with zero failed ops"
    );
    assert!(
        cell.fences >= 1,
        "{tag}: the delayed-RAS stale window must fence at least once"
    );
    assert!(
        cell.retry.retries >= 1 && cell.retry.map_refreshes >= 1,
        "{tag}: recovery must ride the ladder ({:?})",
        cell.retry
    );
    assert!(
        cell.retry.retries <= cell.retry.timeouts + cell.retry.fenced,
        "{tag}: every re-stage must be provoked by a classified timeout or \
         fence ({:?})",
        cell.retry
    );
    assert_eq!(
        cell.retry.exhausted, 0,
        "{tag}: no op may exhaust its retry budget"
    );
    assert!(
        cell.first_retry_us.is_some(),
        "{tag}: time-to-first-successful-retry must be recorded"
    );
}

fn main() {
    println!(
        "chaos cell: {ENGINES} engines RF {RF}, kill slot {VICTIM} after \
         {KILL_AFTER_OPS} ops, RAS delayed {RAS_DELAY}"
    );

    // Empty-plan pin: a FaultPlan::none() world and a fault-oblivious
    // world must produce bit-identical runs with silent ladder counters.
    let oblivious = {
        let mut w = host_world();
        let report = run_fio(&mut w, &chaos_spec());
        (report.gib_per_sec(), report.io.errors.get())
    };
    let baseline = run_cell(host_world(), false);
    assert_eq!(
        baseline.gib_s.to_bits(),
        oblivious.0.to_bits(),
        "FaultPlan::none() must be bit-identical to the fault-oblivious world"
    );
    assert_eq!(baseline.failed + oblivious.1, 0);
    assert_eq!(baseline.retry, RetryStats::default());
    assert_eq!(baseline.fences, 0);
    println!(
        "  baseline (empty plan): {:.2} GiB/s, 0 fences",
        baseline.gib_s
    );

    let host = run_cell(host_world(), true);
    gate_kill_cell("host", &host);
    println!(
        "  host kill cell: {:.2} GiB/s, {} failed, {} fences, {:?}, first \
         successful retry at {} us",
        host.gib_s,
        host.failed,
        host.fences,
        host.retry,
        host.first_retry_us.unwrap(),
    );

    let dpu = run_cell(dpu_world(), true);
    gate_kill_cell("dpu", &dpu);
    println!(
        "  dpu  kill cell: {:.2} GiB/s, {} failed, {} fences, {:?}, first \
         successful retry at {} us",
        dpu.gib_s,
        dpu.failed,
        dpu.fences,
        dpu.retry,
        dpu.first_retry_us.unwrap(),
    );

    let json = format!(
        "{{\n  \"chaos_baseline_gib_s\": {:.4},\n  \
         \"chaos_kill_gib_s\": {:.4},\n  \
         \"chaos_failed_ops\": {},\n  \
         \"chaos_fences\": {},\n  \
         \"chaos_timeouts\": {},\n  \
         \"chaos_retries\": {},\n  \
         \"chaos_backoff_waits\": {},\n  \
         \"chaos_map_refreshes\": {},\n  \
         \"chaos_exhausted\": {},\n  \
         \"chaos_first_retry_us\": {},\n  \
         \"dpu_chaos_kill_gib_s\": {:.4},\n  \
         \"dpu_chaos_failed_ops\": {},\n  \
         \"dpu_chaos_fences\": {},\n  \
         \"dpu_chaos_retries\": {},\n  \
         \"dpu_chaos_exhausted\": {}\n}}\n",
        baseline.gib_s,
        host.gib_s,
        host.failed,
        host.fences,
        host.retry.timeouts,
        host.retry.retries,
        host.retry.backoff_waits,
        host.retry.map_refreshes,
        host.retry.exhausted,
        host.first_retry_us.unwrap(),
        dpu.gib_s,
        dpu.failed,
        dpu.fences,
        dpu.retry.retries,
        dpu.retry.exhausted,
    );
    std::fs::write("BENCH_PR7.json", &json).expect("write BENCH_PR7.json");
    println!("wrote BENCH_PR7.json");
}
