//! **Ablation X3**: the eager/rendezvous protocol threshold (§3.2:
//! "Sequential I/O uses rendezvous-style transfers to amortize per-message
//! overhead; random I/O uses short transfers but preserves zero-copy").
//!
//! Sweeps UCX-style `RNDV_THRESH` and reports per-message latency for
//! message sizes spanning the crossover: small messages prefer eager (no
//! handshake RTT), large messages prefer rendezvous (no receiver copy).

use bytes::Bytes;
use ros2_bench::print_table;
use ros2_fabric::{Dir, Fabric, NodeSpec};
use ros2_hw::{gbps, CoreClass, CpuComplement, NicModel, Transport};
use ros2_sim::SimTime;
use ros2_verbs::NodeId;

fn spec(name: &str) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores: 16,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 1 << 30,
        dpu_tcp_rx: None,
    }
}

fn latency_us(threshold: u64, msg: u64) -> f64 {
    let mut fabric = Fabric::new(Transport::Rdma, vec![spec("a"), spec("b")], 1);
    fabric.set_eager_threshold(threshold);
    let pd_a = fabric.rdma_mut(NodeId(0)).alloc_pd("a");
    let pd_b = fabric.rdma_mut(NodeId(1)).alloc_pd("b");
    let conn = fabric.connect(NodeId(0), NodeId(1), pd_a, pd_b).unwrap();
    let d = fabric
        .send(
            SimTime::ZERO,
            conn,
            Dir::AtoB,
            Bytes::from(vec![0u8; msg as usize]),
        )
        .unwrap();
    d.at.as_secs_f64() * 1e6
}

fn main() {
    let sizes: [u64; 7] = [
        256,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        4 << 20,
    ];
    let thresholds: [u64; 5] = [0, 4 << 10, 16 << 10, 64 << 10, u64::MAX];

    let header: Vec<String> = std::iter::once("message size".to_string())
        .chain(thresholds.iter().map(|t| {
            if *t == 0 {
                "rndv always".into()
            } else if *t == u64::MAX {
                "eager always".into()
            } else {
                format!("thresh {}K", t >> 10)
            }
        }))
        .collect();

    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&msg| {
            let mut row = vec![if msg >= 1 << 20 {
                format!("{} MiB", msg >> 20)
            } else if msg >= 1 << 10 {
                format!("{} KiB", msg >> 10)
            } else {
                format!("{msg} B")
            }];
            for &t in &thresholds {
                row.push(format!("{:8.2}", latency_us(t, msg)));
            }
            row
        })
        .collect();

    print_table(
        "Ablation: eager/rendezvous threshold — one-way message latency (us)",
        &header,
        &rows,
    );
    println!(
        "\nExpected shape: below the threshold, eager avoids the handshake RTT and wins for \
         small messages; above it, rendezvous avoids the receiver copy and wins for bulk. \
         The default 8 KiB threshold sits near the crossover."
    );
}
