//! Recovery figure (PR 8): the self-healing background services —
//! QoS-paced rebuild, epoch aggregation, and replica scrub with bit-rot
//! repair — measured through the closed-loop FIO driver and recorded in
//! `BENCH_PR8.json`.
//!
//! Cells, all virtual-time deterministic:
//!
//! * **recovery-under-load** — 4 engines RF 2, QD32 random reads; engine
//!   1 dies mid-run with the RAS event a millisecond late. Gates: zero
//!   failed foreground ops, foreground throughput at or above the floor
//!   (half the no-fault baseline), and RF restored by the rebuild both
//!   unpaced and through an 8 MiB/s rebuild lane — the paced pass must
//!   finish later and bank throttle wait, never change what moves;
//! * **scrub-repair** — QD8 random writes with three bit-rot corruptions
//!   scheduled mid-workload by the fault plan. An epoch aggregation at
//!   the cluster-safe boundary, then a scrub pass: every mismatch found
//!   is repaired from a healthy replica, and the follow-up pass over the
//!   healed cluster is clean **without scanning a single payload byte**
//!   (recorded checksums folded against cached chunk CRCs);
//! * **acceptance** — kill *and* scheduled bit-rot under QD8 writes:
//!   scrub repairs every mismatch among the survivors first (so the
//!   rebuild never streams from a rotten source), the paced rebuild
//!   restores RF, a final scrub pass is clean, zero foreground ops fail,
//!   and the whole cell replays bit-identically — pipelined and
//!   forced-serial.

use ros2_core::{FaultPlan, ScheduledCorruption};
use ros2_daos::BgService;
use ros2_fio::{run_fio, ClusterFioWorld, FioReport, JobSpec, RwMode, WorldSpec};
use ros2_sim::{QosLimits, SimDuration, SimTime};

const ENGINES: usize = 4;
const RF: usize = 2;
const JOBS: usize = 4;
const REGION: u64 = 8 << 20;
const VICTIM: usize = 1;
const KILL_AFTER_OPS: u64 = 64;
const RAS_DELAY: SimDuration = SimDuration::from_millis(1);
/// The paced rebuild lane: 8 MiB/s with a one-second burst — far below
/// the fabric rate, so the lane (not the wire) sets the restore time.
const REBUILD_BUDGET: u64 = 8 << 20;

/// QD32 random reads (the PR 7 chaos shape) for the recovery cell.
fn read_spec() -> JobSpec {
    JobSpec::new(RwMode::RandRead, 4 << 20, JOBS)
        .iodepth(8)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(30))
        .seed(7)
}

/// QD8 random writes for the scrub cells: writes never fetch-verify, so
/// scheduled rot stays silent until the scrub service looks for it.
fn write_spec() -> JobSpec {
    JobSpec::new(RwMode::RandWrite, 1 << 20, JOBS)
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(30))
        .seed(11)
}

fn world() -> ClusterFioWorld {
    let mut w = WorldSpec::cluster(ENGINES)
        .replication(RF)
        .jobs(JOBS)
        .region(REGION)
        .build();
    w.world.set_pipelined(true);
    w
}

fn kill_plan(w: &ClusterFioWorld) -> FaultPlan {
    FaultPlan::kill_after(VICTIM, w.world.client.ops() + KILL_AFTER_OPS, RAS_DELAY)
}

/// Three silent corruptions across the run, all on slot 0 (which stays
/// up in every cell), hitting three different stored objects.
fn rot_entries(base_ops: u64) -> Vec<ScheduledCorruption> {
    (0..3)
        .map(|i| ScheduledCorruption {
            after_client_ops: base_ops + 16 + 16 * i,
            slot: 0,
            object_index: i as usize,
        })
        .collect()
}

// ------------------------------------------------------ recovery cell --

struct RecoveryCell {
    gib_s: f64,
    failed: u64,
    restore_ms: u64,
    throttle_ms: u64,
    objects_moved: u64,
    bytes_moved: u64,
}

fn run_recovery(paced: bool) -> RecoveryCell {
    let mut w = world();
    w.set_fault_plan(kill_plan(&w));
    if paced {
        w.set_service_budget(BgService::Rebuild, QosLimits::bytes_per_sec(REBUILD_BUDGET));
    }
    let report: FioReport = run_fio(&mut w, &read_spec());
    let done = w.rebuild(SimTime::ZERO).expect("rebuild completes");
    let stats = w.rebuild_stats();
    RecoveryCell {
        gib_s: report.gib_per_sec(),
        failed: report.io.errors.get(),
        restore_ms: done.as_nanos() / 1_000_000,
        throttle_ms: w.scrub_stats().rebuild_throttle_wait.as_nanos() / 1_000_000,
        objects_moved: stats.objects_moved,
        bytes_moved: stats.bytes_moved,
    }
}

// --------------------------------------------------------- scrub cell --

struct ScrubCell {
    gib_s: f64,
    failed: u64,
    agg_boundary: u64,
    found: u64,
    repaired: u64,
    repair_bytes: u64,
    combine_bytes: u64,
    clean_scanned: u64,
    clean_chunks: u64,
}

fn run_scrub() -> ScrubCell {
    let mut w = world();
    let mut plan = FaultPlan::none();
    plan.bitrot = rot_entries(w.world.client.ops());
    w.set_fault_plan(plan);
    let report: FioReport = run_fio(&mut w, &write_spec());

    let (first, t) = w.scrub(SimTime::ZERO).expect("scrub pass runs");
    let (boundary, t) = w.aggregate(t).expect("aggregation runs");
    let before = w.scrub_stats();
    let (second, _) = w.scrub(t).expect("clean pass runs");
    let after = w.scrub_stats();
    assert_eq!(
        second.mismatches_found, 0,
        "the post-repair scrub pass must be clean"
    );
    ScrubCell {
        gib_s: report.gib_per_sec(),
        failed: report.io.errors.get(),
        agg_boundary: boundary.0,
        found: first.mismatches_found,
        repaired: first.mismatches_repaired,
        repair_bytes: after.repair_bytes,
        combine_bytes: after.combine_bytes,
        clean_scanned: after.scanned_bytes - before.scanned_bytes,
        clean_chunks: after.chunks_compared - before.chunks_compared,
    }
}

// ---------------------------------------------------- acceptance cell --

struct AcceptCell {
    gib_s: f64,
    failed: u64,
    found: u64,
    repaired: u64,
    second_found: u64,
    restore_ms: u64,
}

/// Kill + bit-rot under QD8 writes, healed in self-healing order:
/// scrub the survivors, then the paced rebuild, then a verifying pass.
fn run_accept(forced_serial: bool) -> AcceptCell {
    let mut w = world();
    w.world.client.set_force_serial_pipeline(forced_serial);
    let base = w.world.client.ops();
    let mut plan = FaultPlan::kill_after(VICTIM, base + KILL_AFTER_OPS, RAS_DELAY);
    plan.bitrot = rot_entries(base);
    w.set_fault_plan(plan);
    w.set_service_budget(BgService::Rebuild, QosLimits::bytes_per_sec(REBUILD_BUDGET));
    let report: FioReport = run_fio(&mut w, &write_spec());

    let (first, t) = w.scrub(SimTime::ZERO).expect("scrub pass runs");
    let done = w.rebuild(t).expect("rebuild completes");
    let (second, _) = w.scrub(done).expect("verifying pass runs");
    AcceptCell {
        gib_s: report.gib_per_sec(),
        failed: report.io.errors.get(),
        found: first.mismatches_found,
        repaired: first.mismatches_repaired,
        second_found: second.mismatches_found,
        restore_ms: done.saturating_since(t).as_nanos() / 1_000_000,
    }
}

fn main() {
    println!(
        "recovery cells: {ENGINES} engines RF {RF}, kill slot {VICTIM} after \
         {KILL_AFTER_OPS} ops, rebuild lane {} MiB/s",
        REBUILD_BUDGET >> 20
    );

    // Baseline for the foreground floor: the read spec with no faults.
    let baseline = {
        let mut w = world();
        let report = run_fio(&mut w, &read_spec());
        assert_eq!(report.io.errors.get(), 0);
        report.gib_per_sec()
    };
    println!("  baseline: {baseline:.2} GiB/s");

    let unpaced = run_recovery(false);
    let paced = run_recovery(true);
    assert_eq!(
        paced.failed, 0,
        "recovery: a kill under QD32 must complete with zero failed ops"
    );
    assert!(
        paced.gib_s >= baseline * 0.5,
        "recovery: foreground throughput {:.2} fell below the floor (half \
         of {baseline:.2})",
        paced.gib_s
    );
    assert_eq!(
        (paced.objects_moved, paced.bytes_moved),
        (unpaced.objects_moved, unpaced.bytes_moved),
        "the rebuild lane must change timing, never what moves"
    );
    assert!(
        paced.restore_ms > unpaced.restore_ms && paced.throttle_ms > 0,
        "the {} MiB/s lane must stretch the restore ({} ms paced vs {} ms \
         unpaced, {} ms throttled)",
        REBUILD_BUDGET >> 20,
        paced.restore_ms,
        unpaced.restore_ms,
        paced.throttle_ms
    );
    println!(
        "  recovery: {:.2} GiB/s foreground, {} objects / {} bytes moved, \
         RF restored in {} ms unpaced / {} ms paced ({} ms throttled)",
        paced.gib_s,
        paced.objects_moved,
        paced.bytes_moved,
        unpaced.restore_ms,
        paced.restore_ms,
        paced.throttle_ms
    );

    let scrub = run_scrub();
    assert_eq!(scrub.failed, 0, "scrub cell: writes must not fail");
    assert!(
        scrub.found >= 2,
        "scrub cell: scheduled rot went undetected ({} found)",
        scrub.found
    );
    assert_eq!(
        scrub.found, scrub.repaired,
        "scrub cell: every mismatch must be repaired"
    );
    assert_eq!(
        scrub.clean_scanned, 0,
        "scrub cell: the clean pass must verify without scanning payload"
    );
    assert!(scrub.clean_chunks > 0);
    println!(
        "  scrub: boundary {} aggregated, {} mismatches found, {} repaired \
         ({} bytes restreamed); clean pass compared {} chunks, scanned 0 \
         payload bytes",
        scrub.agg_boundary, scrub.found, scrub.repaired, scrub.repair_bytes, scrub.clean_chunks
    );

    let accept = run_accept(false);
    assert_eq!(accept.failed, 0, "acceptance: zero failed foreground ops");
    assert!(accept.found >= 1, "acceptance: rot must be detected");
    assert_eq!(
        accept.found, accept.repaired,
        "acceptance: every mismatch must be repaired before the rebuild"
    );
    assert_eq!(
        accept.second_found, 0,
        "acceptance: the healed cluster must scrub clean"
    );
    // Bit-identical replay, pipelined and forced-serial.
    let replay = run_accept(false);
    assert_eq!(
        (
            accept.gib_s.to_bits(),
            accept.found,
            accept.repaired,
            accept.restore_ms
        ),
        (
            replay.gib_s.to_bits(),
            replay.found,
            replay.repaired,
            replay.restore_ms
        ),
        "acceptance: pipelined replay diverged"
    );
    let s1 = run_accept(true);
    let s2 = run_accept(true);
    assert_eq!(
        (s1.gib_s.to_bits(), s1.found, s1.repaired, s1.restore_ms),
        (s2.gib_s.to_bits(), s2.found, s2.repaired, s2.restore_ms),
        "acceptance: forced-serial replay diverged"
    );
    assert_eq!((s1.failed, s1.second_found), (0, 0));
    println!(
        "  acceptance: {:.2} GiB/s foreground, {} found = {} repaired, RF \
         restored in {} ms, replays bit-identical (pipelined + serial)",
        accept.gib_s, accept.found, accept.repaired, accept.restore_ms
    );

    let json = format!(
        "{{\n  \"recovery_baseline_gib_s\": {:.4},\n  \
         \"recovery_gib_s\": {:.4},\n  \
         \"recovery_failed_ops\": {},\n  \
         \"recovery_objects_moved\": {},\n  \
         \"recovery_bytes_moved\": {},\n  \
         \"recovery_restore_ms_unpaced\": {},\n  \
         \"recovery_restore_ms_paced\": {},\n  \
         \"recovery_throttle_ms\": {},\n  \
         \"scrub_gib_s\": {:.4},\n  \
         \"scrub_agg_boundary\": {},\n  \
         \"scrub_mismatches_found\": {},\n  \
         \"scrub_mismatches_repaired\": {},\n  \
         \"scrub_unrepaired\": {},\n  \
         \"scrub_repair_bytes\": {},\n  \
         \"scrub_combine_bytes\": {},\n  \
         \"scrub_clean_scanned_bytes\": {},\n  \
         \"accept_gib_s\": {:.4},\n  \
         \"accept_failed_ops\": {},\n  \
         \"accept_mismatches_found\": {},\n  \
         \"accept_mismatches_repaired\": {},\n  \
         \"accept_second_pass_found\": {},\n  \
         \"accept_restore_ms\": {}\n}}\n",
        baseline,
        paced.gib_s,
        paced.failed,
        paced.objects_moved,
        paced.bytes_moved,
        unpaced.restore_ms,
        paced.restore_ms,
        paced.throttle_ms,
        scrub.gib_s,
        scrub.agg_boundary,
        scrub.found,
        scrub.repaired,
        scrub.found - scrub.repaired,
        scrub.repair_bytes,
        scrub.combine_bytes,
        scrub.clean_scanned,
        accept.gib_s,
        accept.failed,
        accept.found,
        accept.repaired,
        accept.second_found,
        accept.restore_ms,
    );
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    println!("wrote BENCH_PR8.json");
}
