//! **Ablation X1**: the §3.5 GPUDirect extension. The prototype terminates
//! payloads in DPU DRAM; a GPU consumer then needs a host-mediated
//! `DPU DRAM -> host -> GPU HBM` staging copy. With GPUDirect RDMA, the
//! storage server's RDMA WRITE targets GPU HBM directly and the copy
//! disappears — "a minimal-copy data path" (§5).
//!
//! The paper leaves this extension unevaluated; here the same architecture
//! runs both ways.

use bytes::Bytes;
use ros2_bench::print_table;
use ros2_core::{Ros2Config, Ros2System};
use ros2_hw::per_byte;
use ros2_nvme::DataMode;
use ros2_sim::SimDuration;
use ros2_verbs::MemoryDomain;

/// Host-mediated staging cost: PCIe Gen4 x16 effective (~21 GiB/s) plus a
/// fixed host-wakeup/launch cost per transfer. This is the leg GPUDirect
/// removes.
fn staging_cost(bytes: u64) -> SimDuration {
    SimDuration::from_micros(6) + per_byte(bytes, 44) // 44 ps/B ≈ 21 GiB/s
}

fn run(domain: MemoryDomain, reads: u64, bs: u64) -> (f64, f64) {
    let mut sys = Ros2System::launch(Ros2Config {
        buffer_domain: domain,
        ssds: 4,
        jobs: 8,
        data_mode: DataMode::Null,
        ..Ros2Config::default()
    })
    .unwrap();
    let mut f = sys.create("/batch.bin").unwrap().value;
    sys.write(&mut f, 0, Bytes::from(vec![0u8; (reads * bs) as usize]))
        .unwrap();
    let t0 = sys.now();
    let mut latency_sum = SimDuration::ZERO;
    for i in 0..reads {
        let r = sys.read(&f, i * bs, bs).unwrap();
        let total = if domain == MemoryDomain::GpuHbm {
            r.latency // data already in GPU HBM
        } else {
            r.latency + staging_cost(bs) // extra DPU->host->GPU leg
        };
        latency_sum += total;
    }
    let elapsed = sys.now().saturating_since(t0)
        + if domain == MemoryDomain::GpuHbm {
            SimDuration::ZERO
        } else {
            staging_cost(bs).saturating_mul(reads)
        };
    let bw = (reads * bs) as f64 / elapsed.as_secs_f64() / (1u64 << 30) as f64;
    let mean_us = latency_sum.as_secs_f64() * 1e6 / reads as f64;
    (bw, mean_us)
}

fn main() {
    let header = vec![
        "data sink".to_string(),
        "batch-read BW (GiB/s)".to_string(),
        "mean read latency (us)".to_string(),
    ];
    let mut rows = Vec::new();
    for (label, domain) in [
        (
            "DPU DRAM + host staging copy (prototype)",
            MemoryDomain::DpuDram,
        ),
        (
            "GPU HBM via GPUDirect RDMA (extension)",
            MemoryDomain::GpuHbm,
        ),
    ] {
        let (bw, lat) = run(domain, 64, 1 << 20);
        rows.push(vec![
            label.to_string(),
            format!("{bw:6.2}"),
            format!("{lat:8.1}"),
        ]);
    }
    print_table(
        "Ablation: GPUDirect placement vs DPU-DRAM staging (1 MiB reads, RDMA, 4 SSDs)",
        &header,
        &rows,
    );
    println!(
        "\nExpected shape: GPUDirect removes the host-mediated PCIe staging leg, cutting \
         ~50 us off every 1 MiB read (and freeing the host CPU entirely); at queue depth 1 \
         the batch bandwidth gain is the same ratio. The transport and server design are \
         untouched (the point of §3.5)."
    );
}
