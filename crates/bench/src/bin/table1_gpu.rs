//! **Table 1**: NVIDIA data-center GPUs across generations, plus the §2.1
//! ingest model `B_node ≈ G · r · s` evaluated for representative training
//! configurations — the motivation for RDMA-first storage.

use ros2_bench::print_table;
use ros2_hw::{IngestModel, LlmPhase, TABLE1};

fn main() {
    let header: Vec<String> = [
        "GPU",
        "Architecture",
        "Memory (GB)",
        "Mem BW",
        "NVLink (gen / BW)",
        "FP16",
        "FP8",
        "FP4",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = TABLE1
        .iter()
        .map(|g| {
            let fmt_tf = |v: Option<f64>| match v {
                Some(t) if t >= 1000.0 => format!("{:.0} PFLOPS", t / 1000.0),
                Some(t) => format!("{t:.1} TFLOPS"),
                None => "N/A".to_string(),
            };
            vec![
                g.name.to_string(),
                g.architecture.to_string(),
                format!("{} {}", g.memory_gb, g.memory_kind),
                if g.mem_bw_gbs >= 1000.0 {
                    format!("{:.2} TB/s", g.mem_bw_gbs / 1000.0)
                } else {
                    format!("{:.0} GB/s", g.mem_bw_gbs)
                },
                format!("NVLink {} / up to {:.0} GB/s", g.nvlink_gen, g.nvlink_gbs),
                fmt_tf(Some(g.fp16_tflops)),
                fmt_tf(g.fp8_tflops),
                fmt_tf(g.fp4_tflops),
            ]
        })
        .collect();
    print_table(
        "Table 1: NVIDIA data center GPUs across generations",
        &header,
        &rows,
    );

    // The ingest model.
    println!("\n### §2.1 ingest model: B_node = G * r * s");
    let configs = [
        (
            "conservative 8-GPU node",
            IngestModel {
                gpus_per_node: 8,
                samples_per_gpu_per_sec: 500.0,
                bytes_per_sample: 128 * 1024,
            },
        ),
        ("LLM pretraining node", IngestModel::llm_pretraining_node()),
        (
            "multimodal node",
            IngestModel {
                gpus_per_node: 8,
                samples_per_gpu_per_sec: 1_000.0,
                bytes_per_sample: 1 << 20,
            },
        ),
    ];
    for (label, m) in configs {
        println!(
            "  {:26} G={} r={:>6.0}/s s={:>8}B  =>  B_node = {:.2} GiB/s, {:.0} random IOPS",
            label,
            m.gpus_per_node,
            m.samples_per_gpu_per_sec,
            m.bytes_per_sample,
            m.required_gib_per_sec(),
            m.required_iops(),
        );
    }

    println!("\n### Fig. 1: storage requirements across the LLM lifecycle");
    for phase in LlmPhase::ALL {
        println!("  {:?}: {}", phase, phase.requirements().join(", "));
    }
}
