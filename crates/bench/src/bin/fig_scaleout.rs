//! Scale-out sweep (PR 5): aggregate DFS throughput as the cluster grows
//! from 1 to 8 engines behind the shared 100 Gbps switch port — RDMA,
//! large sequential blocks, one 5.8 GiB/s NVMe drive per engine.
//!
//! The expected shape, asserted as gates and recorded in
//! `BENCH_PR5.json`:
//!
//! * **growth** — one engine is drive-bound (~5.8 GiB/s), so doubling the
//!   engine count must grow aggregate throughput substantially;
//! * **saturation** — the client's single switch port (100 Gbps ≈ 11.64
//!   GiB/s) is the shared bottleneck, so the curve flattens beneath it
//!   instead of scaling forever — the §3.1 cluster shape made measurable;
//! * **no regression of the control arm** — the legacy single-engine
//!   sweep re-played through the cluster-of-1 path must still simulate
//!   exactly `OPS_SIMULATED_PIN` ops (595716, pinned since PR 3);
//! * **resilience** — an RF=2, 4-engine world survives an engine kill
//!   mid-workload with zero failed ops (degraded reads), and the online
//!   rebuild restores RF with every CRC intact.

use ros2_bench::{legacy_sweep_ops, OPS_SIMULATED_PIN};
use ros2_fio::{run_fio, JobSpec, RwMode, WorldSpec};
use ros2_hw::gbps;
use ros2_nvme::DataMode;
use ros2_sim::{SimDuration, SimTime};

/// Engine-count axis of the sweep.
const ENGINES: [usize; 4] = [1, 2, 4, 8];
const JOBS: usize = 16;
const REGION: u64 = 8 << 20;

fn scale_spec(rw: RwMode, bs: u64) -> JobSpec {
    JobSpec::new(rw, bs, JOBS)
        .iodepth(4)
        .region(REGION)
        .windows(SimDuration::from_millis(20), SimDuration::from_millis(80))
}

/// One scale-sweep cell: `engines` storage nodes, RF 1, large sequential
/// reads. Returns (GiB/s, failed ops).
fn scale_cell(engines: usize) -> (f64, u64) {
    let mut world = WorldSpec::cluster(engines)
        .jobs(JOBS)
        .region(REGION)
        .mode(DataMode::Null)
        .build();
    let report = run_fio(&mut world, &scale_spec(RwMode::Read, 1 << 20));
    (report.gib_per_sec(), report.io.errors.get())
}

/// The resilience cell: 4 engines, RF 2, stored contents. Runs a write
/// pass, kills the first file's replica leader, runs a full read pass
/// degraded, rebuilds, and reads again. Returns the recorded fields.
struct ResilienceCell {
    degraded_gib_s: f64,
    post_rebuild_gib_s: f64,
    failed_ops: u64,
    degraded_fetches: u64,
    rebuild_objects: u64,
    rebuild_bytes: u64,
}

fn resilience_cell() -> ResilienceCell {
    let mut world = WorldSpec::cluster(4)
        .replication(2)
        .jobs(8)
        .region(REGION)
        .build();
    let spec = JobSpec::new(RwMode::Read, 1 << 20, 8)
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(10), SimDuration::from_millis(40));
    let mut failed = 0u64;

    // Baseline pass, then kill the leader of file 0's object.
    let baseline = run_fio(&mut world, &spec);
    failed += baseline.io.errors.get();
    let victim = world
        .world
        .cluster
        .route_update(&world.file(0).oid)
        .leader()
        .expect("healthy leader");
    world.kill_engine(victim).expect("kill");

    // Degraded pass: every read must still succeed.
    world.reset_timing();
    let degraded = run_fio(&mut world, &spec);
    failed += degraded.io.errors.get();

    // Online rebuild, then a verified post-rebuild pass.
    world.reset_timing();
    world.rebuild(SimTime::ZERO).expect("rebuild");
    world.reset_timing();
    let recovered = run_fio(&mut world, &spec);
    failed += recovered.io.errors.get();

    let stats = world.rebuild_stats();
    ResilienceCell {
        degraded_gib_s: degraded.gib_per_sec(),
        post_rebuild_gib_s: recovered.gib_per_sec(),
        failed_ops: failed,
        degraded_fetches: stats.degraded_fetches,
        rebuild_objects: stats.objects_moved,
        rebuild_bytes: stats.bytes_moved,
    }
}

fn main() {
    let port_gib_s = gbps(100) as f64 / (1u64 << 30) as f64;

    println!("scale-out sweep: {ENGINES:?} engines, RDMA, 1 MiB sequential reads, {JOBS} jobs");
    let mut tputs = Vec::new();
    let mut scale_failed = 0u64;
    for &n in &ENGINES {
        let (gib_s, failed) = scale_cell(n);
        println!("  {n:>2} engines: {gib_s:6.2} GiB/s");
        tputs.push(gib_s);
        scale_failed += failed;
    }
    let growth_2x = tputs[1] / tputs[0].max(1e-9);
    let peak = tputs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "  growth 1->2 engines: {growth_2x:.2}x; peak {peak:.2} GiB/s vs \
         {port_gib_s:.2} GiB/s port"
    );

    let res = resilience_cell();
    println!(
        "resilience (4 engines, RF 2): degraded {0:.2} GiB/s, post-rebuild {1:.2} GiB/s, \
         {2} failed ops, {3} degraded fetches, {4} objects / {5} B rebuilt",
        res.degraded_gib_s,
        res.post_rebuild_gib_s,
        res.failed_ops,
        res.degraded_fetches,
        res.rebuild_objects,
        res.rebuild_bytes,
    );

    println!("re-playing the legacy single-engine sweep for the ops pin...");
    let legacy_ops = legacy_sweep_ops();
    println!("  legacy sweep ops: {legacy_ops} (pin {OPS_SIMULATED_PIN})");

    // ---- gates (all virtual-time, deterministic) ----
    assert_eq!(scale_failed, 0, "scale sweep must complete without errors");
    assert!(
        growth_2x > 1.3,
        "2 engines must clearly outrun 1 (drive-bound -> {growth_2x:.2}x)"
    );
    for w in tputs.windows(2) {
        assert!(
            w[1] > w[0] * 0.92,
            "aggregate throughput must not collapse as engines are added: {tputs:?}"
        );
    }
    assert!(
        peak <= port_gib_s * 1.02,
        "aggregate throughput cannot exceed the shared switch port \
         ({peak:.2} vs {port_gib_s:.2} GiB/s)"
    );
    assert!(
        peak > port_gib_s * 0.80,
        "8 drive-bound engines must saturate the shared port \
         ({peak:.2} vs {port_gib_s:.2} GiB/s)"
    );
    assert_eq!(
        res.failed_ops, 0,
        "an RF=2 world must survive an engine kill with zero failed ops"
    );
    assert!(
        res.degraded_fetches > 0,
        "the killed leader's objects must be served degraded"
    );
    assert!(
        res.rebuild_objects > 0 && res.rebuild_bytes > 0,
        "rebuild must move the dead engine's objects"
    );
    assert_eq!(
        legacy_ops, OPS_SIMULATED_PIN,
        "the legacy single-engine sweep must stay bit-identical through \
         the cluster refactor"
    );

    let mut cells_json = String::from("[");
    for (i, (&n, &gib_s)) in ENGINES.iter().zip(&tputs).enumerate() {
        if i > 0 {
            cells_json.push_str(", ");
        }
        cells_json.push_str(&format!("{{\"engines\": {n}, \"gib_s\": {gib_s:.4}}}"));
    }
    cells_json.push(']');

    let json = format!(
        "{{\n  \"scaleout\": {cells_json},\n  \
         \"scaleout_growth_2x\": {growth_2x:.4},\n  \
         \"scaleout_peak_gib_s\": {peak:.4},\n  \
         \"port_gib_s\": {port_gib_s:.4},\n  \
         \"scaleout_failed_ops\": {scale_failed},\n  \
         \"rf2_degraded_gib_s\": {:.4},\n  \
         \"rf2_post_rebuild_gib_s\": {:.4},\n  \
         \"rf2_failed_ops\": {},\n  \
         \"rf2_degraded_fetches\": {},\n  \
         \"rf2_rebuild_objects\": {},\n  \
         \"rf2_rebuild_bytes\": {},\n  \
         \"ops_simulated\": {legacy_ops}\n}}\n",
        res.degraded_gib_s,
        res.post_rebuild_gib_s,
        res.failed_ops,
        res.degraded_fetches,
        res.rebuild_objects,
        res.rebuild_bytes,
    );
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("wrote BENCH_PR5.json");
}
