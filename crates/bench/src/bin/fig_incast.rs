//! Incast figure (PR 9): N clients fanning into one 4-engine cluster
//! through the shared switch, recorded in `BENCH_PR9.json`.
//!
//! The clients axis sweeps 1 → 256. Each cell measures what the incast
//! deployment shape actually does to the storage side:
//!
//! * **aggregate throughput** — grows with the client count until the
//!   storage ports saturate, then flattens (never exceeds them): the
//!   incast collapse is a fairness story, not a loss story, on a lossless
//!   fabric;
//! * **fairness** — symmetric clients must share the ports evenly; the
//!   per-client op spread (max/min) is gated;
//! * **connection pool** — the engines hold at most `POOL_CAPACITY`
//!   resident sessions regardless of the client count. At ≤ capacity the
//!   steady state is all hits; at 256 clients the pool thrashes by
//!   design and the recorded hit rate quantifies the reconnect tax;
//! * **kill cell** — 64 clients, RF 2, engine 1 dies mid-run and the new
//!   map reaches every client as **one** pushed `MapPush` fan-out
//!   (delayed RAS, per-client serialization gap), not 64 `MapQuery`
//!   pulls. Zero failed ops, bounded retries.

use ros2_bench::{legacy_sweep_ops, OPS_SIMULATED_PIN};
use ros2_core::FaultPlan;
use ros2_fio::{run_fio, Clients, IncastFioWorld, JobSpec, RwMode, WorldSpec};
use ros2_nvme::DataMode;
use ros2_sim::SimDuration;

/// Clients axis of the sweep.
const CLIENT_COUNTS: [usize; 4] = [1, 16, 64, 256];
const ENGINES: usize = 4;
const RF: usize = 2;
const JOBS_PER_CLIENT: usize = 1;
const REGION: u64 = 2 << 20;
/// Engine-side resident-session bound: the 256-client cell oversubscribes
/// it 4× on purpose.
const POOL_CAPACITY: usize = 64;
const KILL_CLIENTS: usize = 64;
const KILL_AFTER_OPS: u64 = 140;
const RAS_DELAY: SimDuration = SimDuration::from_millis(5);

fn incast_world(clients: usize, mode: DataMode) -> IncastFioWorld {
    WorldSpec::cluster(ENGINES)
        .clients(Clients::host(clients))
        .replication(RF)
        .jobs(JOBS_PER_CLIENT)
        .region(REGION)
        .mode(mode)
        .pool_capacity(POOL_CAPACITY)
        .build_incast()
}

fn sweep_spec(total_jobs: usize) -> JobSpec {
    JobSpec::new(RwMode::RandRead, 1 << 20, total_jobs)
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(20))
        .seed(9)
}

struct IncastCell {
    clients: usize,
    gib_s: f64,
    failed: u64,
    fairness: f64,
    hit_rate: f64,
    resident_peak: u64,
    evictions: u64,
    misses: u64,
}

fn sweep_cell(clients: usize) -> IncastCell {
    let mut w = incast_world(clients, DataMode::Null);
    let spec = sweep_spec(w.total_jobs());
    let report = run_fio(&mut w, &spec);
    let ops = w.per_client_ops();
    let min = *ops.iter().min().unwrap() as f64;
    let max = *ops.iter().max().unwrap() as f64;
    let stats = w.conn_pool_stats();
    IncastCell {
        clients,
        gib_s: report.gib_per_sec(),
        failed: report.io.errors.get(),
        fairness: max / min.max(1.0),
        hit_rate: stats.hit_rate(),
        resident_peak: stats.resident_peak,
        evictions: stats.evictions,
        misses: stats.misses,
    }
}

struct KillCell {
    gib_s: f64,
    failed: u64,
    fences: u64,
    retries: u64,
    exhausted: u64,
    hit_rate: f64,
    resident_peak: u64,
}

/// 64 clients, stored contents, engine 1 killed mid-run; the revision is
/// distributed by the RAS push fan-out (pipelined path: the retry ladder
/// needs the op ring).
fn kill_cell() -> KillCell {
    let mut w = incast_world(KILL_CLIENTS, DataMode::Stored);
    w.set_pipelined(true);
    let after = w.total_ops() + KILL_AFTER_OPS;
    w.set_fault_plan(FaultPlan::kill_after(1, after, RAS_DELAY));
    let spec = JobSpec::new(RwMode::RandWrite, 1 << 20, w.total_jobs())
        .iodepth(2)
        .region(REGION)
        .windows(SimDuration::from_millis(2), SimDuration::from_millis(20))
        .seed(13);
    let report = run_fio(&mut w, &spec);
    let retry = w.retry_stats();
    let stats = w.conn_pool_stats();
    KillCell {
        gib_s: report.gib_per_sec(),
        failed: report.io.errors.get(),
        fences: w.fences(),
        retries: retry.retries,
        exhausted: retry.exhausted,
        hit_rate: stats.hit_rate(),
        resident_peak: stats.resident_peak,
    }
}

fn main() {
    println!(
        "incast sweep: {CLIENT_COUNTS:?} clients x {JOBS_PER_CLIENT} job, {ENGINES} engines \
         RF {RF}, pool capacity {POOL_CAPACITY}"
    );
    let cells: Vec<IncastCell> = CLIENT_COUNTS.iter().map(|&c| sweep_cell(c)).collect();
    for cell in &cells {
        println!(
            "  {:>3} clients: {:6.2} GiB/s aggregate, fairness {:.2}x, pool hit rate {:.3}, \
             resident peak {}, {} evictions",
            cell.clients,
            cell.gib_s,
            cell.fairness,
            cell.hit_rate,
            cell.resident_peak,
            cell.evictions,
        );
    }

    let kill = kill_cell();
    println!(
        "kill cell ({KILL_CLIENTS} clients, RAS push): {:.2} GiB/s, {} failed, {} fences, \
         {} retries, hit rate {:.3}",
        kill.gib_s, kill.failed, kill.fences, kill.retries, kill.hit_rate,
    );

    println!("re-playing the legacy sweeps for the ops pin...");
    let legacy_ops = legacy_sweep_ops();
    println!("  legacy sweep ops: {legacy_ops} (pin {OPS_SIMULATED_PIN})");

    // ---- gates (all virtual-time, deterministic) ----
    for cell in &cells {
        assert_eq!(
            cell.failed, 0,
            "{} clients: the incast sweep must not error",
            cell.clients
        );
        assert!(
            cell.fairness <= 2.0,
            "{} clients: symmetric clients must share the ports fairly \
             ({:.2}x spread)",
            cell.clients,
            cell.fairness
        );
        assert!(
            cell.resident_peak <= POOL_CAPACITY as u64,
            "{} clients: engine connection state must stay O(pool capacity)",
            cell.clients
        );
        if cell.clients <= POOL_CAPACITY {
            assert_eq!(
                cell.misses, cell.clients as u64,
                "{} clients fit the pool: exactly one cold handshake each",
                cell.clients
            );
            assert_eq!(cell.evictions, 0, "{} clients must not evict", cell.clients);
            assert!(
                cell.hit_rate > 0.85,
                "{} clients fit the pool: steady state must be hits \
                 (got {:.3})",
                cell.clients,
                cell.hit_rate
            );
        } else {
            assert!(
                cell.evictions > 0,
                "{} clients must oversubscribe the {POOL_CAPACITY}-slot pool",
                cell.clients
            );
        }
    }
    assert!(
        cells[1].gib_s > cells[0].gib_s * 1.5,
        "16 clients must outrun 1 before the ports saturate: {:.2} vs {:.2} GiB/s",
        cells[1].gib_s,
        cells[0].gib_s
    );
    let peak = cells.iter().map(|c| c.gib_s).fold(0.0f64, f64::max);
    assert!(
        cells[3].gib_s > peak * 0.60,
        "256 clients on a lossless fabric degrade gracefully, not collapse \
         ({:.2} vs peak {:.2} GiB/s)",
        cells[3].gib_s,
        peak
    );
    assert_eq!(
        kill.failed, 0,
        "a kill under incast with the RAS push must lose zero ops"
    );
    assert!(
        kill.fences >= 1,
        "the pushed revision must fence at least once"
    );
    assert!(kill.retries >= 1, "recovery must ride the ladder");
    assert_eq!(kill.exhausted, 0, "no op may exhaust its retry budget");
    assert!(kill.resident_peak <= POOL_CAPACITY as u64);
    assert_eq!(
        legacy_ops, OPS_SIMULATED_PIN,
        "the clients axis is opt-in: single-client sweeps must stay \
         bit-identical"
    );

    let mut cells_json = String::from("[");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            cells_json.push_str(", ");
        }
        cells_json.push_str(&format!(
            "{{\"clients\": {}, \"gib_s\": {:.4}, \"fairness\": {:.4}, \
             \"pool_hit_rate\": {:.4}, \"resident_peak\": {}, \"evictions\": {}}}",
            cell.clients,
            cell.gib_s,
            cell.fairness,
            cell.hit_rate,
            cell.resident_peak,
            cell.evictions,
        ));
    }
    cells_json.push(']');

    let json = format!(
        "{{\n  \"incast\": {cells_json},\n  \
         \"incast_pool_capacity\": {POOL_CAPACITY},\n  \
         \"incast_kill_gib_s\": {:.4},\n  \
         \"incast_kill_failed_ops\": {},\n  \
         \"incast_kill_fences\": {},\n  \
         \"incast_kill_retries\": {},\n  \
         \"incast_kill_exhausted\": {},\n  \
         \"incast_kill_pool_hit_rate\": {:.4},\n  \
         \"ops_simulated\": {legacy_ops}\n}}\n",
        kill.gib_s, kill.failed, kill.fences, kill.retries, kill.exhausted, kill.hit_rate,
    );
    std::fs::write("BENCH_PR9.json", &json).expect("write BENCH_PR9.json");
    println!("wrote BENCH_PR9.json");
}
