//! Simulator-throughput regression gate: times a fixed Fig. 5-style DFS
//! sweep on **wall clock** (not virtual time) and emits `BENCH_PR2.json` so
//! successive PRs accumulate a perf trajectory for the booking core *and*
//! the zero-copy data plane.
//!
//! Three passes run:
//!
//! * **batched** — the shipping configuration: closed-form pipelined wire
//!   windows plus the `IntervalBook` tail-append fast path, over the
//!   contended multi-job sweep;
//! * **per-segment** — the identical sweep with the wire fast path forced
//!   off (`Fabric::set_force_per_segment`), the pre-optimization booking
//!   pattern, kept runnable so the speedup stays measurable;
//! * **uncontended** — single-job closed-loop streams, the regime the
//!   tail-append shortcut is built for; its booking hit rate is the
//!   headline `fastpath_hit_rate` and must clear 90 %.
//!
//! Batched and per-segment must produce identical simulated results
//! (asserted on every sweep cell); the fast path is a pure wall-clock
//! optimization.
//!
//! Data-plane gates (PR 2): the sequential (uncontended) workload must
//! move >90 % of its payload bytes zero-copy through the extent stores
//! (`DataPlaneStats`; the rate covers store reads *and* handle-adopting
//! writes — both directions of the rendezvous path). The fig5 sweep wall
//! time is *recorded* against the PR 1 baseline (measured ~5x faster at
//! PR 2 time on the same container class) but not asserted — wall-clock
//! ratios vary with the host, so the asserted gates are the
//! machine-independent ones: bit-identical fast/slow results, booking hit
//! rate, and the zero-copy rate.

use std::time::Instant;

use rayon::prelude::*;
use ros2_buf::DataPlaneStats;
use ros2_fio::{run_fio, DfsFioWorld, JobSpec, RwMode};
use ros2_hw::{ClientPlacement, Transport};
use ros2_nvme::DataMode;
use ros2_sim::{BandwidthServer, ResourceStats, SimDuration, SimTime};

const JOBS: usize = 4;
const REGION: u64 = 16 << 20;

/// `sweep_wall_ms` recorded by this harness at the PR 1 head (same cell
/// plan, same container class) — the baseline the data-plane rework is
/// gated against.
const PR1_SWEEP_WALL_MS: f64 = 20_568.5;

fn spec(rw: RwMode, bs: u64, jobs: usize, qd: usize) -> JobSpec {
    JobSpec::new(rw, bs, jobs)
        .iodepth(qd)
        .region(REGION)
        .windows(SimDuration::from_millis(50), SimDuration::from_millis(150))
}

/// One simulated sweep cell; returns (ops, fabric booking stats,
/// batched/per-segment traversal counts, GiB/s for the identity check,
/// data-plane counters over every store the cell touched).
fn cell(
    transport: Transport,
    placement: ClientPlacement,
    rw: RwMode,
    bs: u64,
    jobs: usize,
    qd: usize,
    force_per_segment: bool,
) -> (u64, ResourceStats, u64, u64, f64, DataPlaneStats) {
    let mut world = DfsFioWorld::with_wire_mode(
        transport,
        placement,
        1,
        jobs,
        REGION,
        DataMode::Null,
        force_per_segment,
    );
    let report = run_fio(&mut world, &spec(rw, bs, jobs, qd));
    let wire = world.fabric.wire_traversal_stats();
    let mut stats = world.fabric.resource_stats();
    stats.merge(world.engine.resource_stats());
    stats.merge(world.client.resource_stats());
    let mut dp = world.fabric.data_plane_stats();
    dp.merge(world.engine.data_plane_stats());
    (
        report.io.meter.ops(),
        stats,
        wire.batched,
        wire.per_segment,
        report.gib_per_sec(),
        dp,
    )
}

fn cells(jobs: usize, qd: usize) -> Vec<(Transport, ClientPlacement, RwMode, u64, usize, usize)> {
    let mut out = Vec::new();
    for &t in &[Transport::Rdma, Transport::Tcp] {
        for &p in &[ClientPlacement::Host, ClientPlacement::Dpu] {
            for &rw in RwMode::ALL.iter() {
                for bs in [1u64 << 20, 4 << 10] {
                    out.push((t, p, rw, bs, jobs, qd));
                }
            }
        }
    }
    out
}

struct SweepResult {
    wall_ms: f64,
    ops: u64,
    stats: ResourceStats,
    batched: u64,
    per_segment: u64,
    rates: Vec<f64>,
    dp: DataPlaneStats,
}

fn sweep(jobs: usize, qd: usize, force_per_segment: bool) -> SweepResult {
    let plan = cells(jobs, qd);
    let t0 = Instant::now();
    let results: Vec<(u64, ResourceStats, u64, u64, f64, DataPlaneStats)> = plan
        .par_iter()
        .map(|&(t, p, rw, bs, j, q)| cell(t, p, rw, bs, j, q, force_per_segment))
        .collect();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut out = SweepResult {
        wall_ms,
        ops: 0,
        stats: ResourceStats::default(),
        batched: 0,
        per_segment: 0,
        rates: Vec::with_capacity(results.len()),
        dp: DataPlaneStats::default(),
    };
    for (o, s, b, ps, gib, dp) in results {
        out.ops += o;
        out.stats.merge(s);
        out.batched += b;
        out.per_segment += ps;
        out.rates.push(gib);
        out.dp.merge(dp);
    }
    out
}

/// The seed's `Vec`-backed booking core, verbatim (gap scan from
/// `partition_point`, drain-based prune), used as the baseline for the
/// booking-core microcomparison. A second verbatim copy is the grant
/// oracle in `crates/sim/tests/fastpath_equivalence.rs` (`RefBook`); if
/// either copy is ever touched, update both. On the steady-state pattern the drain
/// memmoves the entire span tail on every booking — the O(n²) behaviour
/// the ring-buffer rewrite removes.
mod seed_reference {
    const PRUNE_SLACK_NS: u64 = 500_000_000;

    #[derive(Default)]
    pub struct SeedPipe {
        bytes_per_sec: u64,
        spans: Vec<(u64, u64)>,
        high_water: u64,
    }

    impl SeedPipe {
        pub fn new(bytes_per_sec: u64) -> Self {
            SeedPipe {
                bytes_per_sec,
                ..SeedPipe::default()
            }
        }

        fn earliest(&self, from: u64, dur: u64) -> (u64, usize) {
            let mut idx = self.spans.partition_point(|&(_, end)| end <= from);
            let mut candidate = from;
            while idx < self.spans.len() {
                let (start, end) = self.spans[idx];
                if candidate + dur <= start {
                    return (candidate, idx);
                }
                candidate = candidate.max(end);
                idx += 1;
            }
            (candidate, idx)
        }

        pub fn transmit(&mut self, now: u64, bytes: u64) -> (u64, u64) {
            let dur = (bytes as u128 * 1_000_000_000).div_ceil(self.bytes_per_sec as u128) as u64;
            let (start, idx) = self.earliest(now, dur);
            let end = start + dur;
            let prev = idx > 0 && self.spans[idx - 1].1 == start;
            let next = idx < self.spans.len() && self.spans[idx].0 == end;
            match (prev, next) {
                (true, true) => {
                    self.spans[idx - 1].1 = self.spans[idx].1;
                    self.spans.remove(idx);
                }
                (true, false) => self.spans[idx - 1].1 = end,
                (false, true) => self.spans[idx].0 = start,
                (false, false) => self.spans.insert(idx, (start, end)),
            }
            self.high_water = self.high_water.max(now);
            let cutoff = self.high_water.saturating_sub(PRUNE_SLACK_NS);
            if self.spans.len() >= 64 {
                let keep_from = self.spans.partition_point(|&(_, end)| end < cutoff);
                if keep_from > 0 {
                    self.spans.drain(0..keep_from);
                }
            }
            (start, end)
        }
    }
}

/// Times `bookings` spaced transmissions (each books its own non-merging
/// span, so the live window holds ~25 k spans) on both booking cores and
/// cross-checks every grant via an accumulated checksum (so a mid-stream
/// divergence cannot hide behind a matching final grant). Returns
/// (seed_ms, new_ms).
fn booking_core_microbench(bookings: u64) -> (f64, f64) {
    const RATE: u64 = 1_000_000_000;
    const STEP_NS: u64 = 20_000; // 20 us apart, 1 us busy: spans never merge
    const BYTES: u64 = 1_000;

    let t0 = Instant::now();
    let mut seed = seed_reference::SeedPipe::new(RATE);
    let mut seed_sum = (0u64, 0u64);
    for i in 0..bookings {
        let (start, end) = seed.transmit(i * STEP_NS, BYTES);
        seed_sum = (
            seed_sum.0.wrapping_add(start.rotate_left((i % 63) as u32)),
            seed_sum.1.wrapping_add(end.rotate_left((i % 63) as u32)),
        );
    }
    let seed_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let mut pipe = BandwidthServer::new(RATE);
    let mut sum = (0u64, 0u64);
    for i in 0..bookings {
        let g = pipe.transmit(SimTime::from_nanos(i * STEP_NS), BYTES);
        sum = (
            sum.0
                .wrapping_add(g.start.as_nanos().rotate_left((i % 63) as u32)),
            sum.1
                .wrapping_add(g.finish.as_nanos().rotate_left((i % 63) as u32)),
        );
    }
    let new_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(sum, seed_sum, "booking cores diverged");
    (seed_ms, new_ms)
}

fn main() {
    // Contended sweep: 4 jobs at the figures' default QD 8.
    let fast = sweep(JOBS, 8, false);
    let slow = sweep(JOBS, 8, true);
    // Uncontended sweep: one job, queue depth 1 — strictly sequential ops,
    // the regime the tail fast path must own.
    let uncontended = sweep(1, 1, false);

    // The fast path is timing-transparent: identical simulated output.
    assert_eq!(fast.ops, slow.ops, "op counts diverged between paths");
    for (i, (f, s)) in fast.rates.iter().zip(&slow.rates).enumerate() {
        assert_eq!(f, s, "cell {i}: batched {f} GiB/s != per-segment {s} GiB/s");
    }

    let (seed_ms, new_ms) = booking_core_microbench(150_000);
    let core_speedup = seed_ms / new_ms.max(1e-9);

    let hit_rate = uncontended.stats.hit_rate();
    let contended_hit_rate = fast.stats.hit_rate();
    let traversal_rate = fast.batched as f64 / (fast.batched + fast.per_segment).max(1) as f64;
    let wire_speedup = slow.wall_ms / fast.wall_ms.max(1e-9);
    let total_ops = fast.ops + uncontended.ops;

    // Data-plane counters: uncontended (sequential-regime) pass is the
    // headline zero-copy gate; the contended pass is reported alongside.
    // The rate counts payload bytes crossing any store boundary — reads
    // served as slices and writes adopted as handles both count zero-copy;
    // stitched reads and slice-only writes count copied.
    let zero_copy_rate = uncontended.dp.zero_copy_rate();
    let zero_copy_rate_contended = fast.dp.zero_copy_rate();
    let mut dp_total = fast.dp;
    dp_total.merge(uncontended.dp);
    let speedup_vs_pr1 = PR1_SWEEP_WALL_MS / fast.wall_ms.max(1e-9);

    println!(
        "fig5-style sweep, {} cells x {JOBS} jobs + {} uncontended cells",
        fast.rates.len(),
        uncontended.rates.len()
    );
    println!(
        "  batched pass:     {:9.1} ms wall  ({speedup_vs_pr1:.2}x vs PR1 baseline {PR1_SWEEP_WALL_MS:.1} ms)",
        fast.wall_ms
    );
    println!(
        "  per-segment pass: {:9.1} ms wall  ({wire_speedup:.2}x)",
        slow.wall_ms
    );
    println!("  uncontended pass: {:9.1} ms wall", uncontended.wall_ms);
    println!("  ops simulated:    {total_ops}");
    println!(
        "  booking fast-path hit rate: {:.4} uncontended ({}/{}), {:.4} contended",
        hit_rate, uncontended.stats.fastpath_hits, uncontended.stats.bookings, contended_hit_rate
    );
    println!(
        "  wire traversals batched:    {traversal_rate:.4} ({}/{})",
        fast.batched,
        fast.batched + fast.per_segment
    );
    println!(
        "  zero-copy byte rate:        {zero_copy_rate:.4} sequential ({}/{} bytes), \
         {zero_copy_rate_contended:.4} contended",
        uncontended.dp.bytes_zero_copy,
        uncontended.dp.bytes_zero_copy + uncontended.dp.bytes_copied
    );
    println!(
        "  crc: {} bytes scanned, {} combines, hw acceleration {}",
        dp_total.crc_bytes_scanned,
        dp_total.crc_combines,
        ros2_buf::hw_acceleration()
    );
    println!(
        "  booking core (150k steady-state bookings): seed {seed_ms:.1} ms -> {new_ms:.1} ms \
         ({core_speedup:.0}x)"
    );
    assert!(
        hit_rate > 0.9,
        "uncontended fast-path hit rate {hit_rate:.4} must exceed 0.9"
    );
    assert!(
        zero_copy_rate > 0.9,
        "sequential zero-copy rate {zero_copy_rate:.4} must exceed 0.9"
    );

    let json = format!(
        "{{\n  \"sweep_wall_ms\": {:.1},\n  \"per_segment_wall_ms\": {:.1},\n  \
         \"uncontended_wall_ms\": {:.1},\n  \"baseline_pr1_sweep_wall_ms\": {PR1_SWEEP_WALL_MS:.1},\n  \
         \"speedup_vs_pr1\": {speedup_vs_pr1:.2},\n  \"wire_batched_speedup\": {wire_speedup:.2},\n  \
         \"booking_core_seed_ms\": {seed_ms:.1},\n  \"booking_core_ms\": {new_ms:.1},\n  \
         \"booking_core_speedup\": {core_speedup:.1},\n  \
         \"ops_simulated\": {total_ops},\n  \"fastpath_hit_rate\": {hit_rate:.4},\n  \
         \"fastpath_hit_rate_contended\": {contended_hit_rate:.4},\n  \
         \"wire_batched_rate\": {traversal_rate:.4},\n  \
         \"zero_copy_read_rate\": {zero_copy_rate:.4},\n  \
         \"zero_copy_rate_contended\": {zero_copy_rate_contended:.4},\n  \
         \"bytes_zero_copy\": {},\n  \"bytes_copied\": {},\n  \
         \"crc_bytes_scanned\": {},\n  \"crc_combines\": {},\n  \
         \"crc_hw_acceleration\": {}\n}}\n",
        fast.wall_ms,
        slow.wall_ms,
        uncontended.wall_ms,
        dp_total.bytes_zero_copy,
        dp_total.bytes_copied,
        dp_total.crc_bytes_scanned,
        dp_total.crc_combines,
        ros2_buf::hw_acceleration()
    );
    std::fs::write("BENCH_PR2.json", &json).expect("write BENCH_PR2.json");
    println!("wrote BENCH_PR2.json");
}
