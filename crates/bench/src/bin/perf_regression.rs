//! Simulator-throughput regression gate: times a fixed Fig. 5-style DFS
//! sweep on **wall clock** (not virtual time) and emits `BENCH_PR4.json` so
//! successive PRs accumulate a perf trajectory for the booking core, the
//! zero-copy data plane, the allocation-free sharded metadata path (PR 3),
//! and (PR 4) the DPU-offloaded client.
//!
//! PR 4 adds a **host-vs-DPU A/B sweep** over *simulated* throughput: each
//! cell runs the classic host-placement world against the offloaded world
//! (`DpuClient`: host submit/poll doorbell, tenant QoS admission, scoped
//! rkeys, DPU-side CRC) on the same plan, plus one contended multi-tenant
//! cell where a 64 MiB/s tenant shares the DPU with an unthrottled one.
//! These are virtual-time results — deterministic, so the recorded ratios
//! and the QoS shaping are gated exactly, and `ops_simulated` of the
//! legacy sweep is pinned at 595716 (the offload path must not perturb the
//! host-placement control arm by a single grant).
//!
//! Measurement discipline (PR 3): BENCH_PR2 recorded the batched pass 22 %
//! *slower* than the per-segment pass. Two real causes and one artifact:
//! the first-measured sweep paid the process's allocator/page-fault warmup
//! (on a one-core container the back-to-back passes kept speeding up), and
//! single-segment traversals — descriptors, completions, 4 KiB payloads,
//! i.e. most of the sweep — paid the closed-form bookkeeping for a window
//! that degenerates to one booking. The harness now runs an untimed warmup
//! pass and A/Bs the sweep **per cell with alternating order** (drift
//! cancels instead of biasing one side), and the fabric books
//! single-segment transfers directly. The gated `wire_batched_speedup`
//! comes from a dedicated `traverse_wire` A/B microbench where the closed
//! form's win is far above host noise; the whole-sweep ratio is recorded
//! alongside as `sweep_batched_speedup` (a ±2 % tie — wire booking is a
//! tiny share of a full simulated op after PRs 1-3).
//!
//! Measured passes:
//!
//! * **batched** — the shipping configuration: single-segment direct
//!   bookings + closed-form pipelined windows + the `IntervalBook`
//!   tail-append fast path, over the contended multi-job sweep;
//! * **per-segment** — the identical sweep with the wire fast path forced
//!   off (`Fabric::set_force_per_segment`), the pre-optimization booking
//!   pattern, kept runnable so the speedup stays measurable;
//! * **uncontended** — single-job closed-loop streams; its booking hit
//!   rate is the headline `fastpath_hit_rate` and must clear 90 %;
//! * **metadata micro** — warm single-value update/fetch round trips
//!   through the sharded engine, reported as ns per op (the per-op
//!   metadata path PR 3 stripped of allocations);
//! * **shard batch A/B** — `DaosEngine::execute_batch` parallel vs
//!   forced-serial on a 4-shard engine (≈1.0 on single-core hosts; the
//!   equivalence suite proves the results bit-identical either way).
//!
//! Batched and per-segment must produce identical simulated results
//! (asserted on every sweep cell); the fast path is a pure wall-clock
//! optimization. `ops_simulated` is pinned against drift: the PR 3
//! refactor (inline keys, shared descriptors, seeded CRC caches,
//! sharding) must not move a single virtual-time result.

use std::time::Instant;

use bytes::Bytes;
use ros2_buf::DataPlaneStats;
use ros2_daos::{
    AKey, DKey, DaosCostModel, DaosEngine, Epoch, ObjClass, ObjectId, TargetOp, ValueKind,
};
use ros2_dpu::{DpuTenantSpec, QosLimits};
use ros2_fio::{run_fio, JobSpec, RwMode, WorldSpec};
use ros2_hw::{ClientPlacement, CoreClass, NvmeModel, Transport};
use ros2_nvme::{DataMode, NvmeArray};
use ros2_sim::{BandwidthServer, ResourceStats, SimDuration, SimTime};
use ros2_spdk::BdevLayer;

use ros2_bench::{legacy_cells, legacy_spec, LEGACY_JOBS as JOBS, OPS_SIMULATED_PIN};

const REGION: u64 = 16 << 20;

/// `sweep_wall_ms` recorded by this harness at the PR 2 head (same cell
/// plan, same container class) — the baseline the sharded metadata-path
/// rework is gated against.
const PR2_SWEEP_WALL_MS: f64 = 3_460.2;
/// And the PR 1 figure, kept for the long trajectory.
const PR1_SWEEP_WALL_MS: f64 = 20_568.5;
/// The PR 3 head, for the running trajectory.
const PR3_SWEEP_WALL_MS: f64 = 1_986.9;

fn spec(rw: RwMode, bs: u64, jobs: usize, qd: usize) -> JobSpec {
    legacy_spec(rw, bs, jobs, qd)
}

/// Everything one simulated sweep cell produces.
struct CellResult {
    wall_ms: f64,
    ops: u64,
    stats: ResourceStats,
    batched: u64,
    per_segment: u64,
    gib_per_sec: f64,
    dp: DataPlaneStats,
}

/// Runs one cell; wall time covers world construction + the closed loop
/// (identical work in both wire modes).
fn cell(
    transport: Transport,
    placement: ClientPlacement,
    rw: RwMode,
    bs: u64,
    jobs: usize,
    qd: usize,
    force_per_segment: bool,
) -> CellResult {
    let t0 = Instant::now();
    let mut world = WorldSpec::single(placement)
        .transport(transport)
        .jobs(jobs)
        .region(REGION)
        .mode(DataMode::Null)
        .wire_per_segment(force_per_segment)
        .build_dfs();
    let report = run_fio(&mut world, &spec(rw, bs, jobs, qd));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let wire = world.fabric.wire_traversal_stats();
    let mut stats = world.fabric.resource_stats();
    stats.merge(world.cluster.resource_stats());
    stats.merge(world.client.resource_stats());
    let mut dp = world.fabric.data_plane_stats();
    dp.merge(world.cluster.data_plane_stats());
    CellResult {
        wall_ms,
        ops: report.io.meter.ops(),
        stats,
        batched: wire.batched,
        per_segment: wire.per_segment,
        gib_per_sec: report.gib_per_sec(),
        dp,
    }
}

fn cells(jobs: usize, qd: usize) -> Vec<(Transport, ClientPlacement, RwMode, u64, usize, usize)> {
    legacy_cells(jobs, qd)
}

#[derive(Default)]
struct SweepTotals {
    wall_ms: f64,
    ops: u64,
    stats: ResourceStats,
    batched: u64,
    per_segment: u64,
    dp: DataPlaneStats,
}

impl SweepTotals {
    fn add(&mut self, c: &CellResult) {
        self.wall_ms += c.wall_ms;
        self.ops += c.ops;
        self.stats.merge(c.stats);
        self.batched += c.batched;
        self.per_segment += c.per_segment;
        self.dp.merge(c.dp);
    }
}

/// The contended sweep, A/B'd per cell: each cell runs in both wire modes
/// back to back, order alternating by cell index so clock/allocator drift
/// cancels across the plan. Asserts bit-identical simulated results per
/// cell and returns (batched totals, per-segment totals).
fn ab_sweep(jobs: usize, qd: usize) -> (SweepTotals, SweepTotals) {
    let mut fast = SweepTotals::default();
    let mut slow = SweepTotals::default();
    for (i, &(t, p, rw, bs, j, q)) in cells(jobs, qd).iter().enumerate() {
        let (f, s) = if i % 2 == 0 {
            let f = cell(t, p, rw, bs, j, q, false);
            let s = cell(t, p, rw, bs, j, q, true);
            (f, s)
        } else {
            let s = cell(t, p, rw, bs, j, q, true);
            let f = cell(t, p, rw, bs, j, q, false);
            (f, s)
        };
        assert_eq!(f.ops, s.ops, "cell {i}: op counts diverged between paths");
        assert_eq!(
            f.gib_per_sec, s.gib_per_sec,
            "cell {i}: batched {} GiB/s != per-segment {} GiB/s",
            f.gib_per_sec, s.gib_per_sec
        );
        fast.add(&f);
        slow.add(&s);
    }
    (fast, slow)
}

/// The uncontended pass: one job, queue depth 1 — strictly sequential
/// ops, the regime the tail fast path must own.
fn uncontended_sweep() -> SweepTotals {
    let mut out = SweepTotals::default();
    for &(t, p, rw, bs, j, q) in &cells(1, 1) {
        out.add(&cell(t, p, rw, bs, j, q, false));
    }
    out
}

/// The seed's `Vec`-backed booking core, verbatim (gap scan from
/// `partition_point`, drain-based prune), used as the baseline for the
/// booking-core microcomparison. A second verbatim copy is the grant
/// oracle in `crates/sim/tests/fastpath_equivalence.rs` (`RefBook`); if
/// either copy is ever touched, update both. On the steady-state pattern the drain
/// memmoves the entire span tail on every booking — the O(n²) behaviour
/// the ring-buffer rewrite removes.
mod seed_reference {
    const PRUNE_SLACK_NS: u64 = 500_000_000;

    #[derive(Default)]
    pub struct SeedPipe {
        bytes_per_sec: u64,
        spans: Vec<(u64, u64)>,
        high_water: u64,
    }

    impl SeedPipe {
        pub fn new(bytes_per_sec: u64) -> Self {
            SeedPipe {
                bytes_per_sec,
                ..SeedPipe::default()
            }
        }

        fn earliest(&self, from: u64, dur: u64) -> (u64, usize) {
            let mut idx = self.spans.partition_point(|&(_, end)| end <= from);
            let mut candidate = from;
            while idx < self.spans.len() {
                let (start, end) = self.spans[idx];
                if candidate + dur <= start {
                    return (candidate, idx);
                }
                candidate = candidate.max(end);
                idx += 1;
            }
            (candidate, idx)
        }

        pub fn transmit(&mut self, now: u64, bytes: u64) -> (u64, u64) {
            let dur = (bytes as u128 * 1_000_000_000).div_ceil(self.bytes_per_sec as u128) as u64;
            let (start, idx) = self.earliest(now, dur);
            let end = start + dur;
            let prev = idx > 0 && self.spans[idx - 1].1 == start;
            let next = idx < self.spans.len() && self.spans[idx].0 == end;
            match (prev, next) {
                (true, true) => {
                    self.spans[idx - 1].1 = self.spans[idx].1;
                    self.spans.remove(idx);
                }
                (true, false) => self.spans[idx - 1].1 = end,
                (false, true) => self.spans[idx].0 = start,
                (false, false) => self.spans.insert(idx, (start, end)),
            }
            self.high_water = self.high_water.max(now);
            let cutoff = self.high_water.saturating_sub(PRUNE_SLACK_NS);
            if self.spans.len() >= 64 {
                let keep_from = self.spans.partition_point(|&(_, end)| end < cutoff);
                if keep_from > 0 {
                    self.spans.drain(0..keep_from);
                }
            }
            (start, end)
        }
    }
}

/// Times `bookings` spaced transmissions (each books its own non-merging
/// span, so the live window holds ~25 k spans) on both booking cores and
/// cross-checks every grant via an accumulated checksum (so a mid-stream
/// divergence cannot hide behind a matching final grant). Returns
/// (seed_ms, new_ms).
fn booking_core_microbench(bookings: u64) -> (f64, f64) {
    const RATE: u64 = 1_000_000_000;
    const STEP_NS: u64 = 20_000; // 20 us apart, 1 us busy: spans never merge
    const BYTES: u64 = 1_000;

    let t0 = Instant::now();
    let mut seed = seed_reference::SeedPipe::new(RATE);
    let mut seed_sum = (0u64, 0u64);
    for i in 0..bookings {
        let (start, end) = seed.transmit(i * STEP_NS, BYTES);
        seed_sum = (
            seed_sum.0.wrapping_add(start.rotate_left((i % 63) as u32)),
            seed_sum.1.wrapping_add(end.rotate_left((i % 63) as u32)),
        );
    }
    let seed_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let mut pipe = BandwidthServer::new(RATE);
    let mut sum = (0u64, 0u64);
    for i in 0..bookings {
        let g = pipe.transmit(SimTime::from_nanos(i * STEP_NS), BYTES);
        sum = (
            sum.0
                .wrapping_add(g.start.as_nanos().rotate_left((i % 63) as u32)),
            sum.1
                .wrapping_add(g.finish.as_nanos().rotate_left((i % 63) as u32)),
        );
    }
    let new_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(sum, seed_sum, "booking cores diverged");
    (seed_ms, new_ms)
}

/// Direct A/B of `Fabric::traverse_wire`: a fixed mixed stream — spaced
/// multi-segment transfers (the closed form's design regime: one window
/// instead of ~17 bookings per 1 MiB), spaced single-segment descriptors
/// (the direct path), and contended bursts (the fallback) — through one
/// fabric per wire mode. This is the gated `wire_batched_speedup`: it
/// measures the traversal code itself, so the ~2-4x closed-form win is far
/// above scheduler noise, where the whole-sweep ratio is a ±2 % tie (wire
/// booking is a tiny share of a full simulated op after PR 1-3). Returns
/// (batched_ms, per_segment_ms), best of 3 alternating repetitions.
fn wire_traversal_microbench() -> (f64, f64) {
    use ros2_fabric::{Dir, Fabric, NodeSpec};
    use ros2_hw::{gbps, CpuComplement, NicModel};
    use ros2_verbs::{NodeId, PdId};
    let node = |name: &str| NodeSpec {
        name: name.into(),
        cpu: CpuComplement {
            class: CoreClass::HostX86,
            cores: 48,
        },
        nic: NicModel::connectx6(),
        port_rate: gbps(100),
        mem_budget: 1 << 30,
        dpu_tcp_rx: None,
    };
    let run = |force: bool| -> f64 {
        let mut f = Fabric::new(Transport::Tcp, vec![node("a"), node("b")], 7);
        f.set_force_per_segment(force);
        let conn = f.connect(NodeId(0), NodeId(1), PdId(0), PdId(0)).unwrap();
        let big = ros2_buf::zero_bytes(1 << 20);
        let small = ros2_buf::zero_bytes(4 << 10);
        let t0 = Instant::now();
        // Spaced multi-segment stream (idle pipes: closed form applies).
        for i in 0..20_000u64 {
            f.send(
                SimTime::from_nanos(i * 200_000),
                conn,
                Dir::AtoB,
                big.clone(),
            )
            .unwrap();
        }
        f.reset_timing();
        // Spaced single-segment descriptors (direct path).
        for i in 0..40_000u64 {
            f.send(
                SimTime::from_nanos(i * 50_000),
                conn,
                Dir::AtoB,
                small.clone(),
            )
            .unwrap();
        }
        f.reset_timing();
        // Contended bursts (fallback loop behind the hoisted tail check).
        for i in 0..10_000u64 {
            f.send(
                SimTime::from_nanos(i / 8 * 90_000),
                conn,
                Dir::AtoB,
                big.clone(),
            )
            .unwrap();
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    run(false);
    run(true);
    let (mut fast, mut slow) = (f64::MAX, f64::MAX);
    for rep in 0..3 {
        if rep % 2 == 0 {
            fast = fast.min(run(false));
            slow = slow.min(run(true));
        } else {
            slow = slow.min(run(true));
            fast = fast.min(run(false));
        }
    }
    (fast, slow)
}

/// One host-vs-DPU A/B cell: the same plan through the classic
/// host-placement world and the offloaded world. Simulated (virtual-time)
/// throughput on both sides, so the ratio is deterministic.
struct DpuAbCell {
    transport: Transport,
    rw: RwMode,
    bs: u64,
    host_gib_s: f64,
    dpu_gib_s: f64,
    handoff_us_per_op: f64,
}

const AB_JOBS: usize = 2;
const AB_REGION: u64 = 8 << 20;

fn ab_spec(rw: RwMode, bs: u64) -> JobSpec {
    JobSpec::new(rw, bs, AB_JOBS)
        .iodepth(4)
        .region(AB_REGION)
        .windows(SimDuration::from_millis(20), SimDuration::from_millis(80))
}

/// Runs the single-tenant host-vs-DPU sweep: {rdma, tcp} × {read, write} ×
/// {1 MiB, 4 KiB}. Returns the per-cell results plus the offload counters
/// merged across every DPU arm.
fn host_vs_dpu_sweep() -> (Vec<DpuAbCell>, ros2_dpu::DpuStats) {
    let mut cells = Vec::new();
    let mut offload_totals = ros2_dpu::DpuStats::default();
    for &transport in &[Transport::Rdma, Transport::Tcp] {
        for &rw in &[RwMode::Read, RwMode::Write] {
            for &bs in &[1u64 << 20, 4 << 10] {
                let mut host_world = WorldSpec::single(ClientPlacement::Host)
                    .transport(transport)
                    .jobs(AB_JOBS)
                    .region(AB_REGION)
                    .mode(DataMode::Null)
                    .build_dfs();
                let host = run_fio(&mut host_world, &ab_spec(rw, bs));
                let mut dpu_world = WorldSpec::single(ClientPlacement::Dpu)
                    .transport(transport)
                    .jobs(AB_JOBS)
                    .region(AB_REGION)
                    .mode(DataMode::Null)
                    .offload(vec![DpuTenantSpec::unlimited("fio")])
                    .build_dfs();
                let dpu = run_fio(&mut dpu_world, &ab_spec(rw, bs));
                let s = dpu_world.client.dpu_stats();
                offload_totals.merge(s);
                // Per offloaded op (a serial op pays a submit AND a poll).
                let handoff_us_per_op =
                    s.handoff_wait.as_secs_f64() * 1e6 / s.ops_offloaded.max(1) as f64;
                cells.push(DpuAbCell {
                    transport,
                    rw,
                    bs,
                    host_gib_s: host.gib_per_sec(),
                    dpu_gib_s: dpu.gib_per_sec(),
                    handoff_us_per_op,
                });
            }
        }
    }
    (cells, offload_totals)
}

/// The contended multi-tenant cell: a 64 MiB/s tenant and an unthrottled
/// one share the offloaded client (two jobs each). Returns
/// (capped admitted bytes, greedy admitted bytes, capped throttled ops,
/// capped cumulative throttle wait in ms) over the 0.1 s virtual run.
fn qos_contended_cell() -> (u64, u64, u64, f64) {
    let capped = DpuTenantSpec {
        name: "capped".into(),
        qos: QosLimits {
            ops_per_sec: 1_000_000,
            bytes_per_sec: 64 << 20,
            burst: (1 << 20, 1 << 20),
        },
        rkey_scope: SimDuration::from_secs(30),
    };
    let mut w = WorldSpec::single(ClientPlacement::Dpu)
        .jobs(4)
        .region(AB_REGION)
        .mode(DataMode::Null)
        .offload(vec![capped, DpuTenantSpec::unlimited("greedy")])
        .build_dfs();
    run_fio(
        &mut w,
        &JobSpec::new(RwMode::Write, 1 << 20, 4)
            .iodepth(4)
            .region(AB_REGION)
            .windows(SimDuration::from_millis(20), SimDuration::from_millis(80)),
    );
    let client = w.client.offloaded().expect("offloaded world");
    let capped_ctx = client.tenants().tenant("capped").unwrap();
    let greedy_ctx = client.tenants().tenant("greedy").unwrap();
    (
        capped_ctx.qos.admitted.1,
        greedy_ctx.qos.admitted.1,
        capped_ctx.qos.throttled,
        capped_ctx.qos.throttle_wait.as_secs_f64() * 1e3,
    )
}

fn metadata_engine() -> DaosEngine {
    let bdevs = BdevLayer::new(NvmeArray::new(
        NvmeModel::enterprise_1600(),
        4,
        DataMode::Stored,
    ));
    let mut e = DaosEngine::new(
        "pool0",
        bdevs,
        256 << 20,
        DaosCostModel::default_model(),
        CoreClass::HostX86,
    );
    e.cont_create("c").unwrap();
    e
}

/// Warm per-op wall cost of the engine metadata path: SCM-resident single
/// values through the full update/fetch pipeline (placement hash, inline
/// keys, index probe, media write/read, CRC seed/verify, xstream grant).
/// Returns (update_ns, fetch_ns).
fn metadata_path_microbench(ops: u64) -> (f64, f64) {
    let mut e = metadata_engine();
    let oid = ObjectId::new(ObjClass::Sx, 5);
    let payload = Bytes::from_static(&[0x5Au8; 256]);
    // Warm: touch every dkey once.
    for i in 0..ops {
        let epoch = e.next_epoch("c").unwrap();
        e.update(
            SimTime::ZERO,
            "c",
            oid,
            DKey::from_u64(i % 1024),
            AKey::from_str("v"),
            ValueKind::Single,
            epoch,
            payload.clone(),
        )
        .unwrap();
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let epoch = e.next_epoch("c").unwrap();
        e.update(
            SimTime::ZERO,
            "c",
            oid,
            DKey::from_u64(i % 1024),
            AKey::from_str("v"),
            ValueKind::Single,
            epoch,
            payload.clone(),
        )
        .unwrap();
    }
    let update_ns = t0.elapsed().as_nanos() as f64 / ops as f64;
    let t1 = Instant::now();
    for i in 0..ops {
        e.fetch(
            SimTime::ZERO,
            "c",
            oid,
            &DKey::from_u64(i % 1024),
            &AKey::from_str("v"),
            ValueKind::Single,
            Epoch::LATEST,
            256,
        )
        .unwrap();
    }
    let fetch_ns = t1.elapsed().as_nanos() as f64 / ops as f64;
    (update_ns, fetch_ns)
}

/// A/B of `execute_batch` parallel fan-out vs forced-serial shard walk on
/// a 4-shard engine (update+fetch mix striped over every shard). Returns
/// (serial_ms, parallel_ms) — ≈ equal on single-core hosts, where the
/// rayon shim degrades to the serial walk.
fn shard_batch_microbench(batch_ops: u64, rounds: u64) -> (f64, f64) {
    let run = |force_serial: bool| -> f64 {
        let mut e = metadata_engine();
        e.set_force_serial_batch(force_serial);
        let oid = ObjectId::new(ObjClass::Sx, 9);
        let mut total = 0.0;
        for round in 0..rounds {
            let mut ops = Vec::with_capacity(batch_ops as usize);
            for i in 0..batch_ops / 2 {
                let epoch = e.next_epoch("c").unwrap();
                ops.push(TargetOp::Update {
                    now: SimTime::from_millis(round),
                    oid,
                    dkey: DKey::from_u64(i % 256),
                    akey: AKey::from_str("data"),
                    kind: ValueKind::Array { offset: 0 },
                    epoch,
                    data: Bytes::from_static(&[7u8; 512]),
                });
            }
            for i in 0..batch_ops / 2 {
                ops.push(TargetOp::Fetch {
                    now: SimTime::from_millis(round),
                    oid,
                    dkey: DKey::from_u64(i % 256),
                    akey: AKey::from_str("data"),
                    kind: ValueKind::Array { offset: 0 },
                    epoch: Epoch::LATEST,
                    len: 512,
                });
            }
            let t0 = Instant::now();
            let results = e.execute_batch("c", ops).unwrap();
            total += t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(results.len(), batch_ops as usize);
        }
        total
    };
    // Warm both code paths, then best-of-3 with alternating order (the
    // same drift discipline as the wire A/B).
    run(true);
    run(false);
    let (mut serial, mut parallel) = (f64::MAX, f64::MAX);
    for rep in 0..3 {
        if rep % 2 == 0 {
            serial = serial.min(run(true));
            parallel = parallel.min(run(false));
        } else {
            parallel = parallel.min(run(false));
            serial = serial.min(run(true));
        }
    }
    (serial, parallel)
}

fn main() {
    // Untimed warmup: one full batched pass so the measured passes start
    // with a hot allocator and faulted-in heap (the PR 2 harness measured
    // its first pass cold and booked the warmup cost to the fast path).
    for &(t, p, rw, bs, j, q) in &cells(JOBS, 8) {
        cell(t, p, rw, bs, j, q, false);
    }

    // Contended sweep, per-cell alternating A/B.
    let (fast, slow) = ab_sweep(JOBS, 8);
    let uncontended = uncontended_sweep();

    // PR 4: host-vs-DPU A/B over simulated throughput + the contended
    // multi-tenant QoS cell (both deterministic virtual-time results).
    let (dpu_cells, dpu_totals) = host_vs_dpu_sweep();
    let (qos_capped_bytes, qos_greedy_bytes, qos_throttled, qos_wait_ms) = qos_contended_cell();

    let (seed_ms, new_ms) = booking_core_microbench(150_000);
    let core_speedup = seed_ms / new_ms.max(1e-9);
    let (wire_fast_ms, wire_slow_ms) = wire_traversal_microbench();
    let wire_speedup = wire_slow_ms / wire_fast_ms.max(1e-9);
    let (meta_update_ns, meta_fetch_ns) = metadata_path_microbench(200_000);
    let (shard_serial_ms, shard_parallel_ms) = shard_batch_microbench(4_096, 8);
    let shard_parallel_speedup = shard_serial_ms / shard_parallel_ms.max(1e-9);

    let hit_rate = uncontended.stats.hit_rate();
    let contended_hit_rate = fast.stats.hit_rate();
    let traversal_rate = fast.batched as f64 / (fast.batched + fast.per_segment).max(1) as f64;
    let sweep_batched_speedup = slow.wall_ms / fast.wall_ms.max(1e-9);
    let total_ops = fast.ops + uncontended.ops;

    // Data-plane counters: uncontended (sequential-regime) pass is the
    // headline zero-copy gate; the contended pass is reported alongside.
    let zero_copy_rate = uncontended.dp.zero_copy_rate();
    let zero_copy_rate_contended = fast.dp.zero_copy_rate();
    let mut dp_total = fast.dp;
    dp_total.merge(uncontended.dp);
    let speedup_vs_pr3 = PR3_SWEEP_WALL_MS / fast.wall_ms.max(1e-9);
    let speedup_vs_pr2 = PR2_SWEEP_WALL_MS / fast.wall_ms.max(1e-9);
    let speedup_vs_pr1 = PR1_SWEEP_WALL_MS / fast.wall_ms.max(1e-9);

    // Aggregate host-vs-DPU ratios for the gate: RDMA large-block parity
    // and the RDMA small-I/O gap (the paper's Fig. 5d shape).
    let ratio = |t: Transport, rw: RwMode, bs: u64| {
        let c = dpu_cells
            .iter()
            .find(|c| c.transport == t && c.rw == rw && c.bs == bs)
            .expect("cell exists");
        c.dpu_gib_s / c.host_gib_s.max(1e-12)
    };
    let dpu_rdma_large_ratio = (ratio(Transport::Rdma, RwMode::Read, 1 << 20)
        + ratio(Transport::Rdma, RwMode::Write, 1 << 20))
        / 2.0;
    let dpu_rdma_small_ratio = (ratio(Transport::Rdma, RwMode::Read, 4 << 10)
        + ratio(Transport::Rdma, RwMode::Write, 4 << 10))
        / 2.0;
    let dpu_tcp_read_ratio = ratio(Transport::Tcp, RwMode::Read, 1 << 20);

    println!(
        "fig5-style sweep, {} A/B cells x {JOBS} jobs + {} uncontended cells",
        cells(JOBS, 8).len(),
        cells(1, 1).len()
    );
    println!(
        "  batched pass:     {:9.1} ms wall  ({speedup_vs_pr2:.2}x vs PR2 baseline {PR2_SWEEP_WALL_MS:.1} ms, {speedup_vs_pr1:.2}x vs PR1)",
        fast.wall_ms
    );
    println!(
        "  per-segment pass: {:9.1} ms wall  (sweep-level batched speedup {sweep_batched_speedup:.3}x)",
        slow.wall_ms
    );
    println!(
        "  traverse_wire A/B: batched {wire_fast_ms:.1} ms vs per-segment {wire_slow_ms:.1} ms \
         ({wire_speedup:.2}x, gated >= 1.0)"
    );
    println!("  uncontended pass: {:9.1} ms wall", uncontended.wall_ms);
    println!("  ops simulated:    {total_ops}");
    println!(
        "  booking fast-path hit rate: {:.4} uncontended ({}/{}), {:.4} contended",
        hit_rate, uncontended.stats.fastpath_hits, uncontended.stats.bookings, contended_hit_rate
    );
    println!(
        "  wire traversals batched:    {traversal_rate:.4} ({}/{})",
        fast.batched,
        fast.batched + fast.per_segment
    );
    println!(
        "  zero-copy byte rate:        {zero_copy_rate:.4} sequential ({}/{} bytes), \
         {zero_copy_rate_contended:.4} contended",
        uncontended.dp.bytes_zero_copy,
        uncontended.dp.bytes_zero_copy + uncontended.dp.bytes_copied
    );
    println!(
        "  crc: {} bytes scanned, {} combines, {} cache seeds, hw acceleration {}",
        dp_total.crc_bytes_scanned,
        dp_total.crc_combines,
        dp_total.crc_cache_seeded,
        ros2_buf::hw_acceleration()
    );
    println!(
        "  metadata path: {meta_update_ns:.0} ns/update, {meta_fetch_ns:.0} ns/fetch (warm, SCM single values)"
    );
    println!(
        "  shard batch: serial {shard_serial_ms:.1} ms, parallel {shard_parallel_ms:.1} ms \
         ({shard_parallel_speedup:.2}x; 1.0 expected on single-core hosts)"
    );
    println!(
        "  booking core (150k steady-state bookings): seed {seed_ms:.1} ms -> {new_ms:.1} ms \
         ({core_speedup:.0}x)"
    );
    assert!(
        hit_rate > 0.9,
        "uncontended fast-path hit rate {hit_rate:.4} must exceed 0.9"
    );
    assert!(
        zero_copy_rate > 0.9,
        "sequential zero-copy rate {zero_copy_rate:.4} must exceed 0.9"
    );
    assert!(
        wire_speedup >= 1.0,
        "batched wire traversal must not be slower than per-segment \
         (speedup {wire_speedup:.3}; the PR2 harness recorded 0.82 by \
         measuring its first full pass cold — see the header)"
    );
    println!("host-vs-DPU A/B (simulated GiB/s, host | offloaded):");
    for c in &dpu_cells {
        println!(
            "  {:>4} {:>5} {:>7}: {:>7.3} | {:<7.3} ({:.2}x, handoff {:.1} us/op)",
            c.transport.label(),
            c.rw.label(),
            if c.bs >= 1 << 20 { "1m" } else { "4k" },
            c.host_gib_s,
            c.dpu_gib_s,
            c.dpu_gib_s / c.host_gib_s.max(1e-12),
            c.handoff_us_per_op,
        );
    }
    println!(
        "  rdma ratios: large {dpu_rdma_large_ratio:.3}, small {dpu_rdma_small_ratio:.3}; \
         tcp 1m read ratio {dpu_tcp_read_ratio:.3}"
    );
    println!(
        "  offload totals: {} ops, {} B admitted, {} rkey refreshes, {} B checksummed on-DPU",
        dpu_totals.ops_offloaded,
        dpu_totals.bytes_admitted,
        dpu_totals.rkey_refreshes,
        dpu_totals.crc_bytes,
    );
    println!(
        "  qos contended cell: capped {:.1} MiB admitted ({} throttles, {:.0} ms queued), \
         greedy {:.1} MiB",
        qos_capped_bytes as f64 / (1 << 20) as f64,
        qos_throttled,
        qos_wait_ms,
        qos_greedy_bytes as f64 / (1 << 20) as f64,
    );
    assert_eq!(
        total_ops, OPS_SIMULATED_PIN,
        "the legacy sweep's simulated ops are pinned: the host-placement \
         control arm must stay bit-identical across the offload work"
    );
    // Offload gates (virtual-time, deterministic). RDMA large blocks stay
    // near host parity; the small-I/O gap lands in the paper's 20-40 %
    // band without collapsing; QoS admission measurably shapes the capped
    // tenant while the greedy one runs at data-plane speed.
    assert!(
        dpu_rdma_large_ratio > 0.80,
        "offloaded RDMA large-block throughput must stay near host parity \
         (ratio {dpu_rdma_large_ratio:.3})"
    );
    assert!(
        (0.40..1.0).contains(&dpu_rdma_small_ratio),
        "offloaded RDMA small-I/O must trail the host (ARM cores + handoff) \
         but not collapse (ratio {dpu_rdma_small_ratio:.3})"
    );
    assert!(
        qos_throttled > 0 && qos_capped_bytes < qos_greedy_bytes / 5,
        "QoS admission must shape the capped tenant: capped {qos_capped_bytes} B \
         ({qos_throttled} throttles) vs greedy {qos_greedy_bytes} B"
    );
    let qos_bound = (64u64 << 20) / 10 + (1 << 20) + 8 * (1 << 20);
    assert!(
        qos_capped_bytes <= qos_bound,
        "capped tenant admitted {qos_capped_bytes} B > cap+burst+inflight bound {qos_bound} B"
    );

    let mut ab_json = String::from("[");
    for (i, c) in dpu_cells.iter().enumerate() {
        if i > 0 {
            ab_json.push_str(", ");
        }
        ab_json.push_str(&format!(
            "{{\"transport\": \"{}\", \"rw\": \"{}\", \"bs\": {}, \
             \"host_gib_s\": {:.4}, \"dpu_gib_s\": {:.4}, \"handoff_us_per_op\": {:.2}}}",
            c.transport.label(),
            c.rw.label(),
            c.bs,
            c.host_gib_s,
            c.dpu_gib_s,
            c.handoff_us_per_op,
        ));
    }
    ab_json.push(']');

    let json = format!(
        "{{\n  \"sweep_wall_ms\": {:.1},\n  \"per_segment_wall_ms\": {:.1},\n  \
         \"uncontended_wall_ms\": {:.1},\n  \"baseline_pr3_sweep_wall_ms\": {PR3_SWEEP_WALL_MS:.1},\n  \
         \"baseline_pr2_sweep_wall_ms\": {PR2_SWEEP_WALL_MS:.1},\n  \
         \"baseline_pr1_sweep_wall_ms\": {PR1_SWEEP_WALL_MS:.1},\n  \
         \"speedup_vs_pr3\": {speedup_vs_pr3:.2},\n  \
         \"speedup_vs_pr2\": {speedup_vs_pr2:.2},\n  \"speedup_vs_pr1\": {speedup_vs_pr1:.2},\n  \
         \"wire_batched_speedup\": {wire_speedup:.3},\n  \
         \"sweep_batched_speedup\": {sweep_batched_speedup:.3},\n  \
         \"wire_microbench_batched_ms\": {wire_fast_ms:.1},\n  \
         \"wire_microbench_per_segment_ms\": {wire_slow_ms:.1},\n  \
         \"booking_core_seed_ms\": {seed_ms:.1},\n  \"booking_core_ms\": {new_ms:.1},\n  \
         \"booking_core_speedup\": {core_speedup:.1},\n  \
         \"metadata_update_ns\": {meta_update_ns:.0},\n  \"metadata_fetch_ns\": {meta_fetch_ns:.0},\n  \
         \"shard_batch_serial_ms\": {shard_serial_ms:.1},\n  \
         \"shard_batch_parallel_ms\": {shard_parallel_ms:.1},\n  \
         \"shard_parallel_speedup\": {shard_parallel_speedup:.2},\n  \
         \"ops_simulated\": {total_ops},\n  \"fastpath_hit_rate\": {hit_rate:.4},\n  \
         \"fastpath_hit_rate_contended\": {contended_hit_rate:.4},\n  \
         \"wire_batched_rate\": {traversal_rate:.4},\n  \
         \"zero_copy_read_rate\": {zero_copy_rate:.4},\n  \
         \"zero_copy_rate_contended\": {zero_copy_rate_contended:.4},\n  \
         \"bytes_zero_copy\": {},\n  \"bytes_copied\": {},\n  \
         \"crc_bytes_scanned\": {},\n  \"crc_combines\": {},\n  \
         \"crc_cache_seeded\": {},\n  \
         \"crc_hw_acceleration\": {},\n  \
         \"dpu_rdma_large_ratio\": {dpu_rdma_large_ratio:.4},\n  \
         \"dpu_rdma_small_ratio\": {dpu_rdma_small_ratio:.4},\n  \
         \"dpu_tcp_read_ratio\": {dpu_tcp_read_ratio:.4},\n  \
         \"dpu_ops_offloaded\": {},\n  \
         \"dpu_bytes_admitted\": {},\n  \
         \"dpu_rkey_refreshes\": {},\n  \
         \"dpu_crc_bytes\": {},\n  \
         \"qos_capped_admitted_bytes\": {qos_capped_bytes},\n  \
         \"qos_greedy_admitted_bytes\": {qos_greedy_bytes},\n  \
         \"qos_capped_throttled_ops\": {qos_throttled},\n  \
         \"qos_capped_throttle_wait_ms\": {qos_wait_ms:.1},\n  \
         \"host_vs_dpu\": {ab_json}\n}}\n",
        fast.wall_ms,
        slow.wall_ms,
        uncontended.wall_ms,
        dp_total.bytes_zero_copy,
        dp_total.bytes_copied,
        dp_total.crc_bytes_scanned,
        dp_total.crc_combines,
        dp_total.crc_cache_seeded,
        ros2_buf::hw_acceleration(),
        dpu_totals.ops_offloaded,
        dpu_totals.bytes_admitted,
        dpu_totals.rkey_refreshes,
        dpu_totals.crc_bytes,
    );
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    println!("wrote BENCH_PR4.json");
}
