//! Queue-depth sweep (PR 6): throughput of the pipelined client as
//! `iodepth` grows from 1 to 32 — 4 KiB and 1 MiB random reads, host and
//! DPU arms, one job, RDMA.
//!
//! With the submission/completion ring on, the client books only the
//! submission share of its per-op CPU on the job core and carries the
//! completion share as overlappable latency — so small-I/O throughput
//! must scale with QD until the client core (host) or the DPU ARM core
//! (offloaded) saturates. The expected shape, asserted as gates and
//! recorded in `BENCH_PR6.json`:
//!
//! * **scaling** — host 4 KiB throughput grows monotonically from QD 1
//!   to QD 8 and QD 8 is at least `QD_SCALING_FLOOR`× QD 1 (the driver's
//!   closed loop keeps `iodepth` ops in flight; nothing in the client may
//!   serialize them below that);
//! * **offload gap** — the DPU arm's small-I/O ratio at deep QD must
//!   beat the pre-pipeline 0.41× saturated ratio: the ring moves the
//!   ARM's completion overhead off the critical path, closing toward the
//!   paper's parity band;
//! * **large-I/O sanity** — at 1 MiB both arms ride the wire/drive, so
//!   deep-QD ratios stay near 1 and QD cannot push either arm past the
//!   fabric;
//! * **no regression of the control arm** — the legacy sweeps (ring off)
//!   must still simulate exactly `OPS_SIMULATED_PIN` ops (595716, pinned
//!   since PR 3).

use ros2_bench::{legacy_sweep_ops, OPS_SIMULATED_PIN};
use ros2_dpu::DpuTenantSpec;
use ros2_fio::{run_fio, JobSpec, RwMode, WorldSpec};
use ros2_hw::ClientPlacement;
use ros2_nvme::DataMode;
use ros2_sim::SimDuration;

/// Queue-depth axis of the sweep.
const DEPTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Block sizes: the small-I/O regime the ring exists for, and a
/// wire-bound control.
const BLOCKS: [u64; 2] = [4096, 1 << 20];
const JOBS: usize = 1;
const REGION: u64 = 16 << 20;

/// QD 8 must deliver at least this multiple of QD 1 on the uncontended
/// host arm (4 KiB). The measured value is 8.0× (perfect overlap until
/// the client core saturates); 2.0 is the regression floor.
const QD_SCALING_FLOOR: f64 = 2.0;

fn qd_spec(bs: u64, qd: usize) -> JobSpec {
    JobSpec::new(RwMode::RandRead, bs, JOBS)
        .iodepth(qd)
        .region(REGION)
        .windows(SimDuration::from_millis(50), SimDuration::from_millis(150))
}

/// One sweep cell: (host GiB/s, dpu GiB/s), ring on, zero tolerated
/// errors.
fn qd_cell(bs: u64, qd: usize) -> (f64, f64) {
    let spec = qd_spec(bs, qd);
    let mut host = WorldSpec::single(ClientPlacement::Host)
        .jobs(JOBS)
        .region(REGION)
        .mode(DataMode::Null)
        .build_dfs();
    host.set_pipelined(true);
    let h = run_fio(&mut host, &spec);
    assert_eq!(h.io.errors.get(), 0, "host arm bs={bs} qd={qd} errored");

    let mut dpu = WorldSpec::single(ClientPlacement::Dpu)
        .jobs(JOBS)
        .region(REGION)
        .mode(DataMode::Null)
        .offload(vec![DpuTenantSpec::unlimited("fio")])
        .build_dfs();
    dpu.set_pipelined(true);
    let d = run_fio(&mut dpu, &spec);
    assert_eq!(d.io.errors.get(), 0, "dpu arm bs={bs} qd={qd} errored");
    (h.gib_per_sec(), d.gib_per_sec())
}

fn main() {
    println!("queue-depth sweep: QD {DEPTHS:?}, bs {BLOCKS:?}, RandRead, {JOBS} job, ring on");
    // host[bs][qd], dpu[bs][qd] in axis order.
    let mut host = Vec::new();
    let mut dpu = Vec::new();
    for &bs in &BLOCKS {
        let mut hrow = Vec::new();
        let mut drow = Vec::new();
        for &qd in &DEPTHS {
            let (h, d) = qd_cell(bs, qd);
            println!(
                "  bs={bs:>7} qd={qd:>2}  host {:>8.1} MiB/s  dpu {:>8.1} MiB/s  ratio {:.3}",
                h * 1024.0,
                d * 1024.0,
                d / h.max(1e-12)
            );
            hrow.push(h);
            drow.push(d);
        }
        host.push(hrow);
        dpu.push(drow);
    }

    let qd_scaling = host[0][3] / host[0][0].max(1e-12); // 4 KiB QD8 / QD1
    let ratio_at = |qd_idx: usize| dpu[0][qd_idx] / host[0][qd_idx].max(1e-12);
    let (r_qd1, r_qd8, r_qd32) = (ratio_at(0), ratio_at(3), ratio_at(5));
    println!("  host 4 KiB QD8/QD1: {qd_scaling:.2}x");
    println!("  dpu small-I/O ratio: qd1 {r_qd1:.3}, qd8 {r_qd8:.3}, qd32 {r_qd32:.3}");

    println!("re-playing the legacy sweeps (ring off) for the ops pin...");
    let legacy_ops = legacy_sweep_ops();
    println!("  legacy sweep ops: {legacy_ops} (pin {OPS_SIMULATED_PIN})");

    // ---- gates (all virtual-time, deterministic) ----
    for w in host[0][..4].windows(2) {
        assert!(
            w[1] > w[0] * 1.05,
            "host 4 KiB throughput must scale monotonically QD1->8: {:?}",
            host[0]
        );
    }
    assert!(
        qd_scaling >= QD_SCALING_FLOOR,
        "host 4 KiB QD8 must be >= {QD_SCALING_FLOOR}x QD1 (got {qd_scaling:.2}x) — \
         something serialized the ring"
    );
    assert!(
        r_qd32 > 0.50,
        "the pipelined DPU arm must beat the pre-pipeline 0.41x saturated \
         small-I/O ratio (got {r_qd32:.3})"
    );
    assert!(
        r_qd1 > 0.80,
        "at QD1 the handoff-dominated DPU arm stays near the host \
         (got {r_qd1:.3})"
    );
    for (&h, &d) in host[1].iter().zip(&dpu[1]) {
        assert!(
            d / h.max(1e-12) > 0.85,
            "1 MiB blocks are wire-bound on both arms: host {h:.2} dpu {d:.2} GiB/s"
        );
    }
    assert_eq!(
        legacy_ops, OPS_SIMULATED_PIN,
        "the ring is opt-in: the legacy sweeps must stay bit-identical"
    );

    let mut cells_json = String::from("[");
    let mut first = true;
    for (bi, &bs) in BLOCKS.iter().enumerate() {
        for (qi, &qd) in DEPTHS.iter().enumerate() {
            if !first {
                cells_json.push_str(", ");
            }
            first = false;
            cells_json.push_str(&format!(
                "{{\"bs\": {bs}, \"qd\": {qd}, \"host_gib_s\": {:.4}, \
                 \"dpu_gib_s\": {:.4}}}",
                host[bi][qi], dpu[bi][qi]
            ));
        }
    }
    cells_json.push(']');

    let json = format!(
        "{{\n  \"qd_sweep\": {cells_json},\n  \
         \"qd_scaling_host_4k\": {qd_scaling:.4},\n  \
         \"dpu_small_ratio_qd1\": {r_qd1:.4},\n  \
         \"dpu_small_ratio_qd8\": {r_qd8:.4},\n  \
         \"dpu_small_ratio_qd32\": {r_qd32:.4},\n  \
         \"qd_failed_ops\": 0,\n  \
         \"ops_simulated\": {legacy_ops}\n}}\n"
    );
    std::fs::write("BENCH_PR6.json", &json).expect("write BENCH_PR6.json");
    println!("wrote BENCH_PR6.json");
}
