//! **Ablation X2**: what do the DPU-resident services cost? (§2.3, §5:
//! the offload "still delivers isolation and multi-tenant control" — this
//! harness quantifies the data-path price of QoS enforcement and inline
//! encryption on the BlueField-3.)

use bytes::Bytes;
use ros2_bench::print_table;
use ros2_core::{Ros2Config, Ros2System};
use ros2_dpu::{InlineService, QosLimits};
use ros2_nvme::DataMode;

/// Measures mean per-op write latency and effective throughput for one
/// configuration (64 sequential 1 MiB writes; the synchronous API runs at
/// queue depth 1, so latency is the primary signal).
fn measure(service: InlineService, qos: QosLimits) -> (f64, f64) {
    let mut sys = Ros2System::launch(Ros2Config {
        inline_service: service,
        qos,
        ssds: 4,
        jobs: 8,
        data_mode: DataMode::Null,
        ..Ros2Config::default()
    })
    .unwrap();
    let mut f = sys.create("/ablate.bin").unwrap().value;
    let t0 = sys.now();
    let n: u64 = 64;
    let mut lat_sum = 0.0;
    for i in 0..n {
        let w = sys
            .write(&mut f, i * (1 << 20), Bytes::from(vec![0u8; 1 << 20]))
            .unwrap();
        lat_sum += w.latency.as_secs_f64();
    }
    let elapsed = sys.now().saturating_since(t0);
    let bw = (n * (1 << 20)) as f64 / elapsed.as_secs_f64() / (1u64 << 30) as f64;
    (lat_sum * 1e6 / n as f64, bw)
}

fn main() {
    let unlimited = QosLimits::unlimited();
    // A cap chosen *below* the QD-1 achievable rate so enforcement is
    // visible: 100 MiB/s.
    let limited = QosLimits {
        ops_per_sec: 2_000,
        bytes_per_sec: 100 << 20,
        burst: (16, 8 << 20),
    };

    let configs = [
        (
            "baseline (no isolation services)",
            InlineService::None,
            unlimited,
        ),
        ("inline crypto", InlineService::Crypto, unlimited),
        ("QoS 100 MiB/s cap", InlineService::None, limited),
        ("crypto + QoS cap", InlineService::Crypto, limited),
    ];

    let header = vec![
        "configuration".to_string(),
        "mean write latency (us)".to_string(),
        "effective BW (GiB/s)".to_string(),
    ];
    let (base_lat, _) = measure(InlineService::None, unlimited);
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(label, svc, qos)| {
            let (lat, bw) = measure(*svc, *qos);
            vec![
                label.to_string(),
                format!(
                    "{lat:8.1}  ({:+.2}% vs baseline)",
                    (lat / base_lat - 1.0) * 100.0
                ),
                format!("{bw:6.2}"),
            ]
        })
        .collect();
    print_table(
        "Ablation: DPU isolation & inline-service overhead (sequential writes, DPU client, RDMA, 4 SSDs)",
        &header,
        &rows,
    );
    println!(
        "\nExpected shape: inline crypto adds under ~1% latency per 1 MiB op (the \
         fixed-function engine runs at ~50 GB/s); a 100 MiB/s QoS cap clamps effective \
         bandwidth at exactly its configured rate while leaving per-op latency intact; \
         combined they compose. All enforcement happens on the DPU with zero host \
         involvement."
    );
}
