//! **Figure 5**: end-to-end DAOS/DFS through FIO — TCP vs RDMA, client on
//! the server-grade host vs offloaded to the BlueField-3, 1 vs 4 NVMe SSDs.
//! Left tables: 1 MiB throughput (GiB/s). Right tables: 4 KiB IOPS.
//! Row labels follow the paper: R = read, W = write, RR = random read,
//! RW = random write.

use rayon::prelude::*;
use ros2_bench::{print_table, spec};
use ros2_fio::{run_fio, RwMode, WorldSpec};
use ros2_hw::{ClientPlacement, Transport};
use ros2_nvme::DataMode;

const JOBS: usize = 16;
const REGION: u64 = 256 << 20;

fn table(transport: Transport, bs: u64) -> Vec<Vec<String>> {
    let cells: Vec<((usize, usize), String)> = [ClientPlacement::Host, ClientPlacement::Dpu]
        .iter()
        .enumerate()
        .flat_map(|(pi, &placement)| {
            RwMode::ALL
                .iter()
                .enumerate()
                .flat_map(move |(ri, &rw)| {
                    [(1usize, 0usize), (4, 1)]
                        .iter()
                        .map(move |&(ssds, si)| ((pi * 4 + ri, 1 + si), (placement, rw, ssds)))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(cell, (placement, rw, ssds))| {
            let mut world = WorldSpec::single(placement)
                .transport(transport)
                .ssds(ssds)
                .jobs(JOBS)
                .region(REGION)
                .mode(DataMode::Null)
                .build_dfs();
            let report = run_fio(&mut world, &spec(rw, bs, JOBS, REGION));
            let text = if bs >= 1 << 20 {
                format!("{:6.2}", report.gib_per_sec())
            } else {
                format!("{:6.0}", report.kiops())
            };
            (cell, text)
        })
        .collect();

    let mut rows: Vec<Vec<String>> = (0..8)
        .map(|i| {
            let placement = if i < 4 { "CPU" } else { "DPU" };
            let rw = RwMode::ALL[i % 4];
            vec![
                format!("{placement} {}", rw.short()),
                String::new(),
                String::new(),
            ]
        })
        .collect();
    for ((row, col), text) in cells {
        rows[row][col] = text;
    }
    rows
}

fn main() {
    let header: Vec<String> = ["client / workload", "1 SSD", "4 SSDs"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    print_table(
        "Fig. 5a: DFS TCP 1M — throughput (GiB/s)",
        &header,
        &table(Transport::Tcp, 1 << 20),
    );
    print_table(
        "Fig. 5b: DFS RDMA 1M — throughput (GiB/s)",
        &header,
        &table(Transport::Rdma, 1 << 20),
    );
    print_table(
        "Fig. 5c: DFS TCP 4K — IOPS (K)",
        &header,
        &table(Transport::Tcp, 4096),
    );
    print_table(
        "Fig. 5d: DFS RDMA 4K — IOPS (K)",
        &header,
        &table(Transport::Rdma, 4096),
    );

    println!(
        "\nPaper shape targets: host TCP ~5-6 GiB/s (1 SSD) and ~10 GiB/s (4 SSDs, \
         link-capped); DPU TCP reads cap at ~1.6-3.1 GiB/s (receive-path bottleneck) while \
         DPU TCP writes still approach ~10 GiB/s with 4 SSDs (good TX, weak RX); DPU 4 KiB \
         TCP tops out near ~0.18-0.23 M IOPS. With RDMA the DPU matches the host at 1 MiB \
         for both drive counts, and at 4 KiB improves >=2x over DPU TCP while trailing the \
         host CPU by roughly 20-40%."
    );
}
