//! # ros2-bench — harnesses that regenerate every table and figure
//!
//! One binary per paper artifact (see `DESIGN.md` §3 for the index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_gpu` | Table 1 + the §2.1 ingest model |
//! | `fig3_local_fio` | Fig. 3 local io_uring baselines |
//! | `fig4_remote_spdk` | Fig. 4 remote SPDK heatmaps |
//! | `fig5_dfs` | Fig. 5 end-to-end DFS, host vs DPU |
//! | `ablation_rendezvous` | §3.2 eager/rendezvous threshold |
//! | `ablation_isolation` | §2.3/§5 tenancy & inline-crypto overhead |
//! | `ablation_gpudirect` | §3.5 DPU-DRAM staging vs GPUDirect |
//!
//! Sweep points are independent deterministic simulations; harnesses run
//! them in parallel with rayon (each point builds its own world).

#![warn(missing_docs)]

use ros2_fio::{run_fio, FioReport, JobSpec, RwMode, WorldSpec};
use ros2_hw::{ClientPlacement, Transport};
use ros2_nvme::DataMode;
use ros2_sim::SimDuration;

/// Standard measurement windows used by all harnesses (ramp, runtime).
pub fn windows() -> (SimDuration, SimDuration) {
    (SimDuration::from_millis(100), SimDuration::from_millis(300))
}

/// The legacy perf-regression sweep's job count.
pub const LEGACY_JOBS: usize = 4;
/// The legacy sweep's per-job region.
pub const LEGACY_REGION: u64 = 16 << 20;
/// The legacy sweep's total simulated ops — pinned since PR 3. Every
/// harness that replays the plan must see exactly this count: the
/// single-engine host-placement control arm stays bit-identical across
/// the offload (PR 4) and cluster (PR 5) refactors.
pub const OPS_SIMULATED_PIN: u64 = 595_716;

/// The legacy sweep's job spec for one cell.
pub fn legacy_spec(rw: RwMode, bs: u64, jobs: usize, qd: usize) -> JobSpec {
    JobSpec::new(rw, bs, jobs)
        .iodepth(qd)
        .region(LEGACY_REGION)
        .windows(SimDuration::from_millis(50), SimDuration::from_millis(150))
}

/// The legacy sweep's cell plan — {rdma, tcp} × {host, dpu} × all four
/// patterns × {1 MiB, 4 KiB}. Shared between `perf_regression` (which
/// times it) and `fig_scaleout` (which re-plays it to assert the ops
/// pin), so the plans cannot drift apart.
pub fn legacy_cells(
    jobs: usize,
    qd: usize,
) -> Vec<(Transport, ClientPlacement, RwMode, u64, usize, usize)> {
    let mut out = Vec::new();
    for &t in &[Transport::Rdma, Transport::Tcp] {
        for &p in &[ClientPlacement::Host, ClientPlacement::Dpu] {
            for &rw in RwMode::ALL.iter() {
                for bs in [1u64 << 20, 4 << 10] {
                    out.push((t, p, rw, bs, jobs, qd));
                }
            }
        }
    }
    out
}

/// Re-plays the legacy sweep (contended QD 8 plan plus the uncontended
/// QD 1 pass) and returns the total simulated op count — the value pinned
/// at [`OPS_SIMULATED_PIN`]. Deterministic: virtual-time results only.
pub fn legacy_sweep_ops() -> u64 {
    let mut total = 0u64;
    for plan in [legacy_cells(LEGACY_JOBS, 8), legacy_cells(1, 1)] {
        for (t, p, rw, bs, jobs, qd) in plan {
            let mut world = WorldSpec::single(p)
                .transport(t)
                .jobs(jobs)
                .region(LEGACY_REGION)
                .mode(DataMode::Null)
                .build_dfs();
            let report = run_fio(&mut world, &legacy_spec(rw, bs, jobs, qd));
            total += report.io.meter.ops();
        }
    }
    total
}

/// The job-count axis of Fig. 3 and the core axis of Fig. 4.
pub const SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Builds a figure-standard spec.
pub fn spec(rw: RwMode, bs: u64, jobs: usize, region: u64) -> JobSpec {
    let (ramp, runtime) = windows();
    JobSpec::new(rw, bs, jobs)
        .region(region)
        .windows(ramp, runtime)
}

/// Formats a bandwidth cell.
pub fn gib(r: &FioReport) -> String {
    format!("{:6.2}", r.gib_per_sec())
}

/// Formats a kIOPS cell.
pub fn kiops(r: &FioReport) -> String {
    format!("{:6.0}", r.kiops())
}

/// Prints a Markdown-ish table: header row, then rows of cells.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n### {title}");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_axes() {
        assert_eq!(SWEEP, [1, 2, 4, 8, 16]);
    }

    #[test]
    fn spec_builder_applies_windows() {
        let s = spec(RwMode::Read, 4096, 4, 1 << 30);
        assert_eq!(s.ramp, windows().0);
        assert_eq!(s.runtime, windows().1);
        assert_eq!(s.numjobs, 4);
    }
}
