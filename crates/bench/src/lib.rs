//! # ros2-bench — harnesses that regenerate every table and figure
//!
//! One binary per paper artifact (see `DESIGN.md` §3 for the index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_gpu` | Table 1 + the §2.1 ingest model |
//! | `fig3_local_fio` | Fig. 3 local io_uring baselines |
//! | `fig4_remote_spdk` | Fig. 4 remote SPDK heatmaps |
//! | `fig5_dfs` | Fig. 5 end-to-end DFS, host vs DPU |
//! | `ablation_rendezvous` | §3.2 eager/rendezvous threshold |
//! | `ablation_isolation` | §2.3/§5 tenancy & inline-crypto overhead |
//! | `ablation_gpudirect` | §3.5 DPU-DRAM staging vs GPUDirect |
//!
//! Sweep points are independent deterministic simulations; harnesses run
//! them in parallel with rayon (each point builds its own world).

#![warn(missing_docs)]

use ros2_fio::{FioReport, JobSpec, RwMode};
use ros2_sim::SimDuration;

/// Standard measurement windows used by all harnesses (ramp, runtime).
pub fn windows() -> (SimDuration, SimDuration) {
    (SimDuration::from_millis(100), SimDuration::from_millis(300))
}

/// The job-count axis of Fig. 3 and the core axis of Fig. 4.
pub const SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Builds a figure-standard spec.
pub fn spec(rw: RwMode, bs: u64, jobs: usize, region: u64) -> JobSpec {
    let (ramp, runtime) = windows();
    JobSpec::new(rw, bs, jobs)
        .region(region)
        .windows(ramp, runtime)
}

/// Formats a bandwidth cell.
pub fn gib(r: &FioReport) -> String {
    format!("{:6.2}", r.gib_per_sec())
}

/// Formats a kIOPS cell.
pub fn kiops(r: &FioReport) -> String {
    format!("{:6.0}", r.kiops())
}

/// Prints a Markdown-ish table: header row, then rows of cells.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n### {title}");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_axes() {
        assert_eq!(SWEEP, [1, 2, 4, 8, 16]);
    }

    #[test]
    fn spec_builder_applies_windows() {
        let s = spec(RwMode::Read, 4096, 4, 1 << 30);
        assert_eq!(s.ramp, windows().0);
        assert_eq!(s.runtime, windows().1);
        assert_eq!(s.numjobs, 4);
    }
}
