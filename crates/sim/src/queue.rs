//! The deterministic event queue at the heart of every ROS2 world.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the same
//! instant fire in the order they were pushed, so a simulation replay with the
//! same inputs is bit-identical regardless of platform or allocator behaviour.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed so that the std max-heap yields the *earliest* entry first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with a monotonically advancing clock.
///
/// `EventQueue` is the only scheduler in a ROS2 world: engines return
/// `(SimTime, Event)` pairs and the world pushes them here, then drains in
/// order. Scheduling an event in the past is a model bug; the queue clamps
/// it to `now` and counts the violation so tests can assert none occurred.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    past_schedules: u64,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            past_schedules: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// The current simulated instant (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `at`. Events in the past are clamped to
    /// `now` (and recorded — see [`EventQueue::past_schedules`]).
    pub fn push(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.past_schedules += 1;
            self.now
        } else {
            at
        };
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.pushed += 1;
    }

    /// Schedules a batch of `(time, event)` pairs in order.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = (SimTime, E)>) {
        for (at, ev) in events {
            self.push(at, ev);
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// How many events were scheduled in the past and clamped. A correct
    /// model keeps this at zero.
    pub fn past_schedules(&self) -> u64 {
        self.past_schedules
    }

    /// Total events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "later");
        q.pop();
        q.push(SimTime::from_micros(3), "past");
        assert_eq!(q.past_schedules(), 1);
        let (at, ev) = q.pop().unwrap();
        assert_eq!(ev, "past");
        assert_eq!(at, SimTime::from_micros(10));
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut q = EventQueue::new();
        q.push_all((0..5).map(|i| (SimTime::from_nanos(i), i)));
        assert_eq!(q.total_pushed(), 5);
        assert_eq!(q.len(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.total_popped(), 5);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
