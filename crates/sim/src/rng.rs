//! Deterministic pseudo-random numbers for workloads and models.
//!
//! ROS2 uses its own xoshiro256** implementation rather than an external
//! generator so that simulation replays stay bit-identical across dependency
//! upgrades. Every component derives its stream from the scenario seed via
//! [`SimRng::fork`], so adding a component never perturbs the draws seen by
//! existing ones.

/// A deterministic xoshiro256** PRNG with workload-oriented helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Forking is stable: `(seed, stream)` fully determines the child.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the label through SplitMix64 so adjacent labels diverge.
        let mut s = self.state[0] ^ stream.wrapping_mul(0xA24BAED4963EE407);
        SimRng::new(splitmix64(&mut s))
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform draw in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponentially distributed duration with the given mean, in
    /// nanoseconds (for open-loop arrival processes).
    pub fn exp_ns(&mut self, mean_ns: f64) -> u64 {
        let u = self.f64().max(1e-12);
        (-mean_ns * u.ln()).round().max(0.0) as u64
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Fills a buffer with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A Zipf-distributed sampler over `{0, .., n-1}` with skew `theta`.
///
/// Used by workload generators for hot-spot access patterns (e.g. dataloader
/// shard popularity). Precomputes the harmonic normalizer; sampling is O(1)
/// via the rejection-inversion bound of Gray et al.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` in `[0, 1)`.
    /// `theta = 0` is uniform; `theta -> 1` is heavily skewed.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation beyond 10^6 keeps
        // construction O(1) for the billion-key domains used in tests.
        if n <= 1_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=1_000_000u64)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            let tail =
                ((n as f64).powf(1.0 - theta) - 1_000_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draws the next item (0-based rank; 0 is the hottest).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64 * spread) as u64).min(self.n - 1)
    }

    /// The number of items in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The harmonic normalizer over two elements (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c1_again = root.fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exp_ns(1000.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((900.0..1100.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SimRng::new(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zipf_skews_toward_zero() {
        let mut rng = SimRng::new(9);
        let z = Zipf::new(1000, 0.9);
        let mut hot = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        // With theta=0.9 the top-10 of 1000 should get far more than 1 %.
        assert!(hot > n / 10, "hot draws: {hot}");
    }

    #[test]
    fn zipf_uniformish_at_zero_theta() {
        let mut rng = SimRng::new(10);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.6, "counts {counts:?}");
    }
}
