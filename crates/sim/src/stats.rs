//! Measurement instruments: counters, latency histograms, throughput meters.
//!
//! These mirror what FIO reports — bandwidth, IOPS, and latency percentiles —
//! and are shared by every benchmark harness in the workspace. The histogram
//! is HDR-style (logarithmic majors with linear sub-buckets) so tail
//! percentiles stay accurate across nine orders of magnitude without
//! unbounded memory.

use crate::time::{SimDuration, SimTime};

/// Number of linear sub-buckets per power-of-two major bucket.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// A latency histogram with ~3 % relative error per recorded value.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64 * SUB_BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn index(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let major = 63 - ns.leading_zeros();
        let shift = major - SUB_BITS;
        let sub = ((ns >> shift) as usize) & (SUB_BUCKETS - 1);
        ((major - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    fn bucket_floor(idx: usize) -> u64 {
        let major = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if major == 0 {
            sub
        } else {
            let shift = (major - 1) as u32;
            ((SUB_BUCKETS as u64) << shift) + (sub << shift)
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        let idx = Self::index(ns).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all samples.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.total_ns / self.count as u128) as u64)
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The `p`-quantile (e.g. `0.99` for p99), by bucket lower bound.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_nanos(Self::bucket_floor(idx).max(self.min_ns));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Accumulates operation/byte totals over an explicit measurement window,
/// excluding warmup — the standard FIO ramp-then-measure discipline.
#[derive(Clone, Debug, Default)]
pub struct ThroughputMeter {
    window_start: Option<SimTime>,
    window_end: Option<SimTime>,
    ops: u64,
    bytes: u64,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the measurement window (ends warmup).
    pub fn start(&mut self, now: SimTime) {
        self.window_start = Some(now);
    }

    /// Closes the measurement window.
    pub fn stop(&mut self, now: SimTime) {
        self.window_end = Some(now);
    }

    /// Records one completed operation of `bytes` at `now`.
    /// Samples outside the open window are ignored.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        if let Some(start) = self.window_start {
            if now < start {
                return;
            }
            if let Some(end) = self.window_end {
                if now > end {
                    return;
                }
            }
            self.ops += 1;
            self.bytes += bytes;
        }
    }

    /// Operations recorded in the window.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes recorded in the window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The window length, if both edges are set.
    pub fn elapsed(&self) -> Option<SimDuration> {
        Some(self.window_end?.saturating_since(self.window_start?))
    }

    /// Operations per second over the window.
    pub fn ops_per_sec(&self) -> f64 {
        match self.elapsed() {
            Some(e) if e > SimDuration::ZERO => self.ops as f64 / e.as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Bytes per second over the window.
    pub fn bytes_per_sec(&self) -> f64 {
        match self.elapsed() {
            Some(e) if e > SimDuration::ZERO => self.bytes as f64 / e.as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Throughput in GiB/s over the window.
    pub fn gib_per_sec(&self) -> f64 {
        self.bytes_per_sec() / (1u64 << 30) as f64
    }
}

/// A labelled monotone counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }
    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A complete per-run I/O report: what FIO would print for one job set.
#[derive(Clone, Debug, Default)]
pub struct IoReport {
    /// Completed-operation meter over the measurement window.
    pub meter: ThroughputMeter,
    /// End-to-end latency distribution (submit → completion).
    pub latency: LatencyHistogram,
    /// Operations that failed (I/O errors, permission denials).
    pub errors: Counter,
}

impl IoReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful operation.
    pub fn success(&mut self, now: SimTime, bytes: u64, latency: SimDuration) {
        self.meter.record(now, bytes);
        self.latency.record(latency);
    }

    /// Records a failed operation.
    pub fn failure(&mut self) {
        self.errors.inc();
    }

    /// IOPS over the measurement window.
    pub fn iops(&self) -> f64 {
        self.meter.ops_per_sec()
    }

    /// Bandwidth in GiB/s over the measurement window.
    pub fn gib_per_sec(&self) -> f64 {
        self.meter.gib_per_sec()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "bw={:.2} GiB/s iops={:.0} lat(mean={} p50={} p99={} max={}) errs={}",
            self.gib_per_sec(),
            self.iops(),
            self.latency.mean(),
            self.latency.percentile(0.50),
            self.latency.percentile(0.99),
            self.latency.max(),
            self.errors.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_order() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!(p50 < p99);
        // ~3 % relative accuracy.
        let p50_us = p50.as_nanos() as f64 / 1000.0;
        assert!((470.0..=530.0).contains(&p50_us), "p50 {p50_us}us");
        let p99_us = p99.as_nanos() as f64 / 1000.0;
        assert!((930.0..=1000.0).contains(&p99_us), "p99 {p99_us}us");
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_micros(30));
        assert_eq!(h.mean(), SimDuration::from_micros(20));
        assert_eq!(h.min(), SimDuration::from_micros(10));
        assert_eq!(h.max(), SimDuration::from_micros(30));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(5));
        b.record(SimDuration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), SimDuration::from_micros(5));
        assert_eq!(a.max(), SimDuration::from_micros(500));
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0) >= SimDuration::from_secs(3000));
    }

    #[test]
    fn meter_ignores_warmup_and_cooldown() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_millis(1), 100); // before start: dropped
        m.start(SimTime::from_millis(10));
        m.record(SimTime::from_millis(20), 4096);
        m.record(SimTime::from_millis(30), 4096);
        m.stop(SimTime::from_millis(110));
        m.record(SimTime::from_millis(120), 100); // after stop: dropped
        assert_eq!(m.ops(), 2);
        assert_eq!(m.bytes(), 8192);
        let iops = m.ops_per_sec();
        assert!((iops - 20.0).abs() < 1e-6, "iops {iops}");
    }

    #[test]
    fn meter_gib_conversion() {
        let mut m = ThroughputMeter::new();
        m.start(SimTime::ZERO);
        m.record(SimTime::from_millis(500), 1 << 30);
        m.stop(SimTime::from_secs(1));
        assert!((m.gib_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_summarizes() {
        let mut r = IoReport::new();
        r.meter.start(SimTime::ZERO);
        r.success(SimTime::from_millis(1), 4096, SimDuration::from_micros(80));
        r.failure();
        r.meter.stop(SimTime::from_secs(1));
        assert_eq!(r.errors.get(), 1);
        assert!(r.summary().contains("errs=1"));
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
