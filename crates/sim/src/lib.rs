//! # ros2-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the ROS2 reproduction: virtual time, a deterministic
//! event queue, queueing-resource primitives, seeded randomness, and the
//! measurement instruments shared by every benchmark harness.
//!
//! ## Design
//!
//! ROS2 worlds are *compositions of pure state machines*. Engine crates
//! (NVMe, fabric, DAOS, …) never schedule events themselves; they take the
//! current [`SimTime`] plus an input and return timed outputs, computing
//! service windows with the resource primitives in [`resources`]. A
//! deployment "world" owns one [`EventQueue`] and routes outputs between
//! engines. Two properties fall out of this structure:
//!
//! * **Determinism** — ties in the queue break by insertion order, all
//!   randomness flows from one scenario seed through [`SimRng::fork`], and
//!   timing math is integer-only. Identical seeds replay bit-identically.
//! * **Speed** — nothing ticks. Queueing, backpressure, and saturation
//!   emerge from closed-loop workloads meeting finite-rate resources, so a
//!   multi-gigabyte-per-second sweep point simulates in milliseconds.
//!
//! ## Example
//!
//! ```
//! use ros2_sim::{EventQueue, SimTime, SimDuration, BandwidthServer};
//!
//! // A 1 GB/s link carrying two back-to-back 1 MB messages.
//! let mut link = BandwidthServer::new(1_000_000_000);
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! let g1 = link.transmit(SimTime::ZERO, 1_000_000);
//! let g2 = link.transmit(SimTime::ZERO, 1_000_000);
//! queue.push(g1.finish, "first delivered");
//! queue.push(g2.finish, "second delivered");
//! let (t, what) = queue.pop().unwrap();
//! assert_eq!(what, "first delivered");
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(1));
//! ```

#![warn(missing_docs)]

pub mod lru;
pub mod queue;
pub mod resources;
pub mod rng;
pub mod stats;
pub mod time;

pub use lru::DetLru;
pub use queue::EventQueue;
pub use resources::{
    BandwidthServer, Grant, LatencyPipe, QosLane, QosLimits, ResourceStats, ServerPool, TokenBucket,
};
pub use rng::{SimRng, Zipf};
pub use stats::{Counter, IoReport, LatencyHistogram, ThroughputMeter};
pub use time::{SimDuration, SimTime};
