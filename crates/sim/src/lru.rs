//! A deterministic least-recently-used tracker.
//!
//! Recency is a monotonic **use tick**, advanced explicitly by the owner
//! once per admission, so eviction choice is a pure function of the
//! operation history — never of wall clock, hash order, or allocation
//! addresses. The entry set is a plain vector scanned linearly:
//! capacities are small by design (resident sessions, cached chunks) and
//! vector iteration order is deterministic, unlike a hash map's.
//!
//! Two structures share this idiom: the engine-side connection pool
//! (`ros2_daos::ConnPool`) and the DPU read cache
//! (`ros2_dpu::ReadCache`). Both replay bit-identically because the tick
//! is the only ordering input, and ticks are unique so LRU ties cannot
//! occur.

/// One tracked entry: a key, its payload, and the tick of its last use.
#[derive(Debug, Clone)]
struct LruEntry<K, V> {
    key: K,
    value: V,
    last_used: u64,
}

/// A deterministic tick-LRU over a flat vector. See the module docs.
///
/// The owner drives the clock: call [`DetLru::advance`] exactly once per
/// admission, then [`DetLru::touch`] / [`DetLru::insert`] stamp entries
/// with the current tick. Eviction ([`DetLru::evict_lru`]) removes the
/// minimum-tick entry with `swap_remove`, which is order-safe because
/// ticks are unique.
#[derive(Debug, Clone)]
pub struct DetLru<K, V> {
    entries: Vec<LruEntry<K, V>>,
    tick: u64,
}

impl<K, V> Default for DetLru<K, V> {
    fn default() -> Self {
        DetLru {
            entries: Vec::new(),
            tick: 0,
        }
    }
}

impl<K: PartialEq, V> DetLru<K, V> {
    /// An empty tracker at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current use tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the use tick by one and returns it. Call once per
    /// admission, before [`Self::touch`] or [`Self::insert`].
    pub fn advance(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Marks `key` used at the current tick; returns its value on a hit.
    pub fn touch(&mut self, key: &K) -> Option<&mut V> {
        let tick = self.tick;
        self.entries.iter_mut().find(|e| e.key == *key).map(|e| {
            e.last_used = tick;
            &mut e.value
        })
    }

    /// Read-only lookup without a recency update.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries
            .iter()
            .find(|e| e.key == *key)
            .map(|e| &e.value)
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.iter().any(|e| e.key == *key)
    }

    /// Inserts `key` stamped with the current tick. The caller evicts
    /// first if a capacity bound applies; inserting a key that is already
    /// tracked is a logic error (checked in debug builds).
    pub fn insert(&mut self, key: K, value: V) {
        debug_assert!(!self.contains(&key), "insert of an already-tracked key");
        self.entries.push(LruEntry {
            key,
            value,
            last_used: self.tick,
        });
    }

    /// Removes and returns the least-recently-used entry, if any. The
    /// minimum-tick choice is unique (ticks never tie), so the
    /// `swap_remove` reordering cannot change any later eviction.
    pub fn evict_lru(&mut self) -> Option<(K, V)> {
        let lru = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)?;
        let e = self.entries.swap_remove(lru);
        Some((e.key, e.value))
    }

    /// Removes `key` and returns its value, if tracked. Order-preserving
    /// (`retain`), mirroring the connection pool's session kill.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.entries.iter().position(|e| e.key == *key)?;
        Some(self.entries.remove(i).value)
    }

    /// Keeps only entries for which `f` returns true; returns how many
    /// were dropped. Iteration order (and thus the surviving order) is
    /// deterministic.
    pub fn retain<F: FnMut(&K, &V) -> bool>(&mut self, mut f: F) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| f(&e.key, &e.value));
        before - self.entries.len()
    }

    /// Iterates `(key, value)` pairs in (deterministic) slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|e| (&e.key, &e.value))
    }

    /// Drops every entry; the tick keeps counting.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_order_drives_eviction() {
        let mut l: DetLru<u32, &str> = DetLru::new();
        l.advance();
        l.insert(1, "a");
        l.advance();
        l.insert(2, "b");
        // Touch 1 so 2 becomes the LRU.
        l.advance();
        assert!(l.touch(&1).is_some());
        assert_eq!(l.evict_lru(), Some((2, "b")));
        assert_eq!(l.evict_lru(), Some((1, "a")));
        assert_eq!(l.evict_lru(), None);
    }

    #[test]
    fn remove_and_retain_are_order_preserving() {
        let mut l: DetLru<u32, u32> = DetLru::new();
        for k in 0..4 {
            l.advance();
            l.insert(k, k * 10);
        }
        assert_eq!(l.remove(&1), Some(10));
        assert_eq!(l.remove(&1), None);
        let dropped = l.retain(|&k, _| k != 3);
        assert_eq!(dropped, 1);
        let keys: Vec<u32> = l.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, [0, 2]);
    }

    #[test]
    fn ticks_are_unique_and_monotonic() {
        let mut l: DetLru<u8, ()> = DetLru::new();
        assert_eq!(l.advance(), 1);
        assert_eq!(l.advance(), 2);
        l.insert(7, ());
        assert_eq!(l.tick(), 2);
        l.clear();
        assert_eq!(l.advance(), 3, "clear never rewinds the tick");
    }
}
