//! Queueing-resource primitives.
//!
//! Every contended piece of hardware in ROS2 — links, NIC pipes, CPU core
//! pools, NVMe channels, tenant rate limits — is modelled by one of these
//! primitives. They are *time calculators*: callers hand them the current
//! instant plus a demand and get back `(start, finish)` times; the resource
//! updates its own occupancy so queueing delay emerges naturally. None of
//! them schedule events themselves, which keeps engine state machines pure
//! and unit-testable.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// A grant issued by a resource: when service began and when it completes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Grant {
    /// When the demand actually started being served (≥ request time).
    pub start: SimTime,
    /// When service completes.
    pub finish: SimTime,
}

impl Grant {
    /// Time spent waiting before service began.
    pub fn queue_delay(&self, requested: SimTime) -> SimDuration {
        self.start.saturating_since(requested)
    }
    /// Total latency from request to completion.
    pub fn latency(&self, requested: SimTime) -> SimDuration {
        self.finish.saturating_since(requested)
    }
}

/// How far behind the maximum observed submission time a resource keeps
/// booking history. Submissions may arrive out of order by up to one
/// end-to-end operation span; 500 ms of slack is orders of magnitude beyond
/// any path in the models.
const PRUNE_SLACK: SimDuration = SimDuration::from_millis(500);

/// Booking and fast-path counters kept by every gap-scheduled resource.
///
/// A *booking* is one interval placement; a *fast-path hit* is a booking
/// that resolved in O(1) at the tail of the book — either an idle-tail
/// append (the resource was idle at/after the requested instant) or a
/// queue-at-tail placement (the request fell inside the last interval, so
/// no earlier gap could exist) — with no binary search or gap scan. The
/// steady-state hit rate is the headline number for simulator throughput:
/// 100 % on strictly sequential streams, >90 % required on the uncontended
/// sweeps, which is what makes each simulated I/O amortized O(1).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Total interval placements.
    pub bookings: u64,
    /// Placements that took the O(1) tail-append shortcut.
    pub fastpath_hits: u64,
}

impl ResourceStats {
    /// Records one booking.
    pub fn record(&mut self, fast: bool) {
        self.bookings += 1;
        if fast {
            self.fastpath_hits += 1;
        }
    }

    /// Records `n` bookings at once (a batched placement).
    pub fn record_batch(&mut self, n: u64, fast: bool) {
        self.bookings += n;
        if fast {
            self.fastpath_hits += n;
        }
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: ResourceStats) {
        self.bookings += other.bookings;
        self.fastpath_hits += other.fastpath_hits;
    }

    /// Fraction of bookings that took the fast path (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.bookings == 0 {
            0.0
        } else {
            self.fastpath_hits as f64 / self.bookings as f64
        }
    }
}

/// A sorted list of non-overlapping busy intervals with gap placement —
/// the work-conserving booking discipline shared by every resource here.
///
/// Engine state machines compute an operation's whole timeline in one call,
/// so a resource can receive a reservation for a *future* instant (e.g. a
/// response sent when media completes) before a request for an *earlier*
/// instant arrives from the next operation. Plain FIFO occupancy would make
/// the early request wait behind the future reservation even though the
/// resource is idle in between, serializing entire pipelines. Interval
/// booking places each demand in the earliest feasible gap instead.
///
/// Storage is a ring buffer (`VecDeque`): steady-state bookings append at
/// the tail in O(1) (detected without scanning — see [`Self::tail_free`]),
/// and pruning drained history pops from the front in O(1), so the
/// common-path cost per booking is constant. The gap scan only runs when a
/// demand arrives while later intervals are already booked (contention or
/// out-of-order reservations), and produces bit-identical placements to the
/// original linear implementation.
#[derive(Clone, Debug, Default)]
struct IntervalBook {
    /// Sorted, non-overlapping `(start, end)` busy intervals in ns.
    spans: VecDeque<(u64, u64)>,
}

impl IntervalBook {
    /// End of the last booked interval (0 when empty). The book is idle at
    /// and after every instant ≥ this, so a demand with `from >=
    /// tail_free()` takes the O(1) tail-append fast path.
    fn tail_free(&self) -> u64 {
        self.spans.back().map_or(0, |&(_, end)| end)
    }

    /// Earliest feasible start ≥ `from` for `dur`, plus the insertion
    /// index, plus whether the placement resolved via an O(1) tail
    /// shortcut (the fast-path flag resources feed into [`ResourceStats`]).
    fn earliest(&self, from: u64, dur: u64) -> (u64, usize, bool) {
        // Fast paths, both equivalent to the scan below but O(1):
        //
        // * idle tail — every interval ends at or before `from`
        //   (`partition_point == len`), so the demand starts at `from`;
        // * queue at tail — `from` falls at or inside the *last* interval
        //   (`from >= last.start`). Earlier intervals all end before
        //   `last.start <= from`, so the scan would start at the last
        //   interval, find no gap (a nonzero demand at `candidate >=
        //   last.start` cannot fit before it), and append at its end.
        //   (`dur == 0` is excluded: a zero-length demand at exactly
        //   `last.start` *does* fit in front, which the scan honours.)
        if let Some(&(last_start, last_end)) = self.spans.back() {
            if last_end <= from {
                return (from, self.spans.len(), true);
            }
            if from >= last_start && dur > 0 {
                return (last_end, self.spans.len(), true);
            }
        } else {
            return (from, 0, true);
        }
        let mut idx = self.spans.partition_point(|&(_, end)| end <= from);
        let mut candidate = from;
        while idx < self.spans.len() {
            let (start, end) = self.spans[idx];
            if candidate + dur <= start {
                return (candidate, idx, false);
            }
            candidate = candidate.max(end);
            idx += 1;
        }
        (candidate, idx, false)
    }

    /// Books `[start, start+dur)` at insertion point `idx`, merging with
    /// touching neighbours to keep the list short.
    fn book(&mut self, start: u64, dur: u64, idx: usize) {
        let end = start + dur;
        let prev = idx > 0 && self.spans[idx - 1].1 == start;
        let next = idx < self.spans.len() && self.spans[idx].0 == end;
        match (prev, next) {
            (true, true) => {
                self.spans[idx - 1].1 = self.spans[idx].1;
                self.spans.remove(idx);
            }
            (true, false) => self.spans[idx - 1].1 = end,
            (false, true) => self.spans[idx].0 = start,
            (false, false) => self.spans.insert(idx, (start, end)),
        }
    }

    /// Drops intervals that ended before `cutoff` by popping from the ring
    /// buffer's front — O(1) per dropped interval, no memmove.
    fn prune(&mut self, cutoff: u64) {
        if self.spans.len() < 64 {
            return;
        }
        while let Some(&(_, end)) = self.spans.front() {
            if end < cutoff {
                self.spans.pop_front();
            } else {
                break;
            }
        }
    }

    fn clear(&mut self) {
        self.spans.clear();
    }
}

/// A gap-scheduled store-and-forward bandwidth pipe (link, NIC port).
///
/// Transfers serialize at `bytes_per_sec`, each occupying the pipe for
/// exactly `bytes / rate`, placed in the earliest feasible idle window at
/// or after arrival (see [`IntervalBook`] for why). Callers that need flows
/// to interleave segment large transfers first (the fabric layer does).
#[derive(Clone, Debug)]
pub struct BandwidthServer {
    bytes_per_sec: u64,
    book: IntervalBook,
    bytes_served: u64,
    busy_time: SimDuration,
    high_water: SimTime,
    stats: ResourceStats,
}

impl BandwidthServer {
    /// Creates a pipe with the given capacity in bytes per second.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero-rate pipe");
        BandwidthServer {
            bytes_per_sec,
            book: IntervalBook::default(),
            bytes_served: 0,
            busy_time: SimDuration::ZERO,
            high_water: SimTime::ZERO,
            stats: ResourceStats::default(),
        }
    }

    /// Enqueues a transfer of `bytes`, returning its service window.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> Grant {
        let dur = SimDuration::for_bytes(bytes, self.bytes_per_sec);
        let (start, idx, fast) = self.book.earliest(now.as_nanos(), dur.as_nanos());
        self.book.book(start, dur.as_nanos(), idx);
        self.stats.record(fast);
        self.bytes_served += bytes;
        self.busy_time += dur;
        self.high_water = self.high_water.max(now);
        let cutoff = self
            .high_water
            .as_nanos()
            .saturating_sub(PRUNE_SLACK.as_nanos());
        self.book.prune(cutoff);
        Grant {
            start: SimTime::from_nanos(start),
            finish: SimTime::from_nanos(start + dur.as_nanos()),
        }
    }

    /// The serialization time of `bytes` through this pipe (no booking).
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.bytes_per_sec)
    }

    /// End of the last booked interval; the pipe is idle at and after every
    /// instant ≥ this. A demand submitted at or after `tail_free()` is
    /// guaranteed the tail-append fast path.
    pub fn tail_free(&self) -> SimTime {
        SimTime::from_nanos(self.book.tail_free())
    }

    /// Tail-append fast path for batched callers (the fabric's pipelined
    /// wire traversal): books one contiguous window `[start, start + dur)`
    /// standing for `segments` back-to-back per-segment bookings totalling
    /// `bytes` on-wire bytes, submitted at `submitted`.
    ///
    /// The caller must guarantee `start >= tail_free()` and that `dur` is
    /// the exact sum of the per-segment service times it replaces; both are
    /// what make the aggregate booking bit-identical to the per-segment
    /// loop (asserted in the fabric's equivalence tests).
    pub fn book_batch(
        &mut self,
        submitted: SimTime,
        start: SimTime,
        dur: SimDuration,
        bytes: u64,
        segments: u64,
    ) -> Grant {
        debug_assert!(
            start >= self.tail_free(),
            "book_batch caller must verify the pipe is idle at/after start"
        );
        self.book
            .book(start.as_nanos(), dur.as_nanos(), self.book.spans.len());
        self.stats.record_batch(segments, true);
        self.bytes_served += bytes;
        self.busy_time += dur;
        self.high_water = self.high_water.max(submitted);
        let cutoff = self
            .high_water
            .as_nanos()
            .saturating_sub(PRUNE_SLACK.as_nanos());
        self.book.prune(cutoff);
        Grant {
            start,
            finish: start + dur,
        }
    }

    /// Booking / fast-path counters.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    /// The earliest idle instant at or after `now`.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        SimTime::from_nanos(self.book.earliest(now.as_nanos(), 0).0)
    }

    /// Time from `now` until the last current booking drains.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.tail_free().saturating_since(now)
    }

    /// Total bytes pushed through the pipe.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Cumulative busy time (for utilization reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// The configured rate in bytes per second.
    pub fn rate(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Fraction of `elapsed` the pipe spent busy.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / elapsed.as_secs_f64()
    }

    /// Resets occupancy and counters to a fresh t=0 state (used between a
    /// preconditioning phase and a measured run).
    pub fn reset_timing(&mut self) {
        self.book.clear();
        self.bytes_served = 0;
        self.busy_time = SimDuration::ZERO;
        self.high_water = SimTime::ZERO;
        self.stats = ResourceStats::default();
    }
}

/// A pool of `k` identical servers with **gap-scheduled** (backfilling)
/// assignment.
///
/// Models CPU core pools (host, DPU ARM, storage xstreams) and NVMe channel
/// parallelism. Because engine state machines compute an operation's whole
/// timeline in one call, a pool can receive a reservation for a *future*
/// instant (e.g. a response sent when media completes) before it receives a
/// request for an *earlier* instant from the next operation. Plain
/// earliest-free-server assignment would make the early request queue
/// behind the future reservation even though the server sits idle in
/// between — serializing the entire pipeline. This pool instead books
/// per-server busy intervals and places each job in the earliest feasible
/// gap at or after its arrival, which is exactly how a work-conserving
/// scheduler would behave.
#[derive(Clone, Debug)]
pub struct ServerPool {
    /// Per-server booking lists.
    bookings: Vec<IntervalBook>,
    servers: usize,
    jobs_served: u64,
    busy_time: SimDuration,
    latest_free: SimTime,
    /// High-water mark of observed submission times (for pruning).
    high_water: SimTime,
    stats: ResourceStats,
}

impl ServerPool {
    /// Creates a pool of `servers` identical servers, all free at t=0.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "empty server pool");
        ServerPool {
            bookings: vec![IntervalBook::default(); servers],
            servers,
            jobs_served: 0,
            busy_time: SimDuration::ZERO,
            latest_free: SimTime::ZERO,
            high_water: SimTime::ZERO,
            stats: ResourceStats::default(),
        }
    }

    /// Submits a job needing `service` time; it runs in the earliest
    /// feasible gap at or after `now` across all servers.
    ///
    /// Each per-server probe is O(1) in steady state (the tail-append check
    /// in [`IntervalBook::earliest`]), and the scan stops at the first
    /// server that can start immediately, so an idle pool books in O(1).
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let from = now.as_nanos();
        let dur = service.as_nanos();
        // (start, server, idx, fast)
        let mut best: Option<(u64, usize, usize, bool)> = None;
        for (s, book) in self.bookings.iter().enumerate() {
            let (start, idx, fast) = book.earliest(from, dur);
            if best.is_none_or(|(b, _, _, _)| start < b) {
                best = Some((start, s, idx, fast));
                if start == from {
                    break; // cannot do better than starting immediately
                }
            }
        }
        let (start_ns, server, idx, fast) = best.expect("pool is never empty");
        self.bookings[server].book(start_ns, dur, idx);
        self.stats.record(fast);

        self.jobs_served += 1;
        self.busy_time += service;
        let finish = SimTime::from_nanos(start_ns + dur);
        self.latest_free = self.latest_free.max(finish);
        self.high_water = self.high_water.max(now);
        let cutoff = self
            .high_water
            .as_nanos()
            .saturating_sub(PRUNE_SLACK.as_nanos());
        self.bookings[server].prune(cutoff);
        Grant {
            start: SimTime::from_nanos(start_ns),
            finish,
        }
    }

    /// The instant a zero-length job submitted at `now` could start (the
    /// earliest idle instant at or after `now`).
    pub fn next_free(&self, now: SimTime) -> SimTime {
        let from = now.as_nanos();
        let earliest = self
            .bookings
            .iter()
            .map(|book| book.earliest(from, 0).0)
            .min()
            .expect("pool is never empty");
        SimTime::from_nanos(earliest)
    }

    /// The instant *every* booking (including future ones) has drained.
    pub fn drain_time(&self, now: SimTime) -> SimTime {
        now.max(self.latest_free)
    }

    /// The number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Total jobs served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Aggregate busy time across all servers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Mean per-server utilization over `elapsed`.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / (elapsed.as_secs_f64() * self.servers as f64)
    }

    /// Booking / fast-path counters.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    /// Resets all servers to free-at-zero and clears counters.
    pub fn reset_timing(&mut self) {
        self.bookings = vec![IntervalBook::default(); self.servers];
        self.jobs_served = 0;
        self.busy_time = SimDuration::ZERO;
        self.latest_free = SimTime::ZERO;
        self.high_water = SimTime::ZERO;
        self.stats = ResourceStats::default();
    }
}

/// A token bucket for tenant rate limiting and QoS.
///
/// Tokens accrue at `rate_per_sec` up to `burst`; a request for `n` tokens is
/// granted at the earliest instant the bucket can cover it. Integer
/// nanosecond·token arithmetic keeps grants exact and monotone.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    /// Token level ×1e9 (token-nanos) as of `updated`.
    level_tn: u128,
    updated: SimTime,
    granted: u64,
}

impl TokenBucket {
    /// Creates a bucket that refills at `rate_per_sec` with capacity `burst`,
    /// starting full.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        assert!(rate_per_sec > 0, "zero-rate bucket");
        assert!(burst > 0, "zero-burst bucket");
        TokenBucket {
            rate_per_sec,
            burst,
            level_tn: burst as u128 * 1_000_000_000,
            updated: SimTime::ZERO,
            granted: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.updated).as_nanos() as u128;
        let cap = self.burst as u128 * 1_000_000_000;
        self.level_tn = (self.level_tn + dt * self.rate_per_sec as u128).min(cap);
        self.updated = self.updated.max(now);
    }

    /// Requests `tokens`, returning the earliest instant the grant holds.
    /// Requests larger than the burst are granted at the burst boundary
    /// (the bucket goes momentarily negative), preserving work conservation.
    ///
    /// Backlogged grants queue: a request that arrives while the bucket is
    /// still paying off an earlier grant waits from that grant's instant
    /// (`updated`), not from its own arrival — otherwise N concurrent
    /// requesters would each be charged one refill quantum from their own
    /// `now` and the bucket would admit N× its configured rate. (The PR 4
    /// QoS sweep caught exactly that: a 64 MiB/s tenant moving ~500 MiB/s
    /// under queue depth 8.)
    pub fn acquire(&mut self, now: SimTime, tokens: u64) -> SimTime {
        let from = now.max(self.updated);
        self.refill(from);
        let need = tokens as u128 * 1_000_000_000;
        let grant_at = if self.level_tn >= need {
            from
        } else {
            let deficit = need - self.level_tn;
            let wait_ns = deficit.div_ceil(self.rate_per_sec as u128) as u64;
            from + SimDuration::from_nanos(wait_ns)
        };
        self.refill(grant_at);
        self.level_tn = self.level_tn.saturating_sub(need);
        self.granted += tokens;
        grant_at
    }

    /// Current whole tokens available at `now` (read-only estimate).
    pub fn available(&self, now: SimTime) -> u64 {
        let dt = now.saturating_since(self.updated).as_nanos() as u128;
        let cap = self.burst as u128 * 1_000_000_000;
        let level = (self.level_tn + dt * self.rate_per_sec as u128).min(cap);
        (level / 1_000_000_000) as u64
    }

    /// Total tokens granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// The refill rate in tokens per second.
    pub fn rate(&self) -> u64 {
        self.rate_per_sec
    }
}

/// A QoS allocation: the rate/burst envelope a [`QosLane`] enforces.
///
/// Lifted from the DPU tenant manager (PR 4) into the simulation kernel so
/// foreground tenants and background services (rebuild, aggregation, scrub)
/// share one proven admission mechanism.
#[derive(Copy, Clone, Debug)]
pub struct QosLimits {
    /// Operations per second.
    pub ops_per_sec: u64,
    /// Bytes per second.
    pub bytes_per_sec: u64,
    /// Burst sizes (ops, bytes).
    pub burst: (u64, u64),
}

impl QosLimits {
    /// An effectively unlimited allocation. An unlimited lane's grants
    /// always land exactly at `now`, so wrapping a path in an unlimited
    /// lane is bit-identical to not pacing it at all.
    pub fn unlimited() -> Self {
        QosLimits {
            ops_per_sec: u64::MAX / 2,
            bytes_per_sec: u64::MAX / 2,
            burst: (1 << 20, 1 << 40),
        }
    }

    /// A bytes-per-second budget with a one-second burst window and an
    /// effectively unbounded op rate — the natural shape for streaming
    /// background services paced by volume, not op count.
    pub fn bytes_per_sec(bytes_per_sec: u64) -> Self {
        QosLimits {
            ops_per_sec: u64::MAX / 2,
            bytes_per_sec,
            burst: (1 << 20, bytes_per_sec.max(1)),
        }
    }
}

/// A paced admission lane: paired op/byte token buckets plus the
/// accounting every caller previously duplicated. One I/O of `bytes` is
/// admitted at the later of the two buckets' grants.
#[derive(Clone, Debug)]
pub struct QosLane {
    /// The allocation the buckets were built from (kept for resets and
    /// observability).
    pub limits: QosLimits,
    ops_bucket: TokenBucket,
    bytes_bucket: TokenBucket,
    /// Admitted (ops, bytes).
    pub admitted: (u64, u64),
    /// Operations delayed by rate limiting.
    pub throttled: u64,
    /// Cumulative delay imposed by rate limiting.
    pub throttle_wait: SimDuration,
}

impl QosLane {
    /// Creates a lane with full buckets at t=0.
    pub fn new(limits: QosLimits) -> Self {
        QosLane {
            limits,
            ops_bucket: TokenBucket::new(limits.ops_per_sec, limits.burst.0),
            bytes_bucket: TokenBucket::new(limits.bytes_per_sec, limits.burst.1),
            admitted: (0, 0),
            throttled: 0,
            throttle_wait: SimDuration::ZERO,
        }
    }

    /// Admits one I/O of `bytes`, returning the instant it may proceed
    /// (later than `now` when rate-limited). Zero-byte ops are charged one
    /// byte so the byte bucket's backlog ordering still applies.
    pub fn admit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let t_ops = self.ops_bucket.acquire(now, 1);
        let t_bytes = self.bytes_bucket.acquire(now, bytes.max(1));
        let grant = t_ops.max(t_bytes);
        self.admitted.0 += 1;
        self.admitted.1 += bytes;
        if grant > now {
            self.throttled += 1;
            self.throttle_wait += grant.saturating_since(now);
        }
        grant
    }

    /// Rebuilds the buckets full at t=0 and zeroes the counters (between a
    /// preconditioning phase and a measured run).
    pub fn reset_timing(&mut self) {
        *self = QosLane::new(self.limits);
    }
}

/// A fixed propagation delay (switch hop, PCIe hop).
#[derive(Copy, Clone, Debug)]
pub struct LatencyPipe {
    delay: SimDuration,
}

impl LatencyPipe {
    /// Creates a pipe adding `delay` to every traversal.
    pub fn new(delay: SimDuration) -> Self {
        LatencyPipe { delay }
    }
    /// When something entering at `now` emerges.
    pub fn traverse(&self, now: SimTime) -> SimTime {
        now + self.delay
    }
    /// The configured delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;

    #[test]
    fn bandwidth_serializes_fifo() {
        let mut link = BandwidthServer::new(1_000_000_000); // 1 GB/s
        let t0 = SimTime::ZERO;
        let g1 = link.transmit(t0, 1_000_000); // 1 ms
        let g2 = link.transmit(t0, 1_000_000);
        assert_eq!(g1.start, t0);
        assert_eq!(g1.finish, SimTime::from_millis(1));
        assert_eq!(g2.start, SimTime::from_millis(1));
        assert_eq!(g2.finish, SimTime::from_millis(2));
        assert_eq!(g2.queue_delay(t0), SimDuration::from_millis(1));
    }

    #[test]
    fn bandwidth_idles_then_resumes() {
        let mut link = BandwidthServer::new(1_000_000_000);
        link.transmit(SimTime::ZERO, 1_000_000);
        // Arrives long after the pipe drained: no queueing.
        let g = link.transmit(SimTime::from_secs(1), 500_000);
        assert_eq!(g.start, SimTime::from_secs(1));
        assert_eq!(g.queue_delay(SimTime::from_secs(1)), SimDuration::ZERO);
        assert_eq!(link.bytes_served(), 1_500_000);
    }

    #[test]
    fn bandwidth_utilization_accumulates() {
        let mut link = BandwidthServer::new(KIB * KIB); // 1 MiB/s
        link.transmit(SimTime::ZERO, 512 * KIB); // 0.5 s busy
        let util = link.utilization(SimDuration::from_secs(1));
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn pool_runs_k_jobs_in_parallel() {
        let mut pool = ServerPool::new(4);
        let svc = SimDuration::from_micros(10);
        let grants: Vec<_> = (0..8).map(|_| pool.submit(SimTime::ZERO, svc)).collect();
        // First four start immediately, next four queue behind them.
        for g in &grants[..4] {
            assert_eq!(g.start, SimTime::ZERO);
        }
        for g in &grants[4..] {
            assert_eq!(g.start, SimTime::ZERO + svc);
        }
        assert_eq!(pool.jobs_served(), 8);
    }

    #[test]
    fn pool_picks_earliest_free_server() {
        let mut pool = ServerPool::new(2);
        pool.submit(SimTime::ZERO, SimDuration::from_micros(100));
        pool.submit(SimTime::ZERO, SimDuration::from_micros(10));
        // Third job should land on the server free at 10 us, not 100 us.
        let g = pool.submit(SimTime::ZERO, SimDuration::from_micros(1));
        assert_eq!(g.start, SimTime::from_micros(10));
    }

    #[test]
    fn pool_backfills_idle_gaps_before_future_reservations() {
        let mut pool = ServerPool::new(1);
        // A future reservation arrives first (e.g. a response send booked
        // at media-completion time).
        let future = pool.submit(SimTime::from_millis(10), SimDuration::from_micros(100));
        assert_eq!(future.start, SimTime::from_millis(10));
        // An earlier request must be served in the idle gap, not after it.
        let early = pool.submit(SimTime::from_micros(1), SimDuration::from_micros(50));
        assert_eq!(early.start, SimTime::from_micros(1));
        assert!(early.finish < future.start);
        // A job too large for the gap goes after the reservation.
        let big = pool.submit(SimTime::from_micros(9_999), SimDuration::from_micros(500));
        assert_eq!(big.start, future.finish);
    }

    #[test]
    fn pool_merges_adjacent_bookings() {
        let mut pool = ServerPool::new(1);
        for i in 0..1000u64 {
            pool.submit(SimTime::from_micros(i), SimDuration::from_micros(1));
        }
        // Back-to-back jobs merge into one interval: throughput unaffected,
        // memory bounded.
        assert_eq!(pool.jobs_served(), 1000);
        assert_eq!(pool.drain_time(SimTime::ZERO), SimTime::from_micros(1000));
    }

    #[test]
    fn token_bucket_grants_burst_then_paces() {
        let mut tb = TokenBucket::new(1000, 100); // 1000 tok/s, burst 100
        let t0 = SimTime::ZERO;
        assert_eq!(tb.acquire(t0, 100), t0); // burst drains instantly
                                             // Next 10 tokens need 10 ms of refill.
        let grant = tb.acquire(t0, 10);
        assert_eq!(grant, SimTime::from_millis(10));
    }

    #[test]
    fn token_bucket_refills_to_capacity_only() {
        let mut tb = TokenBucket::new(1000, 50);
        tb.acquire(SimTime::ZERO, 50);
        // After 10 seconds the bucket holds at most `burst` tokens.
        assert_eq!(tb.available(SimTime::from_secs(10)), 50);
    }

    #[test]
    fn token_bucket_backlogged_grants_serialize_at_the_rate() {
        // 8 concurrent 10-token requests against a 1000 tok/s, burst-10
        // bucket: the first drains the burst; the rest must space out by a
        // full 10 ms refill each, not all land one quantum after t=0.
        let mut tb = TokenBucket::new(1000, 10);
        let grants: Vec<_> = (0..8).map(|_| tb.acquire(SimTime::ZERO, 10)).collect();
        assert_eq!(grants[0], SimTime::ZERO);
        for (i, g) in grants.iter().enumerate().skip(1) {
            assert_eq!(
                *g,
                SimTime::from_millis(10 * i as u64),
                "grant {i} must queue behind the backlog"
            );
        }
    }

    #[test]
    fn token_bucket_grants_are_monotone() {
        let mut tb = TokenBucket::new(500, 10);
        let mut last = SimTime::ZERO;
        for i in 0..100 {
            let g = tb.acquire(SimTime::from_micros(i), 5);
            assert!(g >= last, "grants must not reorder");
            last = g;
        }
    }

    #[test]
    fn unlimited_lane_grants_exactly_at_now() {
        // The bit-identity pin for unpaced services: an unlimited lane must
        // never move a grant, so wrapping a path in one is a no-op in time.
        let mut lane = QosLane::new(QosLimits::unlimited());
        for i in 0..1000u64 {
            let now = SimTime::from_micros(i);
            assert_eq!(lane.admit(now, 1 << 20), now);
        }
        assert_eq!(lane.throttled, 0);
        assert_eq!(lane.throttle_wait, SimDuration::ZERO);
        assert_eq!(lane.admitted, (1000, 1000 << 20));
    }

    #[test]
    fn lane_byte_budget_paces_a_stream() {
        // 1 MiB/s with a 1 MiB burst: the first MiB is free, each further
        // MiB queues a full second behind the backlog.
        let mut lane = QosLane::new(QosLimits::bytes_per_sec(1 << 20));
        assert_eq!(lane.admit(SimTime::ZERO, 1 << 20), SimTime::ZERO);
        let g1 = lane.admit(SimTime::ZERO, 1 << 20);
        let g2 = lane.admit(SimTime::ZERO, 1 << 20);
        assert_eq!(g1, SimTime::from_secs(1));
        assert_eq!(g2, SimTime::from_secs(2));
        assert_eq!(lane.throttled, 2);
        assert_eq!(lane.throttle_wait, SimDuration::from_secs(3));
        lane.reset_timing();
        assert_eq!(lane.admit(SimTime::ZERO, 1 << 20), SimTime::ZERO);
        assert_eq!(lane.admitted, (1, 1 << 20));
    }

    #[test]
    fn latency_pipe_adds_delay() {
        let pipe = LatencyPipe::new(SimDuration::from_micros(2));
        assert_eq!(
            pipe.traverse(SimTime::from_micros(5)),
            SimTime::from_micros(7)
        );
    }
}
